#include "support/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>

namespace oocq {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<MetricsRegistry*> g_metrics{nullptr};

void AtomicRelaxedMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicRelaxedMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricHistogram::MetricHistogram()
    : min_(std::numeric_limits<uint64_t>::max()) {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t MetricHistogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t MetricHistogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

void MetricHistogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicRelaxedMin(&min_, value);
  AtomicRelaxedMax(&max_, value);
}

MetricsRegistry::MetricsRegistry(uint32_t num_shards)
    : shards_(num_shards < 1 ? 1 : num_shards) {}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % shards_.size()];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % shards_.size()];
}

MetricCounter* MetricsRegistry::Counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<MetricCounter>& slot = shard.counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::Histogram(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<MetricHistogram>& slot = shard.histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(std::string(name));
  return it != shard.counters.end() ? it->second->value() : 0;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      snap.counters.push_back({name, counter->value()});
    }
    for (const auto& [name, histogram] : shard.histograms) {
      HistogramSnapshot h;
      h.name = name;
      h.count = histogram->count();
      h.sum = histogram->sum();
      h.min = h.count == 0 ? 0 : histogram->min();
      h.max = histogram->max();
      h.buckets.resize(MetricHistogram::kNumBuckets);
      for (size_t i = 0; i < MetricHistogram::kNumBuckets; ++i) {
        h.buckets[i] = histogram->bucket(i);
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::string MetricsRegistry::JsonString() const {
  Snapshot snap = Snap();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += counter.name;  // metric names are code-controlled identifiers
    out += "\":";
    out += std::to_string(counter.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += histogram.name;
    out += "\":{\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += std::to_string(histogram.sum);
    out += ",\"min\":";
    out += std::to_string(histogram.min);
    out += ",\"max\":";
    out += std::to_string(histogram.max);
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] == 0) continue;  // sparse: 65 mostly-zero slots
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '"';
      out += std::to_string(MetricHistogram::BucketLowerBound(i));
      out += "\":";
      out += std::to_string(histogram.buckets[i]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

MetricsScope::MetricsScope(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  MetricsRegistry* expected = nullptr;
  owned_ = g_metrics.compare_exchange_strong(expected, registry,
                                             std::memory_order_release,
                                             std::memory_order_relaxed);
}

MetricsScope::~MetricsScope() {
  if (owned_) g_metrics.store(nullptr, std::memory_order_release);
}

MetricsRegistry* ActiveMetrics() {
  return g_metrics.load(std::memory_order_relaxed);
}

ScopedPhaseTimer::ScopedPhaseTimer(const char* name) : name_(name) {
  registry_ = ActiveMetrics();
  if (registry_ != nullptr) start_ns_ = NowNs();
}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  if (registry_ == nullptr) return;
  // Use the registry captured at entry: if the scope ended mid-phase the
  // registry still outlives its scope (the caller owns both), and a new
  // scope's registry must not receive a partial phase.
  registry_->Add(std::string(name_) + ".ns", NowNs() - start_ns_);
  registry_->Add(std::string(name_) + ".calls", 1);
}

}  // namespace oocq
