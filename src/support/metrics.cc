#include "support/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>

namespace oocq {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<MetricsRegistry*> g_metrics{nullptr};

#if defined(__x86_64__)
// One-time TSC calibration: sample both clocks across a ~200us spin and
// keep the ratio. Invariant TSC (constant rate, synchronized across
// cores) has been universal on x86-64 for well over a decade; if the
// measured rate comes out nonsensical anyway, usable stays false and
// TelemetryNowNs falls back to the slow clock.
struct TscClock {
  bool usable = false;
  double ns_per_tick = 0;
  uint64_t tsc0 = 0;
  uint64_t ns0 = 0;
};

const TscClock& GetTscClock() {
  static const TscClock calibrated = [] {
    TscClock clock;
    const uint64_t ns_a = NowNs();
    const uint64_t tsc_a = __builtin_ia32_rdtsc();
    uint64_t ns_b = ns_a;
    while (ns_b - ns_a < 200'000) ns_b = NowNs();
    const uint64_t tsc_b = __builtin_ia32_rdtsc();
    if (tsc_b > tsc_a) {
      clock.ns_per_tick =
          static_cast<double>(ns_b - ns_a) / static_cast<double>(tsc_b - tsc_a);
      // Sanity: plausible CPU clocks are ~0.3-10 GHz.
      clock.usable = clock.ns_per_tick > 0.05 && clock.ns_per_tick < 5.0;
      clock.tsc0 = tsc_b;
      clock.ns0 = ns_b;
    }
    return clock;
  }();
  return calibrated;
}
#endif
std::atomic<uint64_t> g_metrics_epoch{0};

void AtomicRelaxedMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicRelaxedMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricHistogram::MetricHistogram()
    : min_(std::numeric_limits<uint64_t>::max()) {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t MetricHistogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t MetricHistogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

void MetricHistogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicRelaxedMin(&min_, value);
  AtomicRelaxedMax(&max_, value);
}

MetricsRegistry::MetricsRegistry(uint32_t num_shards)
    : shards_(num_shards < 1 ? 1 : num_shards) {}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % shards_.size()];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % shards_.size()];
}

MetricCounter* MetricsRegistry::Counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return it->second.get();
}

MetricHistogram* MetricsRegistry::Histogram(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(name);
  return it != shard.counters.end() ? it->second->value() : 0;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      snap.counters.push_back({name, counter->value()});
    }
    for (const auto& [name, histogram] : shard.histograms) {
      HistogramSnapshot h;
      h.name = name;
      h.count = histogram->count();
      h.sum = histogram->sum();
      h.min = h.count == 0 ? 0 : histogram->min();
      h.max = histogram->max();
      h.buckets.resize(MetricHistogram::kNumBuckets);
      for (size_t i = 0; i < MetricHistogram::kNumBuckets; ++i) {
        h.buckets[i] = histogram->bucket(i);
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::string MetricsRegistry::JsonString() const {
  Snapshot snap = Snap();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += counter.name;  // metric names are code-controlled identifiers
    out += "\":";
    out += std::to_string(counter.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += histogram.name;
    out += "\":{\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += std::to_string(histogram.sum);
    out += ",\"min\":";
    out += std::to_string(histogram.min);
    out += ",\"max\":";
    out += std::to_string(histogram.max);
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] == 0) continue;  // sparse: 65 mostly-zero slots
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '"';
      out += std::to_string(MetricHistogram::BucketLowerBound(i));
      out += "\":";
      out += std::to_string(histogram.buckets[i]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

double HistogramQuantile(const MetricsRegistry::HistogramSnapshot& histogram,
                         double q) {
  if (histogram.count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(histogram.min);
  if (q >= 1.0) return static_cast<double>(histogram.max);
  // The rank of the target sample (1-based), then walk buckets until the
  // cumulative count covers it.
  const double target = q * static_cast<double>(histogram.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < histogram.buckets.size(); ++i) {
    const uint64_t in_bucket = histogram.buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside [lower, upper): the fraction of this bucket's
    // samples below the target rank maps linearly onto the value range.
    const double lower = static_cast<double>(MetricHistogram::BucketLowerBound(i));
    const double upper =
        i + 1 < MetricHistogram::kNumBuckets
            ? static_cast<double>(MetricHistogram::BucketLowerBound(i + 1))
            : lower * 2.0;
    const double fraction =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    double estimate = lower + fraction * (upper - lower);
    estimate = std::max(estimate, static_cast<double>(histogram.min));
    estimate = std::min(estimate, static_cast<double>(histogram.max));
    return estimate;
  }
  return static_cast<double>(histogram.max);
}

namespace {

std::string SanitizeMetricName(std::string_view prefix, const std::string& name) {
  std::string out(prefix);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", value);
  *out += buf;
}

}  // namespace

std::string PrometheusString(const MetricsRegistry::Snapshot& snap,
                             std::string_view prefix) {
  std::string out;
  for (const MetricsRegistry::CounterSnapshot& counter : snap.counters) {
    const std::string name = SanitizeMetricName(prefix, counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter.value) + "\n";
  }
  for (const MetricsRegistry::HistogramSnapshot& histogram : snap.histograms) {
    const std::string name = SanitizeMetricName(prefix, histogram.name);
    out += "# TYPE " + name + " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      out += name + "{quantile=\"";
      AppendDouble(&out, q);
      out += "\"} ";
      AppendDouble(&out, HistogramQuantile(histogram, q));
      out += '\n';
    }
    out += name + "_sum " + std::to_string(histogram.sum) + "\n";
    out += name + "_count " + std::to_string(histogram.count) + "\n";
    out += "# TYPE " + name + "_min gauge\n";
    out += name + "_min " + std::to_string(histogram.min) + "\n";
    out += "# TYPE " + name + "_max gauge\n";
    out += name + "_max " + std::to_string(histogram.max) + "\n";
  }
  return out;
}

MetricsScope::MetricsScope(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  MetricsRegistry* expected = nullptr;
  owned_ = g_metrics.compare_exchange_strong(expected, registry,
                                             std::memory_order_release,
                                             std::memory_order_relaxed);
  if (owned_) g_metrics_epoch.fetch_add(1, std::memory_order_acq_rel);
}

MetricsScope::~MetricsScope() {
  if (owned_) {
    g_metrics_epoch.fetch_add(1, std::memory_order_acq_rel);
    g_metrics.store(nullptr, std::memory_order_release);
  }
}

MetricsRegistry* ActiveMetrics() {
  return g_metrics.load(std::memory_order_relaxed);
}

uint64_t MetricsScopeEpoch() {
  return g_metrics_epoch.load(std::memory_order_acquire);
}

uint64_t TelemetryNowNs() {
#if defined(__x86_64__)
  const TscClock& clock = GetTscClock();
  if (clock.usable) {
    const uint64_t ticks = __builtin_ia32_rdtsc() - clock.tsc0;
    return clock.ns0 +
           static_cast<uint64_t>(static_cast<double>(ticks) *
                                 clock.ns_per_tick);
  }
#endif
  return NowNs();
}

ScopedPhaseTimer::ScopedPhaseTimer(const char* name) : name_(name) {
  registry_ = ActiveMetrics();
  if (registry_ != nullptr) {
    start_ns_ = TelemetryNowNs();
    epoch_ = MetricsScopeEpoch();
  }
}

namespace {

/// Thread-local cache of resolved phase counters, keyed on the timer's
/// name pointer (a literal) and the scope epoch. Phase timers sit on
/// engine hot paths; the steady state is a short pointer scan instead of
/// two string concatenations and two shard-mutex lookups per phase.
struct PhaseSite {
  const char* name = nullptr;
  uint64_t epoch = 0;
  MetricCounter* ns_counter = nullptr;
  MetricCounter* calls_counter = nullptr;
};
thread_local std::vector<PhaseSite> t_phase_sites;

PhaseSite* ResolvePhaseSite(MetricsRegistry* registry, const char* name,
                            uint64_t epoch) {
  for (PhaseSite& site : t_phase_sites) {
    if (site.name == name && site.epoch == epoch) return &site;
  }
  char buf[80];
  PhaseSite resolved;
  resolved.name = name;
  resolved.epoch = epoch;
  int n = std::snprintf(buf, sizeof(buf), "%s.ns", name);
  if (n <= 0 || static_cast<size_t>(n) >= sizeof(buf)) return nullptr;
  resolved.ns_counter =
      registry->Counter(std::string_view(buf, static_cast<size_t>(n)));
  n = std::snprintf(buf, sizeof(buf), "%s.calls", name);
  if (n <= 0 || static_cast<size_t>(n) >= sizeof(buf)) return nullptr;
  resolved.calls_counter =
      registry->Counter(std::string_view(buf, static_cast<size_t>(n)));
  for (PhaseSite& site : t_phase_sites) {
    if (site.name == name) {
      site = resolved;
      return &site;
    }
  }
  t_phase_sites.push_back(resolved);
  return &t_phase_sites.back();
}

}  // namespace

ScopedPhaseTimer::~ScopedPhaseTimer() {
  if (registry_ == nullptr) return;
  // Use the registry and epoch captured at entry: if the scope ended
  // mid-phase the registry still outlives its scope (the caller owns
  // both), a new scope's registry must not receive a partial phase, and
  // keying the cache on the entry epoch keeps stale handles from leaking
  // into the next scope.
  PhaseSite* site = ResolvePhaseSite(registry_, name_, epoch_);
  if (site == nullptr) return;
  site->ns_counter->Add(TelemetryNowNs() - start_ns_);
  site->calls_counter->Add(1);
}

}  // namespace oocq
