#ifndef OOCQ_SUPPORT_CANCELLATION_H_
#define OOCQ_SUPPORT_CANCELLATION_H_

/// Cooperative cancellation for long-running engine work.
///
/// A CancellationToken combines an optional wall-clock deadline with an
/// explicit Cancel() flag. Work loops that can run unboundedly long — the
/// Thm 3.1 membership-subset scan, the redundancy containment matrix, the
/// Thm 4.3 self-mapping iteration — poll Check() between independent work
/// items and surface a retryable status instead of finishing the scan:
///
///   CancellationToken token = CancellationToken::AfterMillis(50);
///   ContainmentOptions options;
///   options.cancel = &token;
///   StatusOr<bool> verdict = Contained(schema, q1, q2, options);
///   // verdict.status().code() == kDeadlineExceeded when the 50 ms passed
///
/// The token is owned by the caller (typically one per service request)
/// and shared by address: every worker of a parallel fan-out polls the
/// same token, so one expiry aborts the whole region cooperatively —
/// workers finish their current item, the region joins its pool, and no
/// thread is left spinning. Checks are a relaxed atomic load plus (when a
/// deadline is set) one steady_clock read; they are safe from any thread.
///
/// Check() distinguishes the two causes: an expired deadline yields
/// kDeadlineExceeded, an explicit Cancel() yields kUnavailable — both
/// retryable (IsRetryable), so callers such as the ContainmentCache never
/// memoize them.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/status.h"

namespace oocq {

class CancellationToken {
 public:
  /// A token that never expires on its own; only Cancel() trips it.
  CancellationToken() = default;

  /// A token that expires when `deadline` passes.
  explicit CancellationToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// A token expiring `millis` from now. 0 is an already-expired deadline
  /// (useful for tests of the abort path); use the default constructor
  /// for "no deadline".
  static CancellationToken AfterMillis(uint64_t millis) {
    return CancellationToken(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(millis));
  }

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token explicitly (shutdown, client disconnect). Idempotent
  /// and safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }

  /// True when the token has tripped — explicitly or by deadline.
  bool Expired() const {
    if (cancelled()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Ok while live; kUnavailable after Cancel(); kDeadlineExceeded once
  /// the deadline passed. Poll between independent work items.
  Status Check() const {
    if (cancelled()) return Status::Unavailable("request cancelled");
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_CANCELLATION_H_
