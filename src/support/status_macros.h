#ifndef OOCQ_SUPPORT_STATUS_MACROS_H_
#define OOCQ_SUPPORT_STATUS_MACROS_H_

#include "support/status.h"

/// Propagates a non-OK Status out of the current function.
#define OOCQ_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::oocq::Status oocq_status_tmp_ = (expr);     \
    if (!oocq_status_tmp_.ok()) return oocq_status_tmp_; \
  } while (false)

#define OOCQ_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define OOCQ_STATUS_MACROS_CONCAT_(x, y) OOCQ_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define OOCQ_ASSIGN_OR_RETURN(lhs, expr)                                   \
  OOCQ_ASSIGN_OR_RETURN_IMPL_(                                             \
      OOCQ_STATUS_MACROS_CONCAT_(oocq_statusor_, __LINE__), lhs, expr)

#define OOCQ_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#endif  // OOCQ_SUPPORT_STATUS_MACROS_H_
