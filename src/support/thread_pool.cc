#include "support/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "support/failpoint.h"
#include "support/metrics.h"

namespace oocq {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local bool t_in_parallel_region = false;

/// RAII flag marking the current thread as a parallel worker for the
/// duration of a drained region.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : previous_(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~ParallelRegionGuard() { t_in_parallel_region = previous_; }

 private:
  bool previous_;
};

}  // namespace

uint32_t EffectiveThreads(const ParallelOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

bool InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(uint32_t num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // With a metrics scope installed, wrap the task to sample queue wait
  // and run time; the registry outlives the region (the caller owns both
  // and drains the pool before the scope ends).
  if (MetricsRegistry* metrics = ActiveMetrics()) {
    metrics->Add("pool/tasks", 1);
    task = [metrics, enqueue_ns = NowNs(), inner = std::move(task)] {
      const uint64_t start_ns = NowNs();
      metrics->Record("pool/queue_wait_ns", start_ns - enqueue_ns);
      inner();
      metrics->Record("pool/task_ns", NowNs() - start_ns);
    };
  }
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
    depth = queue_.size();
  }
  cv_.notify_one();
  MetricRecord("pool/queue_depth", depth);
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hook: delay simulates a stalled worker (the serve watchdog's
    // trigger), crash a worker death. `error` is inert here — a pool task
    // has no Status channel.
    Failpoints::Hit("pool/dispatch");
    task();
  }
}

void ParallelFor(const ParallelOptions& options, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const uint32_t threads = EffectiveThreads(options);
  if (threads <= 1 || n < options.min_parallel_items || InParallelRegion()) {
    MetricAdd("pool/regions_inline", 1);
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  MetricAdd("pool/regions", 1);

  // Indices are claimed in order from a shared counter, so the set of
  // started indices is always a prefix — the property ParallelMap's
  // smallest-failure determinism relies on.
  std::atomic<size_t> next{0};
  auto drain = [&next, n, &fn] {
    ParallelRegionGuard guard;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };

  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(threads, n));
  ThreadPool pool(workers - 1);  // the caller is worker #0
  std::vector<std::future<void>> futures;
  futures.reserve(workers - 1);
  for (uint32_t w = 0; w + 1 < workers; ++w) {
    futures.push_back(pool.Submit(drain));
  }
  drain();
  for (std::future<void>& future : futures) future.get();
}

}  // namespace oocq
