#include "support/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "support/failpoint.h"
#include "support/metrics.h"

namespace oocq {

namespace {

thread_local bool t_in_parallel_region = false;

/// RAII flag marking the current thread as a parallel worker for the
/// duration of a drained region.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : previous_(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~ParallelRegionGuard() { t_in_parallel_region = previous_; }

 private:
  bool previous_;
};

}  // namespace

uint32_t EffectiveThreads(const ParallelOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

bool InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(uint32_t num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

const ThreadPool::PoolMetrics* ThreadPool::ResolvePoolMetrics(
    MetricsRegistry* metrics) {
  auto handles = std::make_unique<PoolMetrics>();
  handles->registry = metrics;
  handles->tasks = metrics->Counter("pool/tasks");
  handles->queue_wait_ns = metrics->Histogram("pool/queue_wait_ns");
  handles->task_ns = metrics->Histogram("pool/task_ns");
  handles->queue_depth = metrics->Histogram("pool/queue_depth");
  const PoolMetrics* out = handles.get();
  std::lock_guard<std::mutex> lock(mu_);
  pool_metrics_storage_.push_back(std::move(handles));
  pool_metrics_.store(out, std::memory_order_release);
  return out;
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // With a metrics scope installed, the entry carries the enqueue time
  // and resolved handles so the worker can sample queue wait and run
  // time; the registry outlives the region (the caller owns both and
  // drains the pool before the scope ends). Handles are cached per
  // registry, so the steady state never touches a registry shard mutex.
  Entry entry;
  if (MetricsRegistry* metrics = ActiveMetrics()) {
    const PoolMetrics* handles = pool_metrics_.load(std::memory_order_acquire);
    if (handles == nullptr || handles->registry != metrics) {
      handles = ResolvePoolMetrics(metrics);
    }
    handles->tasks->Add(1);
    entry.enqueue_ns = TelemetryNowNs();
    entry.metrics = handles;
  }
  entry.task = std::packaged_task<void()>(std::move(task));
  std::future<void> future = entry.task.get_future();
  const PoolMetrics* handles = entry.metrics;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(entry));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (handles != nullptr) handles->queue_depth->Record(depth);
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hook: delay simulates a stalled worker (the serve watchdog's
    // trigger), crash a worker death. `error` is inert here — a pool task
    // has no Status channel.
    Failpoints::Hit("pool/dispatch");
    if (entry.metrics != nullptr) {
      const uint64_t start_ns = TelemetryNowNs();
      entry.metrics->queue_wait_ns->Record(start_ns - entry.enqueue_ns);
      entry.task();
      entry.metrics->task_ns->Record(TelemetryNowNs() - start_ns);
    } else {
      entry.task();
    }
  }
}

void ParallelFor(const ParallelOptions& options, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const uint32_t threads = EffectiveThreads(options);
  if (threads <= 1 || n < options.min_parallel_items || InParallelRegion()) {
    OOCQ_METRIC_ADD("pool/regions_inline", 1);
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  OOCQ_METRIC_ADD("pool/regions", 1);

  // Indices are claimed in order from a shared counter, so the set of
  // started indices is always a prefix — the property ParallelMap's
  // smallest-failure determinism relies on.
  std::atomic<size_t> next{0};
  auto drain = [&next, n, &fn] {
    ParallelRegionGuard guard;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };

  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(threads, n));
  ThreadPool pool(workers - 1);  // the caller is worker #0
  std::vector<std::future<void>> futures;
  futures.reserve(workers - 1);
  for (uint32_t w = 0; w + 1 < workers; ++w) {
    futures.push_back(pool.Submit(drain));
  }
  drain();
  for (std::future<void>& future : futures) future.get();
}

}  // namespace oocq
