#ifndef OOCQ_SUPPORT_FAILPOINT_H_
#define OOCQ_SUPPORT_FAILPOINT_H_

/// Named, deterministic fault injection for chaos testing the engine and
/// the server (docs/robustness.md). A *failpoint* is a named site in the
/// code — WAL fsync, snapshot write, thread-pool dispatch, the Thm 3.1
/// subset scan, socket accept/read/write — that normally does nothing
/// and costs two inlined atomic loads. When armed, the site fires a
/// configured action:
///
///   error[:CODE]   return a Status with CODE (default UNAVAILABLE)
///   delay:MS       sleep MS milliseconds, then continue normally
///   crash          abort() — simulates SIGKILL at exactly this site
///   off            disarm
///
/// Every action takes an optional hit selector, so "fail the 3rd WAL
/// fsync" is reproducible:
///
///   wal/fsync=error@3        fire on the 3rd hit only
///   tcp/accept=delay:50@2+   fire on the 2nd hit and every one after
///   repl/ship=error@5-12     fire on hits 5 through 12, then heal
///   snapshot/write=crash     fire on every hit (first one aborts)
///
/// The `@A-B` range form is what makes a partition *heal* deterministic:
/// a process armed once at startup (OOCQ_FAILPOINTS is read exactly
/// once) can black-hole a window of peer traffic and then recover
/// without anyone re-configuring it.
///
/// Specs combine with commas: "wal/fsync=error@3,tcp/accept=delay:20".
/// Arm them via Failpoints::Configure() (used by OocqService options and
/// `oocq_serve --failpoints=...`) or the OOCQ_FAILPOINTS environment
/// variable, read once at first use.
///
/// Hit counters are per-failpoint and process-wide; tests call Reset()
/// between scenarios. Sites call:
///
///   OOCQ_RETURN_IF_ERROR(Failpoints::Check("wal/fsync"));
///
/// or, where no Status can propagate (accept loop, pool worker):
///
///   Failpoints::Hit("tcp/accept");   // delay/crash only; error is inert
///
/// Network seams (follower dial/poll, router probe/dial) use the labeled
/// form, which matches armed names of the shape `site:<peer-glob>`
/// against the concrete peer address in addition to the bare site name:
///
///   OOCQ_RETURN_IF_ERROR(
///       Failpoints::CheckLabeled("net/partition", "127.0.0.1:7741"));
///
/// armed as `net/partition:127.0.0.1:7741=error` (one peer) or
/// `net/partition:*=error@3-9` (every peer, hits 3..9 only). The glob
/// understands `*` (any run) and `?` (one char).
/// Sites self-register on first hit; Failpoints::KnownNames() lists the
/// canonical set wired through the tree so the chaos suite can assert
/// every one of them fired (tests/chaos_test.cc).

#include <atomic>
#include <string>
#include <vector>

#include "support/status.h"

namespace oocq {

class Failpoints {
 public:
  /// The canonical failpoint names threaded through the tree. Kept in one
  /// place so the chaos suite enumerates them; a site name not listed
  /// here still works but is invisible to ctest -L chaos coverage.
  static const std::vector<std::string>& KnownNames();

  /// Parses and arms `spec` ("name=action,name=action", grammar above).
  /// An empty spec is a no-op (Ok). Unknown action or malformed selector
  /// is kInvalidArgument; nothing is armed when parsing fails.
  static Status Configure(const std::string& spec);

  /// Disarms every failpoint and zeroes all hit counters.
  static void Reset();

  /// True when at least one failpoint is armed. Inlined so a disarmed
  /// site costs two predictable atomic loads and no call — the entire
  /// price of shipping failpoints in production builds.
  static bool AnyActive() {
    if (!env_checked_.load(std::memory_order_acquire)) BootstrapFromEnv();
    return armed_.load(std::memory_order_relaxed) != 0;
  }

  /// The full check: counts a hit and fires the armed action. Returns the
  /// configured status for `error`, sleeps for `delay`, aborts for
  /// `crash`; Ok when disarmed or the hit selector does not match.
  static Status Check(const char* name) {
    if (!AnyActive()) return Status::Ok();
    return CheckSlow(name);
  }

  /// Check() for sites that cannot surface a Status (accept loop, pool
  /// workers): delay and crash fire, error returns false ("site should
  /// fail") and the caller decides what that means locally.
  static bool Hit(const char* name) {
    if (!AnyActive()) return true;
    return CheckSlow(name).ok();
  }

  /// Check() for per-peer network seams. Counts a hit on the bare `site`
  /// name (so coverage tooling sees it) and on every armed point whose
  /// name is `site:<glob>` with the glob matching `label`; returns the
  /// first injected error among them. Label is typically "host:port".
  static Status CheckLabeled(const char* site, const std::string& label) {
    if (!AnyActive()) return Status::Ok();
    return CheckLabeledSlow(site, label);
  }

  /// CheckLabeled() for sites that cannot surface a Status: returns
  /// false when the peer should be treated as unreachable.
  static bool HitLabeled(const char* site, const std::string& label) {
    if (!AnyActive()) return true;
    return CheckLabeledSlow(site, label).ok();
  }

  /// Hits observed at `name` since the last Reset() (0 if never hit).
  static uint64_t HitCount(const std::string& name);

  /// Names hit at least once since the last Reset(), sorted.
  static std::vector<std::string> HitNames();

 private:
  /// The armed path: registry lock, self-registration, hit accounting,
  /// selector match, action.
  static Status CheckSlow(const char* name);

  /// The armed path for CheckLabeled(): fires the bare site plus every
  /// armed `site:<glob>` point matching `label`.
  static Status CheckLabeledSlow(const char* site, const std::string& label);

  /// Reads OOCQ_FAILPOINTS exactly once before the first site check, so
  /// a chaos run needs no code changes in the binary under test.
  static void BootstrapFromEnv();

  /// Count of armed failpoints; the disarmed fast path is one relaxed
  /// load of this (maintained by Configure()/Reset() in failpoint.cc).
  static inline std::atomic<uint64_t> armed_{0};

  /// Latched true once the env bootstrap ran (acquire/release pairs with
  /// the Configure() the bootstrap may perform).
  static inline std::atomic<bool> env_checked_{false};
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_FAILPOINT_H_
