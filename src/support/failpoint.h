#ifndef OOCQ_SUPPORT_FAILPOINT_H_
#define OOCQ_SUPPORT_FAILPOINT_H_

/// Named, deterministic fault injection for chaos testing the engine and
/// the server (docs/robustness.md). A *failpoint* is a named site in the
/// code — WAL fsync, snapshot write, thread-pool dispatch, the Thm 3.1
/// subset scan, socket accept/read/write — that normally does nothing
/// and costs two inlined atomic loads. When armed, the site fires a
/// configured action:
///
///   error[:CODE]   return a Status with CODE (default UNAVAILABLE)
///   delay:MS       sleep MS milliseconds, then continue normally
///   crash          abort() — simulates SIGKILL at exactly this site
///   off            disarm
///
/// Every action takes an optional hit selector, so "fail the 3rd WAL
/// fsync" is reproducible:
///
///   wal/fsync=error@3        fire on the 3rd hit only
///   tcp/accept=delay:50@2+   fire on the 2nd hit and every one after
///   snapshot/write=crash     fire on every hit (first one aborts)
///
/// Specs combine with commas: "wal/fsync=error@3,tcp/accept=delay:20".
/// Arm them via Failpoints::Configure() (used by OocqService options and
/// `oocq_serve --failpoints=...`) or the OOCQ_FAILPOINTS environment
/// variable, read once at first use.
///
/// Hit counters are per-failpoint and process-wide; tests call Reset()
/// between scenarios. Sites call:
///
///   OOCQ_RETURN_IF_ERROR(Failpoints::Check("wal/fsync"));
///
/// or, where no Status can propagate (accept loop, pool worker):
///
///   Failpoints::Hit("tcp/accept");   // delay/crash only; error is inert
///
/// Sites self-register on first hit; Failpoints::KnownNames() lists the
/// canonical set wired through the tree so the chaos suite can assert
/// every one of them fired (tests/chaos_test.cc).

#include <atomic>
#include <string>
#include <vector>

#include "support/status.h"

namespace oocq {

class Failpoints {
 public:
  /// The canonical failpoint names threaded through the tree. Kept in one
  /// place so the chaos suite enumerates them; a site name not listed
  /// here still works but is invisible to ctest -L chaos coverage.
  static const std::vector<std::string>& KnownNames();

  /// Parses and arms `spec` ("name=action,name=action", grammar above).
  /// An empty spec is a no-op (Ok). Unknown action or malformed selector
  /// is kInvalidArgument; nothing is armed when parsing fails.
  static Status Configure(const std::string& spec);

  /// Disarms every failpoint and zeroes all hit counters.
  static void Reset();

  /// True when at least one failpoint is armed. Inlined so a disarmed
  /// site costs two predictable atomic loads and no call — the entire
  /// price of shipping failpoints in production builds.
  static bool AnyActive() {
    if (!env_checked_.load(std::memory_order_acquire)) BootstrapFromEnv();
    return armed_.load(std::memory_order_relaxed) != 0;
  }

  /// The full check: counts a hit and fires the armed action. Returns the
  /// configured status for `error`, sleeps for `delay`, aborts for
  /// `crash`; Ok when disarmed or the hit selector does not match.
  static Status Check(const char* name) {
    if (!AnyActive()) return Status::Ok();
    return CheckSlow(name);
  }

  /// Check() for sites that cannot surface a Status (accept loop, pool
  /// workers): delay and crash fire, error returns false ("site should
  /// fail") and the caller decides what that means locally.
  static bool Hit(const char* name) {
    if (!AnyActive()) return true;
    return CheckSlow(name).ok();
  }

  /// Hits observed at `name` since the last Reset() (0 if never hit).
  static uint64_t HitCount(const std::string& name);

  /// Names hit at least once since the last Reset(), sorted.
  static std::vector<std::string> HitNames();

 private:
  /// The armed path: registry lock, self-registration, hit accounting,
  /// selector match, action.
  static Status CheckSlow(const char* name);

  /// Reads OOCQ_FAILPOINTS exactly once before the first site check, so
  /// a chaos run needs no code changes in the binary under test.
  static void BootstrapFromEnv();

  /// Count of armed failpoints; the disarmed fast path is one relaxed
  /// load of this (maintained by Configure()/Reset() in failpoint.cc).
  static inline std::atomic<uint64_t> armed_{0};

  /// Latched true once the env bootstrap ran (acquire/release pairs with
  /// the Configure() the bootstrap may perform).
  static inline std::atomic<bool> env_checked_{false};
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_FAILPOINT_H_
