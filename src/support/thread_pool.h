#ifndef OOCQ_SUPPORT_THREAD_POOL_H_
#define OOCQ_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/status.h"

namespace oocq {

class MetricsRegistry;
class MetricCounter;
class MetricHistogram;

/// Fan-out knobs shared by every parallel region in the engine. The
/// default is fully serial (num_threads = 1): parallelism is opt-in and
/// the serial path is byte-for-byte the pre-parallel pipeline.
struct ParallelOptions {
  /// Worker count for parallel regions. 1 = serial; 0 = one worker per
  /// hardware thread.
  uint32_t num_threads = 1;
  /// Regions with fewer independent items than this run inline on the
  /// calling thread (fan-out overhead would dominate).
  uint32_t min_parallel_items = 2;
};

/// Resolves ParallelOptions::num_threads: 0 means hardware concurrency
/// (at least 1).
uint32_t EffectiveThreads(const ParallelOptions& options);

/// True while the calling thread is executing a ParallelFor task. Nested
/// parallel regions detect this and run serially, so a fan-out of fan-outs
/// never multiplies threads beyond one pool.
bool InParallelRegion();

/// A fixed pool of worker threads draining a task queue. Tasks submitted
/// after construction run on the first free worker; the destructor drains
/// the queue and joins. Used by ParallelFor, which remains the intended
/// entry point — the pool is exposed for callers that need long-lived
/// workers with futures.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed and spawns none — tasks
  /// submitted to an empty pool never run, so size pools with
  /// EffectiveThreads() first.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future becomes ready when it finishes (or
  /// rethrows if the task threw).
  std::future<void> Submit(std::function<void()> task);

  uint32_t num_threads() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  /// Resolved-once metric handles for the pool's per-task samples. One
  /// struct per registry the pool has seen; Submit re-resolves only when
  /// the installed registry changes, so the steady state is four atomic
  /// bumps instead of four name lookups (each a shard mutex) per task.
  struct PoolMetrics {
    MetricsRegistry* registry = nullptr;
    MetricCounter* tasks = nullptr;
    MetricHistogram* queue_wait_ns = nullptr;
    MetricHistogram* task_ns = nullptr;
    MetricHistogram* queue_depth = nullptr;
  };

  /// A queued task plus the metric context captured at Submit time. The
  /// worker samples queue wait / run time from these fields directly, so
  /// instrumentation never re-wraps the task in another std::function.
  struct Entry {
    std::packaged_task<void()> task;
    uint64_t enqueue_ns = 0;
    const PoolMetrics* metrics = nullptr;  // null = no scope at Submit
  };

  void WorkerLoop();
  const PoolMetrics* ResolvePoolMetrics(MetricsRegistry* metrics);

  std::vector<std::thread> workers_;
  std::deque<Entry> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<const PoolMetrics*> pool_metrics_{nullptr};
  std::vector<std::unique_ptr<PoolMetrics>> pool_metrics_storage_;  // mu_
};

/// Runs fn(0), …, fn(n-1), distributing indices over up to
/// EffectiveThreads(options) threads; the calling thread participates as
/// one worker. Falls back to a plain in-order serial loop when the region
/// is too small (n < min_parallel_items), one thread is requested, or the
/// caller is already inside a parallel region. Returns only after every
/// claimed index finished; `fn` synchronizes its own writes to shared
/// state (index-addressed slots need no locking — the join publishes them).
void ParallelFor(const ParallelOptions& options, size_t n,
                 const std::function<void(size_t)>& fn);

/// Runs `n` independent fallible tasks and collects their values in index
/// order. Deterministic regardless of scheduling:
///
///  * success: returns exactly {fn(0), …, fn(n-1)};
///  * failure: returns the error of the *smallest* failing index — the
///    same error a serial in-order loop would surface — and cancels
///    cooperatively (indices greater than the smallest failure seen so
///    far are skipped, never indices below it).
template <typename T>
StatusOr<std::vector<T>> ParallelMap(
    const ParallelOptions& options, size_t n,
    const std::function<StatusOr<T>(size_t)>& fn) {
  std::vector<std::optional<T>> slots(n);
  std::vector<Status> errors(n, Status::Ok());
  std::atomic<size_t> first_error{static_cast<size_t>(-1)};
  ParallelFor(options, n, [&](size_t i) {
    // Cooperative cancellation: never skips an index below the smallest
    // failure, so the returned error is schedule-independent.
    if (i > first_error.load(std::memory_order_acquire)) return;
    StatusOr<T> result = fn(i);
    if (result.ok()) {
      slots[i] = *std::move(result);
      return;
    }
    errors[i] = result.status();
    size_t cur = first_error.load(std::memory_order_relaxed);
    while (i < cur && !first_error.compare_exchange_weak(
                          cur, i, std::memory_order_acq_rel)) {
    }
  });
  const size_t e = first_error.load(std::memory_order_acquire);
  if (e != static_cast<size_t>(-1)) return errors[e];
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(*std::move(slot));
  return out;
}

}  // namespace oocq

#endif  // OOCQ_SUPPORT_THREAD_POOL_H_
