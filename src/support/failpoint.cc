#include "support/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "support/metrics.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

enum class Action { kOff, kError, kDelay, kCrash };

/// One armed failpoint. `from_hit`/`to_hit` encode the selector as an
/// inclusive hit window: "@N" fires exactly on hit N (from == to == N),
/// "@N+" on hit N and after (to == max), "@A-B" on hits A through B,
/// no selector on every hit (1..max).
struct Arm {
  Action action = Action::kOff;
  StatusCode code = StatusCode::kUnavailable;
  uint64_t delay_ms = 0;
  uint64_t from_hit = 1;
  uint64_t to_hit = UINT64_MAX;
};

struct PointState {
  Arm arm;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::once_flag g_env_once;

/// Parses a decimal hit number; 0 and non-digits are errors.
StatusOr<uint64_t> ParseHit(const std::string& digits) {
  if (digits.empty()) {
    return Status::InvalidArgument("failpoint selector '@' needs a number");
  }
  uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad failpoint hit selector '@" + digits +
                                     "'");
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  if (n == 0) {
    return Status::InvalidArgument("failpoint hits are 1-based");
  }
  return n;
}

StatusOr<Arm> ParseAction(const std::string& text) {
  Arm arm;
  std::string body = text;
  // Split off the "@N" / "@N+" / "@A-B" hit selector first.
  size_t at = body.rfind('@');
  if (at != std::string::npos) {
    std::string selector = body.substr(at + 1);
    body = body.substr(0, at);
    bool plus = !selector.empty() && selector.back() == '+';
    if (plus) selector.pop_back();
    size_t dash = selector.find('-');
    if (dash != std::string::npos) {
      if (plus) {
        return Status::InvalidArgument("failpoint selector '@" + selector +
                                       "+' mixes range and '+'");
      }
      OOCQ_ASSIGN_OR_RETURN(arm.from_hit, ParseHit(selector.substr(0, dash)));
      OOCQ_ASSIGN_OR_RETURN(arm.to_hit, ParseHit(selector.substr(dash + 1)));
      if (arm.to_hit < arm.from_hit) {
        return Status::InvalidArgument("failpoint range '@" + selector +
                                       "' is backwards");
      }
    } else {
      OOCQ_ASSIGN_OR_RETURN(arm.from_hit, ParseHit(selector));
      arm.to_hit = plus ? UINT64_MAX : arm.from_hit;
    }
  }
  // Then the ":ARG" payload.
  std::string argument;
  size_t colon = body.find(':');
  if (colon != std::string::npos) {
    argument = body.substr(colon + 1);
    body = body.substr(0, colon);
  }
  if (body == "off") {
    arm.action = Action::kOff;
  } else if (body == "error") {
    arm.action = Action::kError;
    if (!argument.empty()) {
      if (argument == "UNAVAILABLE") {
        arm.code = StatusCode::kUnavailable;
      } else if (argument == "DEADLINE_EXCEEDED") {
        arm.code = StatusCode::kDeadlineExceeded;
      } else if (argument == "RESOURCE_EXHAUSTED") {
        arm.code = StatusCode::kResourceExhausted;
      } else if (argument == "INTERNAL") {
        arm.code = StatusCode::kInternal;
      } else {
        return Status::InvalidArgument("bad failpoint error code '" +
                                       argument + "'");
      }
    }
  } else if (body == "delay") {
    arm.action = Action::kDelay;
    for (char c : argument) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad failpoint delay '" + argument +
                                       "'");
      }
      arm.delay_ms = arm.delay_ms * 10 + static_cast<uint64_t>(c - '0');
    }
    if (argument.empty()) {
      return Status::InvalidArgument("delay needs ':MS'");
    }
  } else if (body == "crash") {
    arm.action = Action::kCrash;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + body + "'");
  }
  return arm;
}

/// The fire decision + side effect for one counted hit. Returns the
/// injected error (never Ok) when the action is `error` and the selector
/// matched; Ok otherwise.
Status FireLocked(const std::string& name, PointState& point,
                  std::unique_lock<std::mutex>& lock) {
  ++point.hits;
  const Arm& arm = point.arm;
  if (arm.action == Action::kOff) return Status::Ok();
  const uint64_t hit = point.hits;
  const bool selected = hit >= arm.from_hit && hit <= arm.to_hit;
  if (!selected) return Status::Ok();
  MetricAdd("failpoint/fired", 1);
  switch (arm.action) {
    case Action::kError:
      return Status(arm.code,
                    "injected failure at failpoint '" + name + "'");
    case Action::kDelay: {
      const uint64_t ms = arm.delay_ms;
      lock.unlock();  // never sleep under the registry mutex
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return Status::Ok();
    }
    case Action::kCrash:
      std::fprintf(stderr, "failpoint '%s': injected crash\n", name.c_str());
      std::abort();
    case Action::kOff:
      break;
  }
  return Status::Ok();
}

/// Iterative `*`/`?` glob match (the classic two-pointer backtrack).
bool GlobMatch(const std::string& glob, const std::string& text) {
  size_t g = 0, t = 0;
  size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == text[t])) {
      ++g;
      ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = t;
    } else if (star != std::string::npos) {
      g = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

}  // namespace

void Failpoints::BootstrapFromEnv() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("OOCQ_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      (void)Failpoints::Configure(env);
    }
    env_checked_.store(true, std::memory_order_release);
  });
}

const std::vector<std::string>& Failpoints::KnownNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "wal/append",        // persist/wal.cc: before the frame write
      "wal/fsync",         // persist/wal.cc: before the group-commit fsync
      "snapshot/write",    // persist/snapshot.cc: before the durable write
      "snapshot/load",     // persist/snapshot.cc: before reading a file
      "pool/dispatch",     // support/thread_pool.cc: before a task runs
      "core/subset_scan",  // core/containment.cc: per Thm 3.1 chunk
      "cache/lookup",      // core/containment_cache.cc: on entry
      "service/execute",   // server/service.cc: before the request body
      "tcp/accept",        // server/tcp_server.cc: after accept() returns
      "tcp/read",          // server/tcp_server.cc: before each recv()
      "tcp/write",         // server/tcp_server.cc: before each send()
      "repl/ship",         // server/protocol.cc: before serving REPL STATE/SUBSCRIBE
      "repl/apply",        // server/service.cc: before applying a shipped record
      "repl/promote",      // server/service.cc: before a follower promotes
      "repl/fence",        // server/service.cc: when a primary fences itself
      "net/partition",     // replicate/peer.cc + follower.cc: per-peer black-hole
      "compile/exec",      // compile fast paths: force interpreter bailout
  };
  return *names;
}

Status Failpoints::Configure(const std::string& spec) {
  if (spec.empty()) return Status::Ok();
  // Parse the whole spec before arming anything, so a bad entry cannot
  // leave a half-armed configuration behind.
  std::vector<std::pair<std::string, Arm>> parsed;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string entry = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' is not name=action");
    }
    OOCQ_ASSIGN_OR_RETURN(Arm arm, ParseAction(entry.substr(eq + 1)));
    parsed.emplace_back(entry.substr(0, eq), arm);
  }

  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, arm] : parsed) {
    PointState& point = registry.points[name];
    const bool was_armed = point.arm.action != Action::kOff;
    const bool now_armed = arm.action != Action::kOff;
    point.arm = arm;
    point.hits = 0;  // arming (or re-arming) restarts the hit counter
    if (was_armed != now_armed) {
      if (now_armed) {
        armed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        armed_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  return Status::Ok();
}

void Failpoints::Reset() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  armed_.store(0, std::memory_order_relaxed);
}

Status Failpoints::CheckSlow(const char* name) {
  Registry& registry = TheRegistry();
  std::unique_lock<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) {
    // Sites self-register so HitNames() shows coverage even for points
    // that were never armed.
    it = registry.points.emplace(name, PointState{}).first;
  }
  return FireLocked(it->first, it->second, lock);
}

Status Failpoints::CheckLabeledSlow(const char* site,
                                    const std::string& label) {
  Registry& registry = TheRegistry();
  std::unique_lock<std::mutex> lock(registry.mu);
  // Fire the bare site first (self-registers, and supports the unlabeled
  // `net/partition=error` arm that black-holes every peer), then every
  // armed `site:<glob>` point whose glob matches this peer label.
  std::vector<std::string> to_fire;
  const std::string base(site);
  to_fire.push_back(base);
  const std::string prefix = base + ":";
  for (const auto& [name, point] : registry.points) {
    if (point.arm.action == Action::kOff) continue;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (GlobMatch(name.substr(prefix.size()), label)) to_fire.push_back(name);
  }
  Status result = Status::Ok();
  for (const std::string& name : to_fire) {
    // FireLocked may release the lock (delay action); re-take it and
    // re-find by name so map mutation between fires is safe.
    if (!lock.owns_lock()) lock.lock();
    auto it = registry.points.find(name);
    if (it == registry.points.end()) {
      it = registry.points.emplace(name, PointState{}).first;
    }
    Status fired = FireLocked(it->first, it->second, lock);
    if (result.ok() && !fired.ok()) result = fired;
  }
  return result;
}

uint64_t Failpoints::HitCount(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> Failpoints::HitNames() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  for (const auto& [name, point] : registry.points) {
    if (point.hits != 0) names.push_back(name);
  }
  return names;
}

}  // namespace oocq
