#ifndef OOCQ_SUPPORT_RESOURCE_BUDGET_H_
#define OOCQ_SUPPORT_RESOURCE_BUDGET_H_

/// Cooperative resource governance for the engine's exponential paths
/// (docs/robustness.md). The Prop 2.1 expansion multiplies disjuncts
/// over terminal classes and the Thm 3.1 subset scan walks 2^|T|
/// candidate sets; a ResourceBudget bounds both — plus the bytes a
/// server keeps resident for session catalogs — so an adversarial
/// schema degrades into a retryable kResourceExhausted instead of
/// exhausting memory.
///
/// Work loops charge the budget between independent items, exactly
/// where they poll a CancellationToken:
///
///   ResourceBudget budget({.max_subset_work_units = 1 << 16});
///   ContainmentOptions options;
///   options.budget = &budget;
///   StatusOr<bool> verdict = Contained(schema, q1, q2, options);
///   // kResourceExhausted once the scan passes 2^16 masks
///
/// Budgets chain: a per-request budget constructed with a parent charges
/// both, so the parent acts as the *session-wide* cap on concurrently
/// resident work while the child caps one request. The destructor
/// returns everything this budget charged to the chain above it, making
/// per-request budgets self-cleaning leases on the service budget.
/// Resident bytes are the exception — they outlive requests (a session's
/// schema stays resident until dropped), so they are charged on the
/// service budget directly and released explicitly.
///
/// All counters are atomics; Charge*() is one fetch_add plus a compare,
/// safe from every worker of a parallel fan-out. Overruns undo their
/// charge, so a shared budget never sticks above its limit because of a
/// refused request.

#include <atomic>
#include <cstdint>
#include <string>

#include "support/status.h"

namespace oocq {

/// Limits (0 = unlimited) for the three governed axes.
struct ResourceLimits {
  /// Cap on Prop 2.1 terminal disjuncts materialized.
  uint64_t max_expanded_disjuncts = 0;
  /// Cap on Thm 3.1 subset-scan work units (one per membership-subset
  /// mask scanned, across all augmentations and disjunct tests).
  uint64_t max_subset_work_units = 0;
  /// Cap on resident catalog bytes (schema/query/state source text a
  /// service keeps registered).
  uint64_t max_resident_bytes = 0;

  bool AnySet() const {
    return max_expanded_disjuncts != 0 || max_subset_work_units != 0 ||
           max_resident_bytes != 0;
  }
};

class ResourceBudget {
 public:
  explicit ResourceBudget(ResourceLimits limits,
                          ResourceBudget* parent = nullptr)
      : limits_(limits), parent_(parent) {}

  /// Returns this budget's work charges to the parent chain (resident
  /// bytes are explicit — see the header comment).
  ~ResourceBudget() {
    if (parent_ == nullptr) return;
    uint64_t d = disjuncts_.load(std::memory_order_relaxed);
    uint64_t w = work_units_.load(std::memory_order_relaxed);
    if (d != 0) parent_->Release(parent_->disjuncts_, d);
    if (w != 0) parent_->Release(parent_->work_units_, w);
  }

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Charges `n` expanded disjuncts; kResourceExhausted (retryable) on
  /// overrun of this budget or any parent.
  Status ChargeDisjuncts(uint64_t n) {
    return Charge(&ResourceBudget::disjuncts_,
                  &ResourceLimits::max_expanded_disjuncts, n,
                  "expanded disjuncts", "max_expanded_disjuncts");
  }

  /// Charges `n` subset-scan work units.
  Status ChargeSubsetWork(uint64_t n) {
    return Charge(&ResourceBudget::work_units_,
                  &ResourceLimits::max_subset_work_units, n,
                  "subset-scan work units", "max_subset_work_units");
  }

  /// Charges `n` resident catalog bytes; pair with ReleaseResidentBytes
  /// when the catalog entry is dropped.
  Status ChargeResidentBytes(uint64_t n) {
    return Charge(&ResourceBudget::resident_bytes_,
                  &ResourceLimits::max_resident_bytes, n,
                  "resident catalog bytes", "max_resident_bytes");
  }

  void ReleaseResidentBytes(uint64_t n) {
    if (parent_ != nullptr) parent_->ReleaseResidentBytes(n);
    Release(resident_bytes_, n);
  }

  uint64_t disjuncts_charged() const {
    return disjuncts_.load(std::memory_order_relaxed);
  }
  uint64_t work_units_charged() const {
    return work_units_.load(std::memory_order_relaxed);
  }
  uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  /// Charges refused by *this* budget's limits (parent refusals count on
  /// the parent).
  uint64_t exhausted_count() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  const ResourceLimits& limits() const { return limits_; }

 private:
  Status Charge(std::atomic<uint64_t> ResourceBudget::* counter,
                uint64_t ResourceLimits::* limit, uint64_t n,
                const char* what, const char* knob) {
    // Parent first: a parent refusal must not leave a child charge
    // behind, and the child undo below never touches the parent.
    if (parent_ != nullptr) {
      Status up = parent_->Charge(counter, limit, n, what, knob);
      if (!up.ok()) return up;
    }
    const uint64_t cap = limits_.*limit;
    const uint64_t before = (this->*counter).fetch_add(n, std::memory_order_relaxed);
    if (cap != 0 && before + n > cap) {
      (this->*counter).fetch_sub(n, std::memory_order_relaxed);
      if (parent_ != nullptr) parent_->Release(parent_->*counter, n);
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::string(what) + " budget of " + std::to_string(cap) +
          " exceeded; retry with a larger ResourceLimits::" + knob);
    }
    return Status::Ok();
  }

  void Release(std::atomic<uint64_t>& counter, uint64_t n) {
    counter.fetch_sub(n, std::memory_order_relaxed);
  }

  const ResourceLimits limits_;
  ResourceBudget* const parent_;
  std::atomic<uint64_t> disjuncts_{0};
  std::atomic<uint64_t> work_units_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_RESOURCE_BUDGET_H_
