#include "support/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <numeric>

namespace oocq {
namespace trace_internal {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Flushing every span would serialize threads on the core mutex; batching
// amortizes it to one lock per kFlushBatch spans.
constexpr size_t kFlushBatch = 1024;

}  // namespace

/// The per-session shared sink. Buffers flush into `events` under `mu`;
/// `finalized` makes late flushes (threads outliving the session) drop
/// their events instead of corrupting the next session's log.
struct TraceLogCore {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::atomic<uint32_t> next_thread_index{0};
  bool finalized = false;
  uint64_t t0_ns = 0;
};

namespace {

// Session install state. `g_enabled` is the relaxed fast gate; the
// (epoch, core) pair only changes together under `g_mu`.
std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_epoch{1};
std::mutex g_mu;
std::shared_ptr<TraceLogCore> g_core;  // guarded by g_mu

}  // namespace

/// Thread-local staging area. Bound lazily to the active session's core
/// on first span (epoch-checked); rebinds when a new session starts.
struct ThreadTraceBuffer {
  std::shared_ptr<TraceLogCore> core;
  uint64_t epoch = 0;
  uint32_t thread_index = 0;
  uint64_t next_seq = 0;
  uint32_t depth = 0;
  std::vector<TraceEvent> batch;

  ~ThreadTraceBuffer() { Flush(); }

  void Flush() {
    if (core != nullptr && !batch.empty()) {
      std::lock_guard<std::mutex> lock(core->mu);
      if (!core->finalized) {
        for (TraceEvent& event : batch) core->events.push_back(std::move(event));
      }
    }
    batch.clear();
  }

  /// Points this thread at the currently installed session (or detaches
  /// it when none is installed). Pending events from the previous session
  /// are flushed first so they land in the right log.
  void Rebind() {
    Flush();
    std::lock_guard<std::mutex> lock(g_mu);
    core = g_core;
    epoch = g_epoch.load(std::memory_order_relaxed);
    next_seq = 0;
    depth = 0;
    if (core != nullptr) {
      thread_index = core->next_thread_index.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

namespace {

ThreadTraceBuffer& LocalBuffer() {
  static thread_local ThreadTraceBuffer buffer;
  return buffer;
}

/// The outermost ThreadSpanCapture alive on this thread (null when none).
thread_local ThreadSpanCapture* g_capture = nullptr;

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArgsJson(std::string* out, const TraceEvent& event) {
  *out += '{';
  bool first = true;
  for (const auto& [key, value] : event.args) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    AppendJsonEscaped(out, key);
    *out += "\":\"";
    AppendJsonEscaped(out, value);
    *out += '"';
  }
  *out += '}';
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open trace output file: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::Internal("failed writing trace output file: " + path);
  return Status::Ok();
}

/// Ids are ranks in signature-sorted order: deterministic whenever the
/// span structure is, and structurally-identical spans get interchangeable
/// consecutive ids.
void AssignDeterministicIds(std::vector<TraceEvent>* events) {
  std::vector<std::string> signatures;
  signatures.reserve(events->size());
  for (const TraceEvent& event : *events) signatures.push_back(event.Signature());
  std::vector<size_t> order(events->size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return signatures[a] < signatures[b];
  });
  for (size_t rank = 0; rank < order.size(); ++rank) {
    (*events)[order[rank]].id = rank + 1;
  }
}

}  // namespace
}  // namespace trace_internal

using trace_internal::LocalBuffer;
using trace_internal::NowNs;
using trace_internal::TraceLogCore;

std::string TraceEvent::Signature() const {
  std::string out = name;
  out += '(';
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += ')';
  return out;
}

bool TracingActive() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

TraceSession::TraceSession(TraceLog* log) {
  if (log == nullptr) return;
  std::lock_guard<std::mutex> lock(trace_internal::g_mu);
  if (trace_internal::g_core != nullptr) return;  // first session wins
  core_ = std::make_shared<TraceLogCore>();
  core_->t0_ns = NowNs();
  trace_internal::g_core = core_;
  trace_internal::g_epoch.fetch_add(1, std::memory_order_relaxed);
  trace_internal::g_enabled.store(true, std::memory_order_release);
  log_ = log;
}

TraceSession::~TraceSession() {
  if (log_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(trace_internal::g_mu);
    trace_internal::g_enabled.store(false, std::memory_order_release);
    trace_internal::g_core.reset();
    trace_internal::g_epoch.fetch_add(1, std::memory_order_relaxed);
  }
  // The session thread's own pending spans (engine worker threads exited
  // — and flushed — when their per-region pools joined).
  LocalBuffer().Flush();
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->finalized = true;
    std::stable_sort(core_->events.begin(), core_->events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.thread_index != b.thread_index) {
                         return a.thread_index < b.thread_index;
                       }
                       return a.seq < b.seq;
                     });
    for (TraceEvent& event : core_->events) {
      log_->events_.push_back(std::move(event));
    }
    core_->events.clear();
  }
  trace_internal::AssignDeterministicIds(&log_->events_);
}

ThreadSpanCapture::ThreadSpanCapture() {
  if (trace_internal::g_capture != nullptr) return;  // outermost wins
  trace_internal::g_capture = this;
  owned_ = true;
  start_ns_ = NowNs();
}

ThreadSpanCapture::~ThreadSpanCapture() {
  if (owned_) trace_internal::g_capture = nullptr;
}

std::string ThreadSpanCapture::Render() const {
  // spans_ is in finish order (children before parents); start order +
  // depth reproduces the tree top-down.
  std::vector<size_t> order(spans_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return spans_[a].start_ns < spans_[b].start_ns;
  });
  std::string out;
  char buf[48];
  for (size_t index : order) {
    const CapturedSpan& span = spans_[index];
    out.append(2 * span.depth, ' ');
    out += span.name;
    if (!span.args.empty()) {
      out += " (";
      bool first = true;
      for (const auto& [key, value] : span.args) {
        if (!first) out += ' ';
        first = false;
        out += key;
        out += '=';
        out += value;
      }
      out += ')';
    }
    std::snprintf(buf, sizeof(buf), " %.3fms",
                  static_cast<double>(span.dur_ns) / 1e6);
    out += buf;
    out += '\n';
  }
  return out;
}

TraceSpan::TraceSpan(const char* name) {
  if (trace_internal::g_enabled.load(std::memory_order_relaxed)) {
    trace_internal::ThreadTraceBuffer& buffer = LocalBuffer();
    if (buffer.epoch !=
        trace_internal::g_epoch.load(std::memory_order_acquire)) {
      buffer.Rebind();
    }
    if (buffer.core != nullptr) {
      buffer_ = &buffer;
      epoch_ = buffer.epoch;
      seq_ = buffer.next_seq++;
      depth_ = buffer.depth++;
    }
  }
  if (ThreadSpanCapture* capture = trace_internal::g_capture) {
    capture_ = capture;
    capture_depth_ = capture->depth_++;
  }
  if (buffer_ == nullptr && capture_ == nullptr) return;
  name_ = name;
  start_raw_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr && capture_ == nullptr) return;
  const uint64_t end_raw_ns = NowNs();
  if (capture_ != nullptr) {
    CapturedSpan span;
    span.name = name_;
    span.args = args_;  // copied: the session event below may need them too
    span.start_ns = start_raw_ns_ - capture_->start_ns_;
    span.dur_ns = end_raw_ns - start_raw_ns_;
    span.depth = capture_depth_;
    capture_->spans_.push_back(std::move(span));
    if (capture_->depth_ > 0) --capture_->depth_;
  }
  if (buffer_ == nullptr) return;
  // The session ended (and a new one may have started) while this span
  // was open: its core is gone, so the event has nowhere coherent to go.
  if (buffer_->epoch != epoch_) return;
  TraceEvent event;
  event.name = name_;
  event.args = std::move(args_);
  event.start_ns = start_raw_ns_ - buffer_->core->t0_ns;
  event.dur_ns = end_raw_ns - start_raw_ns_;
  event.thread_index = buffer_->thread_index;
  event.depth = depth_;
  event.seq = seq_;
  buffer_->batch.push_back(std::move(event));
  if (buffer_->depth > 0) --buffer_->depth;
  if (buffer_->batch.size() >= trace_internal::kFlushBatch) buffer_->Flush();
}

TraceSpan& TraceSpan::Arg(const char* key, const char* value) {
  if (recording()) args_.emplace_back(key, value);
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const std::string& value) {
  if (recording()) args_.emplace_back(key, value);
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, uint64_t value) {
  if (recording()) args_.emplace_back(key, std::to_string(value));
  return *this;
}

std::vector<std::string> TraceLog::SpanSignatures() const {
  std::vector<std::string> signatures;
  signatures.reserve(events_.size());
  for (const TraceEvent& event : events_) signatures.push_back(event.Signature());
  std::sort(signatures.begin(), signatures.end());
  return signatures;
}

uint64_t TraceLog::StructureDigest() const {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const std::string& signature : SpanSignatures()) {
    for (char c : signature) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0xffu;  // separator so concatenation is unambiguous
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string TraceLog::ChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":1,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,",
                  event.thread_index, static_cast<double>(event.start_ns) / 1000.0,
                  static_cast<double>(event.dur_ns) / 1000.0);
    out += buf;
    out += "\"name\":\"";
    trace_internal::AppendJsonEscaped(&out, event.name);
    out += "\",\"args\":";
    // span_id rides inside args so the deterministic id survives the
    // Chrome viewer's own event model.
    out += "{\"span_id\":\"";
    out += std::to_string(event.id);
    out += '"';
    for (const auto& [key, value] : event.args) {
      out += ",\"";
      trace_internal::AppendJsonEscaped(&out, key);
      out += "\":\"";
      trace_internal::AppendJsonEscaped(&out, value);
      out += '"';
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

Status TraceLog::WriteChromeTrace(const std::string& path) const {
  return trace_internal::WriteStringToFile(path, ChromeTraceJson());
}

std::string TraceLog::JsonlString() const {
  std::string out;
  char buf[128];
  for (const TraceEvent& event : events_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%" PRIu64 ",\"tid\":%u,\"seq\":%" PRIu64
                  ",\"depth\":%u,\"start_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64
                  ",\"name\":\"",
                  event.id, event.thread_index, event.seq, event.depth,
                  event.start_ns, event.dur_ns);
    out += buf;
    trace_internal::AppendJsonEscaped(&out, event.name);
    out += "\",\"args\":";
    trace_internal::AppendArgsJson(&out, event);
    out += "}\n";
  }
  return out;
}

Status TraceLog::WriteJsonl(const std::string& path) const {
  return trace_internal::WriteStringToFile(path, JsonlString());
}

}  // namespace oocq
