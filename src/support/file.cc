#include "support/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace oocq {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  if (errno == ENOENT) return Status::NotFound(what + " '" + path + "': no such file");
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char chunk[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof(chunk))) > 0) {
    out.append(chunk, static_cast<size_t>(got));
  }
  const bool failed = got < 0;
  ::close(fd);
  if (failed) return Errno("read", path);
  return out;
}

Status FsyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::Internal(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status FsyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", path);
  Status synced = FsyncFd(fd);
  ::close(fd);
  return synced;
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteFileDurable(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failed = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return failed;
    }
    written += static_cast<size_t>(n);
  }
  Status synced = FsyncFd(fd);
  ::close(fd);
  if (!synced.ok()) {
    ::unlink(tmp.c_str());
    return synced;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status failed = Errno("rename", path);
    ::unlink(tmp.c_str());
    return failed;
  }
  return FsyncDir(DirName(path));
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    size_t end = slash == std::string::npos ? path.size() : slash;
    prefix = path.substr(0, end);
    start = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
    if (slash == std::string::npos) break;
  }
  return Status::Ok();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace oocq
