#ifndef OOCQ_SUPPORT_LOG_H_
#define OOCQ_SUPPORT_LOG_H_

/// Leveled, rate-limited structured logging for the server and persist
/// layers (docs/observability.md#logging). Replaces the ad-hoc fprintfs
/// that used to live in examples/oocq_serve.cpp: every line carries a
/// component, optional key=value fields (session/request ids), and is
/// renderable either human-readable or as JSONL for ingestion.
///
///   OOCQ_LOG(Warn, "server").Msg("pool wedged")
///       .With("pending", pending).With("completed", completed);
///
/// Design:
///  * The disabled path is one relaxed atomic load + compare (the level
///    gate lives inside the OOCQ_LOG macro), so debug logging costs
///    nothing when the level is Info.
///  * Each call site (file:line) gets a per-second token budget
///    (LogConfig::rate_limit_per_s); a flooding site is suppressed and
///    the next emitted line from it carries `suppressed=N`, so bursts
///    are visible without drowning the sink. Suppression also bumps the
///    `log/suppressed` counter in the active MetricsRegistry.
///  * Emission serializes on one mutex, so lines never interleave. A
///    multi-line field value (a slow-request span tree) renders as an
///    indented block in human mode and as an escaped string in JSONL.
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace oocq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // config-only: silences everything
};

/// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level);

/// Parses the names above (case-insensitive). False on unknown input,
/// leaving *level untouched — the CLI surfaces that as a flag error.
bool ParseLogLevel(std::string_view text, LogLevel* level);

struct LogConfig {
  LogLevel level = LogLevel::kInfo;
  /// Emit one JSON object per line instead of the human format.
  bool json = false;
  /// Destination stream; nullptr means stderr. The logger never closes
  /// it — ownership stays with the caller (oocq_serve --log-file).
  std::FILE* sink = nullptr;
  /// Lines one call site may emit per second before suppression kicks
  /// in; 0 disables rate limiting entirely.
  uint32_t rate_limit_per_s = 200;
};

/// Installs the process-wide logging configuration. Safe to call at any
/// time; the level gate is updated atomically, the rest under the
/// emission mutex.
void ConfigureLogging(const LogConfig& config);

/// The currently configured threshold (one relaxed load).
LogLevel CurrentLogLevel();

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(CurrentLogLevel());
}

/// Lines dropped by the per-site rate limiter since process start.
uint64_t LogSuppressedTotal();

/// One structured log line, emitted when the temporary dies:
///
///   OOCQ_LOG(Info, "persist").Msg("snapshot written")
///       .With("records", n).With("bytes", bytes);
///
/// Construction is assumed pre-gated on LogEnabled() (the macro does
/// this); constructing one directly always emits.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* component, const char* file, int line);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Msg(std::string message);
  LogEvent& With(std::string_view key, std::string_view value);
  LogEvent& With(std::string_view key, const char* value);
  LogEvent& With(std::string_view key, uint64_t value);
  LogEvent& With(std::string_view key, int value);
  LogEvent& With(std::string_view key, double value);

 private:
  LogLevel level_;
  const char* component_;
  const char* file_;
  int line_;
  std::string message_;
  std::string fields_;       // pre-rendered " k=v" pairs (human form)
  std::string json_fields_;  // pre-rendered ,"k":"v" pairs (JSON form)
  std::string block_;        // multi-line values, human form only
};

/// The level gate is in the macro so a disabled-level call evaluates
/// none of its arguments (the dangling-else keeps it statement-safe).
#define OOCQ_LOG(severity, component)                            \
  if (!::oocq::LogEnabled(::oocq::LogLevel::k##severity))        \
    ;                                                            \
  else                                                           \
    ::oocq::LogEvent(::oocq::LogLevel::k##severity, (component), \
                     __FILE__, __LINE__)

}  // namespace oocq

#endif  // OOCQ_SUPPORT_LOG_H_
