#ifndef OOCQ_SUPPORT_FILE_H_
#define OOCQ_SUPPORT_FILE_H_

/// Small POSIX file helpers for the persistence layer: whole-file reads,
/// durable (temp + fsync + rename + directory fsync) writes, and the
/// fsync primitives the write-ahead log builds its group commit on.
/// Everything returns Status — the library never throws.
#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace oocq {

/// Reads the whole file into a string. kNotFound when it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically: a `path.tmp` sibling is
/// written and fsynced, renamed over `path`, and the parent directory is
/// fsynced so the rename itself is durable. Readers never observe a
/// partially written file.
Status WriteFileDurable(const std::string& path, const std::string& contents);

/// fsync(2) on an open descriptor.
Status FsyncFd(int fd);

/// Opens `path` (a directory) read-only and fsyncs it — makes a rename
/// or unlink inside it durable.
Status FsyncDir(const std::string& path);

/// mkdir -p for one level of nesting at a time; existing directories are
/// fine.
Status MakeDirs(const std::string& path);

/// Unlinks `path`; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// Names (not paths) of the directory's entries, sorted; "." and ".."
/// excluded. kNotFound when the directory does not exist.
StatusOr<std::vector<std::string>> ListDir(const std::string& path);

/// Size of `path` in bytes; kNotFound when it does not exist.
StatusOr<uint64_t> FileSize(const std::string& path);

/// The directory component of `path` ("." when there is none).
std::string DirName(const std::string& path);

}  // namespace oocq

#endif  // OOCQ_SUPPORT_FILE_H_
