#ifndef OOCQ_SUPPORT_STATUS_H_
#define OOCQ_SUPPORT_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace oocq {

/// Error categories used across the library. The library never throws;
/// every fallible operation returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  /// The caller supplied an argument that is malformed in isolation
  /// (e.g., an unknown class name, a variable without a quantifier).
  kInvalidArgument = 1,
  /// The inputs are individually valid but violate a precondition of the
  /// operation (e.g., running containment on a non-terminal query).
  kFailedPrecondition = 2,
  /// A lookup failed (e.g., no class with the given name).
  kNotFound = 3,
  /// A configurable resource limit was exceeded (e.g., the augmentation
  /// enumeration cap in the general containment test, or a ResourceBudget
  /// cap on expansion/scan work). Retryable: the same request may succeed
  /// under a larger budget or once concurrent load drains.
  kResourceExhausted = 4,
  /// An internal invariant was violated; indicates a library bug.
  kInternal = 5,
  /// The operation's deadline passed before it completed. Retryable: the
  /// same request with a fresh (or longer) deadline may succeed.
  kDeadlineExceeded = 6,
  /// The operation was refused or aborted for a transient reason — an
  /// admission queue at capacity, a server draining for shutdown, or an
  /// explicit cancellation. Retryable after backoff.
  kUnavailable = 7,
};

/// True for the transient codes a client should retry (with backoff):
/// kResourceExhausted, kDeadlineExceeded, and kUnavailable. This is the
/// single source of truth for the retryable taxonomy — servers use it to
/// classify outcomes, the containment cache uses it to decide which
/// errors to memoize, and clients use it to gate backoff-retry
/// (docs/robustness.md).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kUnavailable;
}

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal_status {
[[noreturn]] inline void DieBadAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr access on non-OK status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal_status

/// Holds either a value of type T or an error Status, modeled after
/// absl::StatusOr. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  /// Constructs from an error status (implicit, to allow `return status;`).
  /// The status must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) internal_status::DieBadAccess(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal_status::DieBadAccess(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal_status::DieBadAccess(status_);
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_STATUS_H_
