#ifndef OOCQ_SUPPORT_TRACE_H_
#define OOCQ_SUPPORT_TRACE_H_

/// Lock-cheap, thread-aware span tracing for the §3/§4 pipeline.
///
/// Usage:
///
///   TraceLog log;
///   {
///     TraceSession session(&log);          // installs the run-wide sink
///     OOCQ_TRACE_SPAN(span, "Contained");  // RAII span on this thread
///     span.Arg("spec", "Cor3.4").Arg("pool", pool_size);
///     ...
///   }                                      // session end finalizes the log
///   log.WriteChromeTrace("out.json");      // load in chrome://tracing
///
/// Design:
///  * One process-wide session at a time (first wins; nested sessions are
///    inert). A relaxed atomic gates every span start, so the disabled
///    path is a single load + branch; `-DOOCQ_DISABLE_TRACING` compiles
///    spans out entirely.
///  * Each recording thread owns a thread-local buffer bound to the
///    session's shared core (epoch-checked, so stale bindings from a
///    previous session rebind lazily). Spans append to the local buffer;
///    batches flush into the core under one mutex, thread exit and
///    session end flush the remainder. A thread that neither exits nor
///    records again after session end keeps its (empty-by-then) binding
///    until the next session; late flushes after finalize are dropped.
///  * Span *structure* — the multiset of `name(k=v,…)` signatures — is
///    byte-deterministic across thread counts for the positive pipeline
///    (the same contract as docs/parallelism.md); timing, thread indices
///    and nesting depth are scheduling-dependent and excluded from it.
///    Span ids are assigned at finalize in signature-sorted order, so
///    they are deterministic wherever the structure is.
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/status.h"

namespace oocq {

namespace trace_internal {
struct TraceLogCore;
struct ThreadTraceBuffer;
}  // namespace trace_internal

/// One finished span. `start_ns` is relative to session start;
/// `thread_index` is the order the thread first recorded in this session
/// (scheduling-dependent); `seq` is the span's start order within its
/// thread; `depth` is the nesting level within its thread at start.
struct TraceEvent {
  uint64_t id = 0;  // deterministic: rank in signature-sorted order
  std::string name;
  std::vector<std::pair<std::string, std::string>> args;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t thread_index = 0;
  uint32_t depth = 0;
  uint64_t seq = 0;

  /// The structural identity of the span: `name(k1=v1,k2=v2)`. Excludes
  /// timing, thread and nesting information by construction.
  std::string Signature() const;
};

/// A passive container of finished spans, filled when the TraceSession
/// bound to it ends. Reusable across sessions: later sessions append and
/// ids are reassigned over the whole log.
class TraceLog {
 public:
  TraceLog() = default;
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;
  // Movable so logs can be returned from helpers — but never move a log
  // while the TraceSession writing into it is still alive.
  TraceLog(TraceLog&&) = default;
  TraceLog& operator=(TraceLog&&) = default;

  /// Finished spans, ordered by (thread_index, seq). Valid only after the
  /// session writing into this log has been destroyed.
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Sorted multiset of span signatures — the deterministic "structure"
  /// of the run. Equal across thread counts for the positive pipeline.
  std::vector<std::string> SpanSignatures() const;
  /// FNV-1a hash of SpanSignatures(), for cheap equality checks.
  uint64_t StructureDigest() const;

  /// Chrome tracing / Perfetto JSON ("X" complete events, µs timestamps).
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// One JSON object per span per line, in (thread_index, seq) order.
  std::string JsonlString() const;
  Status WriteJsonl(const std::string& path) const;

 private:
  friend class TraceSession;
  std::vector<TraceEvent> events_;
};

/// RAII installer of the process-wide tracing sink. Passing nullptr, or
/// constructing while another session is active, yields an inert session
/// (active() == false) — the engine threads options.observability.trace
/// straight through, so a null log simply disables tracing for that run.
class TraceSession {
 public:
  explicit TraceSession(TraceLog* log);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return log_ != nullptr; }

 private:
  TraceLog* log_ = nullptr;
  std::shared_ptr<trace_internal::TraceLogCore> core_;
};

/// True when a session is installed — the fast gate every span checks.
bool TracingActive();

/// One span collected by a ThreadSpanCapture, in span-finish order.
struct CapturedSpan {
  std::string name;
  std::vector<std::pair<std::string, std::string>> args;
  uint64_t start_ns = 0;  // relative to capture start
  uint64_t dur_ns = 0;
  uint32_t depth = 0;  // nesting level inside the capture scope
};

/// RAII collector of every span finished on *this thread* while it is
/// alive, independent of any TraceSession — the slow-request path
/// (docs/observability.md#logging) uses one per suspect request so the
/// offending span tree can be logged without tracing the whole server.
/// Nested captures are inert (outermost wins), spans started on other
/// threads (engine fan-out workers) are not seen, and under
/// -DOOCQ_DISABLE_TRACING the capture stays empty. The extra cost on the
/// span fast path when no capture is installed is one thread-local load.
class ThreadSpanCapture {
 public:
  ThreadSpanCapture();
  ~ThreadSpanCapture();

  ThreadSpanCapture(const ThreadSpanCapture&) = delete;
  ThreadSpanCapture& operator=(const ThreadSpanCapture&) = delete;

  bool active() const { return owned_; }
  const std::vector<CapturedSpan>& spans() const { return spans_; }

  /// Indented tree of the captured spans in start order:
  ///   Request (kind=contained) 12.345ms
  ///     WalAppend (records=1) 0.831ms
  std::string Render() const;

 private:
  friend class TraceSpan;
  bool owned_ = false;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
  std::vector<CapturedSpan> spans_;
};

/// RAII span. Constructing while no session is active is a no-op (one
/// relaxed atomic load). Arg() calls after construction attach key/value
/// annotations; values become part of the span's structural signature,
/// so only annotate with scheduling-independent data on deterministic
/// paths (counts, sizes, dispatch decisions — never times).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& Arg(const char* key, const char* value);
  TraceSpan& Arg(const char* key, const std::string& value);
  TraceSpan& Arg(const char* key, uint64_t value);

  bool recording() const { return buffer_ != nullptr || capture_ != nullptr; }

 private:
  trace_internal::ThreadTraceBuffer* buffer_ = nullptr;  // null when inert
  ThreadSpanCapture* capture_ = nullptr;  // this thread's capture, if any
  const char* name_ = nullptr;
  uint64_t epoch_ = 0;  // drops the span if the session changed under it
  uint64_t start_raw_ns_ = 0;
  uint64_t seq_ = 0;
  uint32_t depth_ = 0;
  uint32_t capture_depth_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Compile-time stand-in when tracing is disabled: same surface, no code.
class NoopTraceSpan {
 public:
  explicit NoopTraceSpan(const char*) {}
  template <typename T>
  NoopTraceSpan& Arg(const char*, const T&) {
    return *this;
  }
  NoopTraceSpan& Arg(const char*, const char*) { return *this; }
  bool recording() const { return false; }
};

#if defined(OOCQ_DISABLE_TRACING)
#define OOCQ_TRACE_SPAN(span_var, span_name) ::oocq::NoopTraceSpan span_var(span_name)
#else
#define OOCQ_TRACE_SPAN(span_var, span_name) ::oocq::TraceSpan span_var(span_name)
#endif

}  // namespace oocq

#endif  // OOCQ_SUPPORT_TRACE_H_
