#include "support/status.h"

namespace oocq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace oocq
