#ifndef OOCQ_SUPPORT_METRICS_H_
#define OOCQ_SUPPORT_METRICS_H_

/// Named counters and fixed-bucket histograms for the engine, aggregated
/// across independently locked shards like the containment cache.
///
/// Usage:
///
///   MetricsRegistry registry;
///   {
///     MetricsScope scope(&registry);         // installs the run-wide sink
///     MetricAdd("containment/calls", 1);     // from anywhere in the engine
///     MetricRecord("pool/queue_depth", d);   // histogram sample
///   }
///   MetricsRegistry::Snapshot snap = registry.Snap();
///
/// The shard mutex is taken only to find-or-create a metric by name;
/// increments land on per-metric atomics, so hot counters resolved once
/// via MetricCounterPtr() are lock-free afterwards. When no scope is
/// installed, MetricAdd/MetricRecord are a single relaxed atomic load.
///
/// Determinism: work counters inherit the pipeline's contract
/// (docs/parallelism.md) — byte-identical across thread counts on the
/// positive pipeline. Timing metrics (phase/*.ns, pool/*_ns) and queue
/// depths are scheduling-dependent by nature and excluded from any
/// determinism comparison.
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace oocq {

/// A single named counter. Stable address for its registry's lifetime.
class MetricCounter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A power-of-two-bucket histogram: bucket 0 holds value 0, bucket i
/// (1 <= i <= 64) holds values with bit_width i, i.e. [2^(i-1), 2^i).
/// Tracks count/sum/min/max alongside the buckets; all updates are
/// relaxed atomics, so concurrent Record() calls never lock.
class MetricHistogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  MetricHistogram();
  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max over recorded values; min() is UINT64_MAX when count() == 0.
  uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  /// The bucket index `value` falls into (0 for 0, else bit_width).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, …).
  static uint64_t BucketLowerBound(size_t i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets];
};

/// Shard-aggregated registry of counters and histograms, addressed by
/// name. Thread-safe; metrics are created on first use.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(uint32_t num_shards = 8);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned pointer stays valid for the registry's
  /// lifetime, so hot paths resolve once and increment lock-free.
  MetricCounter* Counter(std::string_view name);
  MetricHistogram* Histogram(std::string_view name);

  void Add(std::string_view name, uint64_t delta) { Counter(name)->Add(delta); }
  void Record(std::string_view name, uint64_t value) { Histogram(name)->Record(value); }

  /// Current value of a counter; 0 when it was never touched.
  uint64_t CounterValue(std::string_view name) const;

  struct CounterSnapshot {
    std::string name;
    uint64_t value = 0;
  };
  struct HistogramSnapshot {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // 0 when count == 0
    uint64_t max = 0;
    std::vector<uint64_t> buckets;  // kNumBuckets entries
  };
  struct Snapshot {
    std::vector<CounterSnapshot> counters;      // name-sorted
    std::vector<HistogramSnapshot> histograms;  // name-sorted
  };

  /// Name-sorted copy of everything, aggregated across shards —
  /// deterministic output order regardless of creation interleaving.
  Snapshot Snap() const;

  /// The snapshot as a JSON object ({"counters":{...},"histograms":{...}}).
  std::string JsonString() const;

 private:
  /// Heterogeneous lookup so the hot Add/Record path resolves a
  /// string_view name without materializing a std::string per call.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view name) const {
      return std::hash<std::string_view>{}(name);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<MetricCounter>, NameHash,
                       std::equal_to<>>
        counters;
    std::unordered_map<std::string, std::unique_ptr<MetricHistogram>,
                       NameHash, std::equal_to<>>
        histograms;
  };

  Shard& ShardFor(std::string_view name);
  const Shard& ShardFor(std::string_view name) const;

  std::vector<Shard> shards_;
};

/// Estimated quantile (0 < q < 1) of a power-of-two-bucket histogram:
/// walks the cumulative counts to the winning bucket, then interpolates
/// linearly inside it, clamped to the observed [min, max]. Exact for the
/// bucket boundaries, within one bucket's width otherwise — plenty for
/// p50/p90/p99 on latency distributions. Returns 0 when count == 0.
double HistogramQuantile(const MetricsRegistry::HistogramSnapshot& histogram,
                         double q);

/// Prometheus text exposition of a snapshot (docs/observability.md#stats).
/// Metric names are sanitized ('/', '.', '-' → '_') and prefixed; each
/// counter becomes one `# TYPE ... counter` sample, each histogram a
/// summary with quantile="0.5|0.9|0.99" samples plus _sum/_count/_min/_max.
std::string PrometheusString(const MetricsRegistry::Snapshot& snap,
                             std::string_view prefix = "oocq_");

/// RAII installer of the process-wide metrics sink (first wins; nested or
/// null scopes are inert, mirroring TraceSession). Instrumentation sites
/// call MetricAdd/MetricRecord, which route to the installed registry.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry* registry);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  bool active() const { return owned_; }

 private:
  bool owned_ = false;
};

/// The installed registry, or nullptr — one relaxed atomic load.
MetricsRegistry* ActiveMetrics();

/// Monotonic count of MetricsScope installs + uninstalls; odd while a
/// scope is installed, and distinct across every installed period. Cached
/// per-site handles key on it to detect scope changes.
uint64_t MetricsScopeEpoch();

/// Nanosecond timestamp for telemetry intervals. On x86-64 this is a
/// calibrated TSC read (~8ns vs ~50ns for clock_gettime) — the first
/// call spins ~200us once per process to measure the tick rate, so the
/// conversion error stays under ~0.05%. Elsewhere it falls back to
/// steady_clock. Only telemetry uses it: the small calibration error is
/// invisible in a histogram but would be wrong for deadlines.
uint64_t TelemetryNowNs();

/// A call site's cached counter handle: resolves the name against the
/// installed registry once per scope epoch, then returns the same pointer
/// with two relaxed-ish atomic loads — no shard mutex, no hashing. Safe
/// under the scope quiescence contract (scopes install/uninstall only
/// while no instrumented code is running; the owner drains first), which
/// guarantees the epoch cannot change mid-call. Declared `static` at the
/// site, typically via OOCQ_METRIC_ADD.
class MetricCounterSite {
 public:
  MetricCounter* Get(MetricsRegistry* registry, std::string_view name) {
    const uint64_t epoch = MetricsScopeEpoch();
    if (epoch_.load(std::memory_order_acquire) == epoch) {
      return counter_.load(std::memory_order_relaxed);
    }
    MetricCounter* counter = registry->Counter(name);
    // Publish value before epoch: a reader that sees the new epoch
    // (acquire) must also see the new counter.
    counter_.store(counter, std::memory_order_relaxed);
    epoch_.store(epoch, std::memory_order_release);
    return counter;
  }

 private:
  std::atomic<uint64_t> epoch_{0};  // 0 = never resolved (epochs are odd)
  std::atomic<MetricCounter*> counter_{nullptr};
};

/// Histogram analog of MetricCounterSite.
class MetricHistogramSite {
 public:
  MetricHistogram* Get(MetricsRegistry* registry, std::string_view name) {
    const uint64_t epoch = MetricsScopeEpoch();
    if (epoch_.load(std::memory_order_acquire) == epoch) {
      return histogram_.load(std::memory_order_relaxed);
    }
    MetricHistogram* histogram = registry->Histogram(name);
    histogram_.store(histogram, std::memory_order_relaxed);
    epoch_.store(epoch, std::memory_order_release);
    return histogram;
  }

 private:
  std::atomic<uint64_t> epoch_{0};
  std::atomic<MetricHistogram*> histogram_{nullptr};
};

/// MetricAdd/MetricRecord with a per-site handle cache — for sites on
/// request hot paths, where the name lookup (shard mutex + hash) would
/// otherwise dominate the sample itself. `name` must be stable for the
/// program's lifetime (a literal).
#define OOCQ_METRIC_ADD(name, delta)                                     \
  do {                                                                   \
    if (::oocq::MetricsRegistry* oocq_metric_reg =                       \
            ::oocq::ActiveMetrics()) {                                   \
      static ::oocq::MetricCounterSite oocq_metric_site;                 \
      oocq_metric_site.Get(oocq_metric_reg, (name))->Add(delta);         \
    }                                                                    \
  } while (0)

#define OOCQ_METRIC_RECORD(name, value)                                  \
  do {                                                                   \
    if (::oocq::MetricsRegistry* oocq_metric_reg =                       \
            ::oocq::ActiveMetrics()) {                                   \
      static ::oocq::MetricHistogramSite oocq_metric_site;               \
      oocq_metric_site.Get(oocq_metric_reg, (name))->Record(value);      \
    }                                                                    \
  } while (0)

inline void MetricAdd(std::string_view name, uint64_t delta) {
  if (MetricsRegistry* metrics = ActiveMetrics()) metrics->Add(name, delta);
}

inline void MetricRecord(std::string_view name, uint64_t value) {
  if (MetricsRegistry* metrics = ActiveMetrics()) metrics->Record(name, value);
}

/// Resolves `name` against the installed registry once; nullptr when no
/// scope is active. For loops too hot to pay the name lookup per event.
inline MetricCounter* MetricCounterPtr(std::string_view name) {
  MetricsRegistry* metrics = ActiveMetrics();
  return metrics != nullptr ? metrics->Counter(name) : nullptr;
}

/// RAII wall-time accumulator: adds the scope's elapsed nanoseconds to
/// counter `<name>.ns` and bumps `<name>.calls` by one. Inert when no
/// registry is installed at construction.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(const char* name);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  MetricsRegistry* registry_ = nullptr;
  const char* name_;
  uint64_t start_ns_ = 0;
  uint64_t epoch_ = 0;  // scope epoch at entry, pairs registry_ in the cache
};

}  // namespace oocq

#endif  // OOCQ_SUPPORT_METRICS_H_
