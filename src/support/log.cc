#include "support/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "support/metrics.h"

namespace oocq {

namespace {

/// Per-site rate-limiter state: a one-second window of emitted lines
/// plus the count suppressed since this site last got a line through.
struct SiteState {
  uint64_t window_start_s = 0;
  uint32_t emitted_in_window = 0;
  uint64_t suppressed_pending = 0;
};

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<uint64_t> g_suppressed_total{0};

/// Everything below the level gate — sink, json flag, limiter map — is
/// guarded by one mutex, which also serializes emission so concurrent
/// lines never interleave.
std::mutex g_mu;
std::FILE* g_sink = nullptr;  // nullptr = stderr
bool g_json = false;
uint32_t g_rate_limit_per_s = 200;
std::unordered_map<std::string, SiteState>& Sites() {
  static auto* sites = new std::unordered_map<std::string, SiteState>();
  return *sites;
}

uint64_t NowSeconds() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// "2026-08-08T12:34:56.789Z" (UTC wall clock).
std::string WallTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"') return true;
  }
  return false;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") *level = LogLevel::kDebug;
  else if (lower == "info") *level = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") *level = LogLevel::kWarn;
  else if (lower == "error") *level = LogLevel::kError;
  else if (lower == "off" || lower == "none") *level = LogLevel::kOff;
  else return false;
  return true;
}

void ConfigureLogging(const LogConfig& config) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_level.store(static_cast<int>(config.level), std::memory_order_relaxed);
  g_sink = config.sink;
  g_json = config.json;
  g_rate_limit_per_s = config.rate_limit_per_s;
}

LogLevel CurrentLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

uint64_t LogSuppressedTotal() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

LogEvent::LogEvent(LogLevel level, const char* component, const char* file,
                   int line)
    : level_(level), component_(component), file_(file), line_(line) {}

LogEvent& LogEvent::Msg(std::string message) {
  message_ = std::move(message);
  return *this;
}

LogEvent& LogEvent::With(std::string_view key, std::string_view value) {
  json_fields_ += ",\"";
  AppendJsonEscaped(&json_fields_, key);
  json_fields_ += "\":\"";
  AppendJsonEscaped(&json_fields_, value);
  json_fields_ += '"';
  if (value.find('\n') != std::string_view::npos) {
    // A multi-line value (slow-request span tree) renders as an indented
    // block below the line so the human format stays line-oriented.
    block_ += "  ";
    block_ += key;
    block_ += ":\n";
    size_t start = 0;
    while (start < value.size()) {
      size_t nl = value.find('\n', start);
      size_t end = nl == std::string_view::npos ? value.size() : nl;
      block_ += "    ";
      block_.append(value.data() + start, end - start);
      block_ += '\n';
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
    return *this;
  }
  fields_ += ' ';
  fields_ += key;
  fields_ += '=';
  if (NeedsQuoting(value)) {
    fields_ += '"';
    fields_.append(value.data(), value.size());
    fields_ += '"';
  } else {
    fields_.append(value.data(), value.size());
  }
  return *this;
}

LogEvent& LogEvent::With(std::string_view key, const char* value) {
  return With(key, std::string_view(value));
}

LogEvent& LogEvent::With(std::string_view key, uint64_t value) {
  return With(key, std::string_view(std::to_string(value)));
}

LogEvent& LogEvent::With(std::string_view key, int value) {
  return With(key, std::string_view(std::to_string(value)));
}

LogEvent& LogEvent::With(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return With(key, std::string_view(buf));
}

LogEvent::~LogEvent() {
  const std::string timestamp = WallTimestamp();
  std::lock_guard<std::mutex> lock(g_mu);

  uint64_t suppressed_before = 0;
  if (g_rate_limit_per_s > 0) {
    std::string site_key = std::string(file_) + ":" + std::to_string(line_);
    SiteState& site = Sites()[std::move(site_key)];
    const uint64_t now_s = NowSeconds();
    if (site.window_start_s != now_s) {
      site.window_start_s = now_s;
      site.emitted_in_window = 0;
    }
    if (site.emitted_in_window >= g_rate_limit_per_s) {
      ++site.suppressed_pending;
      g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
      MetricAdd("log/suppressed", 1);
      return;
    }
    ++site.emitted_in_window;
    suppressed_before = site.suppressed_pending;
    site.suppressed_pending = 0;
  }

  std::FILE* sink = g_sink != nullptr ? g_sink : stderr;
  std::string line;
  if (g_json) {
    line = "{\"ts\":\"" + timestamp + "\",\"level\":\"";
    line += LogLevelName(level_);
    line += "\",\"component\":\"";
    AppendJsonEscaped(&line, component_);
    line += "\",\"msg\":\"";
    AppendJsonEscaped(&line, message_);
    line += '"';
    line += json_fields_;
    if (suppressed_before > 0) {
      line += ",\"suppressed\":\"" + std::to_string(suppressed_before) + "\"";
    }
    line += "}\n";
  } else {
    line = timestamp;
    line += ' ';
    line += LevelTag(level_);
    line += ' ';
    line += component_;
    line += ' ';
    line += message_;
    line += fields_;
    if (suppressed_before > 0) {
      line += " suppressed=" + std::to_string(suppressed_before);
    }
    line += '\n';
    line += block_;
  }
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace oocq
