#ifndef OOCQ_SERVER_EVENT_SERVER_H_
#define OOCQ_SERVER_EVENT_SERVER_H_

/// Event-driven transport: one epoll(7) readiness loop owning every
/// connection, scaling concurrent sessions with sockets instead of OS
/// threads (the thread-per-connection TcpServer caps out at thread
/// scale; see docs/server.md for when to pick which).
///
/// Architecture — one loop thread, `dispatch_threads` workers:
///
///   epoll loop ── owns all per-connection state machines
///     │   level-triggered, non-blocking sockets
///     │   incremental framing via ConnectionHandler (1 MiB line cap)
///     │   idle-session timeouts via a timer wheel
///     │   write buffering; EPOLLOUT-driven flushes
///     ▼
///   support/thread_pool ── runs ProtocolHandler::Handle (and thus
///     │   OocqService::Execute, which blocks on admission + engine)
///     ▼
///   completion queue + eventfd ── the worker posts the rendered reply
///         and wakes the loop, which appends it to the connection's
///         output buffer and flushes
///
/// Per-connection invariants:
///
///  * Requests are answered in arrival order; at most one request per
///    connection executes at a time (pipelined frames queue on the
///    connection, bounded by `max_pipeline_depth` — beyond it, requests
///    are shed with a retryable ERR UNAVAILABLE instead of queued).
///  * The output buffer is bounded: once a slow reader lets it exceed
///    `max_output_buffer_bytes`, further requests are shed with
///    UNAVAILABLE (cheap, constant-size replies); a reader so slow that
///    even sheds accumulate past 4x the bound is dropped.
///  * An idle connection (no request in flight, nothing buffered) that
///    stays silent for `idle_timeout_ms` is closed by the timer wheel.
///
/// Stop() mirrors TcpServer's graceful drain: the listener closes, read
/// sides are shut down, requests already received finish and their
/// replies are flushed, then the service drains.
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "server/transport.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace oocq::server {

struct EventServerOptions : TransportOptions {
  /// Workers executing parsed requests (each blocks in
  /// OocqService::Execute for its request's duration, so this bounds
  /// transport-side concurrency the way connection threads do for
  /// TcpServer). 0 = one per hardware thread.
  uint32_t dispatch_threads = 8;
  /// Close a connection with no traffic, no queued request and nothing
  /// to flush after this long. 0 = never (TcpServer parity).
  uint64_t idle_timeout_ms = 0;
  /// Pending unflushed reply bytes tolerated per connection before new
  /// requests on it are shed with UNAVAILABLE (slow-reader
  /// backpressure). Dropped outright at 4x this bound.
  uint64_t max_output_buffer_bytes = 4 << 20;
  /// Parsed-but-not-started requests tolerated per connection (clients
  /// may pipeline); beyond it, requests are shed with UNAVAILABLE.
  uint32_t max_pipeline_depth = 64;
  /// Concurrent connections accepted; beyond it, new sockets are closed
  /// immediately (counted as server/overflow_refused).
  uint32_t max_connections = 50000;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. The
  /// kernel otherwise autotunes loopback send buffers to megabytes,
  /// which hides slow readers from the `max_output_buffer_bytes` bound —
  /// set this when the bound should actually engage.
  uint32_t so_sndbuf_bytes = 0;
};

class EventServer : public Transport {
 public:
  EventServer(OocqService* service, EventServerOptions options = {});
  ~EventServer() override;  // runs Stop()

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  Status Start() override;
  void Stop() override;

  uint16_t port() const override { return port_; }
  bool running() const override {
    return running_.load(std::memory_order_acquire);
  }
  uint64_t connections_accepted() const override {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Loop;  // all loop-thread-only state (connections, timer wheel)
  friend struct Loop;

  /// A finished request on its way back from a pool worker to the loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::string text;   // rendered reply, ready to send
    bool close = false; // QUIT: close once flushed
    bool drop = false;  // injected write failure: drop without replying
  };

  void Run();
  /// Posts a completion from a pool worker and wakes the loop.
  void PostCompletion(Completion completion);
  void WakeLoop();

  OocqService* service_;
  EventServerOptions options_;

  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions posted, or Stop() requested
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> accepted_{0};
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Loop> loop_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

}  // namespace oocq::server

#endif  // OOCQ_SERVER_EVENT_SERVER_H_
