#ifndef OOCQ_SERVER_TCP_SERVER_H_
#define OOCQ_SERVER_TCP_SERVER_H_

/// Thread-per-connection TCP front end over ProtocolHandler. The server
/// owns only transport state; all engine work, admission control and
/// deadlines live in the OocqService it wraps.
///
/// Lifecycle:
///
///   OocqService service(service_options);
///   TcpServer server(&service, {.port = 0});   // 0 = ephemeral
///   OOCQ_RETURN_IF_ERROR(server.Start());      // accept loop running
///   uint16_t port = server.port();             // resolved port
///   ...
///   server.Stop();   // graceful: stop accepting, drain, join
///
/// Stop() (also run by the destructor) closes the listener, half-closes
/// every live connection's read side — so in-flight requests still get
/// their response written — joins the connection threads, then drains
/// the service. oocq_serve wires SIGINT to Stop() via a self-pipe.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "server/service.h"
#include "server/transport.h"
#include "support/status.h"

namespace oocq::server {

/// The shared knobs live in TransportOptions (server/transport.h); the
/// thread-per-connection transport adds none of its own.
struct TcpServerOptions : TransportOptions {};

class TcpServer : public Transport {
 public:
  TcpServer(OocqService* service, TcpServerOptions options = {});
  ~TcpServer() override;  // runs Stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails (kInternal) if
  /// the port is taken or sockets are unavailable.
  Status Start() override;

  /// Graceful shutdown; see the header comment. Idempotent, and safe to
  /// call from a signal-handling thread.
  void Stop() override;

  /// The bound port (resolved when options.port == 0). 0 before Start().
  uint16_t port() const override { return port_; }
  bool running() const override {
    return running_.load(std::memory_order_acquire);
  }
  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const override {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Serve(int fd);

  OocqService* service_;
  TcpServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> accepted_{0};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  /// Live connection fds keyed by id; Serve() removes its own entry, so
  /// Stop() only half-closes fds whose handler is still running.
  std::map<uint64_t, int> conns_;
  uint64_t next_conn_ = 1;
  std::vector<std::thread> conn_threads_;
};

}  // namespace oocq::server

#endif  // OOCQ_SERVER_TCP_SERVER_H_
