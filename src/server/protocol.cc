#include "server/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "persist/wal.h"
#include "replicate/wire.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace oocq::server {

namespace {

std::string JoinLines(const std::vector<std::string>& lines, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < lines.size(); ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

/// Appends `body` as response payload lines. A payload line that is
/// exactly "." would terminate the frame early, so it is dot-stuffed to
/// ".." (clients undo this; docs/server.md).
void AppendPayload(const std::string& body, std::string* out) {
  std::string line;
  size_t start = 0;
  while (start <= body.size()) {
    size_t nl = body.find('\n', start);
    if (nl == std::string::npos) {
      line = body.substr(start);
      start = body.size() + 1;
      if (line.empty()) break;  // no trailing partial line
    } else {
      line = body.substr(start, nl - start);
      start = nl + 1;
    }
    if (!line.empty() && line[0] == '.') out->append(1, '.');
    out->append(line);
    out->append(1, '\n');
  }
}

ProtocolReply OkReply(const std::string& fields, const std::string& body = "") {
  ProtocolReply reply;
  reply.text = fields.empty() ? "OK\n" : "OK " + fields + "\n";
  AppendPayload(body, &reply.text);
  reply.text += ".\n";
  return reply;
}

ProtocolReply ErrReply(const Status& status) {
  ProtocolReply reply;
  // Keep the status line single-line: newlines in engine messages would
  // break framing.
  std::string message = status.message();
  std::replace(message.begin(), message.end(), '\n', ' ');
  reply.text = "ERR ";
  reply.text += StatusCodeToString(status.code());
  reply.text += ' ';
  reply.text += message;
  reply.text += "\n.\n";
  return reply;
}

Status BadRequest(const std::string& what) {
  return Status::InvalidArgument(what);
}

uint64_t ParamUint(const CommandLine& command, const std::string& key) {
  const std::string* value = command.Param(key);
  if (value == nullptr) return 0;
  return std::strtoull(value->c_str(), nullptr, 10);
}

std::string ParamString(const CommandLine& command, const std::string& key) {
  const std::string* value = command.Param(key);
  return value == nullptr ? std::string() : *value;
}

void FillCommonRequestFields(const CommandLine& command, Request* request) {
  request->deadline_ms = ParamUint(command, "deadline_ms");
  if (const std::string* id = command.Param("id")) request->request_id = *id;
  // The wire-level `ID <token>` prefix wins over a legacy id= param.
  if (!command.request_id.empty()) request->request_id = command.request_id;
}

/// Echoes the request id on the reply status line: "OK id=<rid> ..." /
/// "ERR <CODE> id=<rid> <message>". The insertion points keep existing
/// parsers working — clients read the verdict fields by name and the ERR
/// code as the second token, both unmoved.
void TagReply(const std::string& rid, ProtocolReply* reply) {
  std::string& text = reply->text;
  if (text.rfind("OK", 0) == 0) {
    text.insert(2, " id=" + rid);
  } else if (text.rfind("ERR ", 0) == 0) {
    size_t code_end = text.find_first_of(" \n", 4);
    if (code_end == std::string::npos) code_end = text.size();
    text.insert(code_end, " id=" + rid);
  }
}

}  // namespace

const std::string* CommandLine::Param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

CommandLine ParseCommandLine(const std::string& line) {
  CommandLine command;
  size_t i = 0;
  auto skip_spaces = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  skip_spaces();
  // Token roles: the first token is the verb — unless it is the `ID`
  // prefix, in which case the next token is the request id and the verb
  // follows it (`ID r7 CONTAIN s1` ≡ `CONTAIN s1` tagged r7).
  enum class Expect { kVerb, kRequestId, kRest };
  Expect expect = Expect::kVerb;
  while (i < line.size()) {
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::string token = line.substr(start, i - start);
    skip_spaces();
    if (expect == Expect::kRequestId) {
      command.request_id = std::move(token);
      expect = Expect::kVerb;
      continue;
    }
    if (expect == Expect::kVerb) {
      for (char& c : token) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      if (token == "ID" && command.request_id.empty()) {
        expect = Expect::kRequestId;
        continue;
      }
      command.verb = std::move(token);
      expect = Expect::kRest;
      continue;
    }
    size_t eq = token.find('=');
    if (eq != std::string::npos && eq > 0) {
      command.params.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    } else {
      command.args.push_back(std::move(token));
    }
  }
  return command;
}

bool VerbHasPayload(const std::string& verb) {
  // SESSION NEW's payload-ness depends on its subcommand, but the NEW/DROP
  // split is resolved by the first argument, which the framing layer has
  // by the time it needs to decide — see ConnectionHandler::Next.
  return verb == "MINIMIZE" || verb == "CONTAIN" || verb == "EQUIV" ||
         verb == "UCONTAIN" || verb == "SAT" || verb == "EVAL" ||
         verb == "EXPLAIN" || verb == "BATCH" || verb == "DEFINE" ||
         verb == "STATE";
}

bool ConnectionHandler::NextLine(std::string* line, bool* violation) {
  size_t nl = buffer_.find('\n', scan_from_);
  if (nl == std::string::npos) {
    if (buffer_.size() > kMaxLineBytes) {
      *violation = true;
      return false;
    }
    scan_from_ = buffer_.size();
    return false;
  }
  *line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  scan_from_ = 0;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

ConnectionHandler::FrameResult ConnectionHandler::Next(
    CommandLine* command, std::vector<std::string>* payload) {
  if (violated_) return FrameResult::kViolation;
  std::string line;
  bool violation = false;
  while (true) {
    if (!in_payload_) {
      do {
        if (!NextLine(&line, &violation)) {
          violated_ = violation;
          return violation ? FrameResult::kViolation : FrameResult::kNeedMore;
        }
      } while (line.empty());  // blank lines between requests are noise
      pending_command_ = ParseCommandLine(line);
      pending_payload_.clear();
      bool has_payload =
          VerbHasPayload(pending_command_.verb) ||
          (pending_command_.verb == "SESSION" &&
           !pending_command_.args.empty() &&
           (pending_command_.args[0] == "NEW" ||
            pending_command_.args[0] == "new"));
      if (!has_payload) {
        *command = std::move(pending_command_);
        payload->clear();
        return FrameResult::kRequest;
      }
      in_payload_ = true;
    }
    while (NextLine(&line, &violation)) {
      if (line == ".") {
        in_payload_ = false;
        *command = std::move(pending_command_);
        *payload = std::move(pending_payload_);
        pending_payload_.clear();
        return FrameResult::kRequest;
      }
      // Undo dot-stuffing so payload lines may begin with '.'.
      if (!line.empty() && line[0] == '.') line.erase(0, 1);
      pending_payload_.push_back(std::move(line));
    }
    violated_ = violation;
    return violation ? FrameResult::kViolation : FrameResult::kNeedMore;
  }
}

ProtocolReply ProtocolHandler::Handle(const CommandLine& command,
                                      const std::vector<std::string>& payload) {
  // The effective request id: the wire `ID` prefix, else a legacy id=
  // param. Either is annotated onto this span (and, through
  // Request::request_id, onto the service/engine spans); only the `ID`
  // prefix is echoed on the reply status line — clients that predate the
  // prefix keep getting byte-identical replies for id= params.
  std::string rid = command.request_id;
  if (rid.empty()) {
    if (const std::string* id = command.Param("id")) rid = *id;
  }
  OOCQ_TRACE_SPAN(span, "HandleRequest");
  span.Arg("verb", command.verb.empty() ? "(none)" : command.verb);
  if (!rid.empty()) span.Arg("id", rid);
  ProtocolReply reply = HandleInner(command, payload);
  if (span.recording()) {
    span.Arg("bytes", static_cast<uint64_t>(reply.text.size()));
  }
  if (!command.request_id.empty()) TagReply(command.request_id, &reply);
  return reply;
}

ProtocolReply ProtocolHandler::HandleInner(
    const CommandLine& command, const std::vector<std::string>& payload) {
  const std::string& verb = command.verb;

  if (verb.empty() && !command.request_id.empty()) {
    return ErrReply(BadRequest("ID prefix needs a command after the token"));
  }
  if (verb == "PING") return OkReply("");
  if (verb == "HELLO") {
    // Handshake + capability discovery (docs/server.md): the client may
    // announce the protocol version it speaks; a version this server
    // does not know is refused up front instead of failing verb by
    // verb. HELLO also subsumes the old PING-as-liveness convention —
    // the reply carries the same liveness signal plus the server's
    // capabilities — but bare PING keeps working for old clients.
    if (!command.args.empty()) {
      char* end = nullptr;
      long requested = std::strtol(command.args[0].c_str(), &end, 10);
      if (end == command.args[0].c_str() || *end != '\0' || requested < 1) {
        return ErrReply(
            BadRequest("HELLO takes a numeric protocol version"));
      }
      if (requested > kProtocolVersion) {
        return ErrReply(Status::FailedPrecondition(
            "protocol version " + command.args[0] +
            " not supported; this server speaks " +
            std::to_string(kProtocolVersion)));
      }
    }
    // The caps vocabulary is enumerated in docs/server.md#capabilities;
    // `replication` advertises the REPL verb family (docs/replication.md);
    // `fencing` advertises term-stamped replies and the REPL DEMOTE verb.
    return OkReply(
        "protocol=" + std::to_string(kProtocolVersion) +
        " server=oocq max_line_bytes=" + std::to_string(kMaxLineBytes) +
        " caps=sessions,define,state,batch,deadlines,metrics,health,"
        "explain,ucontain,stats,request_ids,replication,fencing" +
        " draining=" + std::string(service_->draining() ? "1" : "0") +
        " readonly=" + std::string(service_->read_only() ? "1" : "0") +
        " term=" + std::to_string(service_->term()));
  }
  if (verb == "QUIT") {
    ProtocolReply reply = OkReply("");
    reply.close = true;
    return reply;
  }
  if (verb == "METRICS") {
    return OkReply("", service_->metrics().JsonString() + "\n");
  }
  if (verb == "STATS") {
    // Machine-readable exposition (docs/observability.md#stats):
    // Prometheus-style text with counters and p50/p90/p99 summaries,
    // superseding the flat METRICS JSON (kept above for old tooling).
    return OkReply("", service_->StatsText());
  }
  if (verb == "HEALTH") {
    // Liveness + progress snapshot for operators and watchdogs: a server
    // whose pending stays > 0 while completed stops advancing has a
    // wedged worker pool (docs/robustness.md). Renders the same
    // ServiceHealth snapshot STATS exposes, in the PR 5 wire format.
    const ServiceHealth health = service_->CollectHealth();
    // Role/term ride on the fields line for every server (the router's
    // prober keys on them); new fields append after sessions= — parsers
    // since PR 5 anchor on the "OK pending=" prefix.
    std::string fields =
        "pending=" + std::to_string(health.pending) +
        " completed=" + std::to_string(health.completed) +
        " draining=" + std::string(health.draining ? "1" : "0") +
        " sessions=" + std::to_string(health.sessions) +
        " role=" + std::string(service_->read_only() ? "follower" : "primary") +
        " readonly=" + std::string(service_->read_only() ? "1" : "0") +
        " fenced=" + std::string(service_->fenced() ? "1" : "0") +
        " term=" + std::to_string(service_->term());
    std::string body;
    if (health.has_budget) {
      body = "budget: resident_bytes=" +
             std::to_string(health.resident_bytes) + "/" +
             std::to_string(health.max_resident_bytes) +
             " work_units=" + std::to_string(health.work_units) + "/" +
             std::to_string(health.max_work_units) +
             " disjuncts=" + std::to_string(health.disjuncts) + "/" +
             std::to_string(health.max_disjuncts) +
             " exhausted=" + std::to_string(health.exhausted) + "\n";
    }
    if (health.repl.present) {
      // The replication satellite of the same snapshot: role, stream
      // liveness and lag (docs/replication.md#telemetry). Only present
      // on nodes actually replicating, so pre-replication parsers see
      // byte-identical output.
      body += "repl: role=" + health.repl.role +
              " connected=" + std::string(health.repl.connected ? "1" : "0") +
              " lag_records=" + std::to_string(health.repl.lag_records) +
              " applied_records=" +
              std::to_string(health.repl.applied_records) +
              " shipped_bytes=" + std::to_string(health.repl.shipped_bytes) +
              " epoch=" + std::to_string(health.repl.epoch) +
              " term=" + std::to_string(health.repl.term) + "\n";
    }
    return OkReply(fields, body);
  }
  if (verb == "REPL") return HandleRepl(command);
  if (verb == "SESSION") {
    if (command.args.empty()) {
      return ErrReply(BadRequest("SESSION needs NEW or DROP"));
    }
    std::string sub = command.args[0];
    for (char& c : sub) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (sub == "NEW") {
      StatusOr<std::string> id =
          service_->CreateSession(JoinLines(payload, 0, payload.size()));
      if (!id.ok()) return ErrReply(id.status());
      return OkReply("session=" + *id);
    }
    if (sub == "DROP" && command.args.size() == 2) {
      Status dropped = service_->DropSession(command.args[1]);
      if (!dropped.ok()) return ErrReply(dropped);
      return OkReply("");
    }
    return ErrReply(BadRequest("usage: SESSION NEW | SESSION DROP <id>"));
  }
  if (verb == "DEFINE") {
    if (command.args.size() != 2 || payload.empty()) {
      return ErrReply(
          BadRequest("usage: DEFINE <session> <name> + query payload"));
    }
    Status defined = service_->DefineQuery(
        command.args[0], command.args[1], JoinLines(payload, 0, payload.size()));
    if (!defined.ok()) return ErrReply(defined);
    return OkReply("");
  }
  if (verb == "STATE") {
    if (command.args.size() != 1) {
      return ErrReply(BadRequest("usage: STATE <session> + state payload"));
    }
    Status loaded = service_->LoadState(command.args[0],
                                        JoinLines(payload, 0, payload.size()));
    if (!loaded.ok()) return ErrReply(loaded);
    return OkReply("");
  }

  // The decision verbs map 1:1 onto the typed service requests.
  Request request;
  if (command.args.empty()) {
    return ErrReply(BadRequest(verb + " needs a session id"));
  }
  request.session_id = command.args[0];
  FillCommonRequestFields(command, &request);

  auto run_unary = [&](RequestKind kind) -> ProtocolReply {
    if (payload.empty()) {
      return ErrReply(BadRequest(verb + " needs a query payload line"));
    }
    request.kind = kind;
    request.query = JoinLines(payload, 0, payload.size());
    Response response = service_->Execute(request);
    if (!response.status.ok()) return ErrReply(response.status);
    switch (kind) {
      case RequestKind::kMinimize:
        return OkReply("exact=" + std::string(response.verdict ? "1" : "0"),
                       response.body);
      case RequestKind::kSatisfiable:
        return OkReply(
            "satisfiable=" + std::string(response.verdict ? "1" : "0"),
            response.body);
      case RequestKind::kEvaluate:
        return OkReply("nonempty=" + std::string(response.verdict ? "1" : "0"),
                       response.body);
      default:
        return ErrReply(Status::Internal("bad unary kind"));
    }
  };
  auto run_binary = [&](RequestKind kind,
                        const char* field) -> ProtocolReply {
    if (payload.size() != 2) {
      return ErrReply(
          BadRequest(verb + " needs exactly two payload lines (Q1, Q2)"));
    }
    request.kind = kind;
    request.query = payload[0];
    request.query2 = payload[1];
    Response response = service_->Execute(request);
    if (!response.status.ok()) return ErrReply(response.status);
    return OkReply(
        std::string(field) + "=" + (response.verdict ? "1" : "0"),
        response.body);
  };

  if (verb == "MINIMIZE") return run_unary(RequestKind::kMinimize);
  if (verb == "SAT") return run_unary(RequestKind::kSatisfiable);
  if (verb == "EVAL") return run_unary(RequestKind::kEvaluate);
  if (verb == "CONTAIN") return run_binary(RequestKind::kContained, "contained");
  if (verb == "EQUIV") return run_binary(RequestKind::kEquivalent, "equivalent");
  if (verb == "EXPLAIN") return run_binary(RequestKind::kExplain, "contained");
  if (verb == "UCONTAIN") {
    // Payload: disjuncts of M, a "--" separator line, disjuncts of N.
    request.kind = RequestKind::kUnionContained;
    bool in_n = false;
    for (const std::string& line : payload) {
      if (line == "--") {
        in_n = true;
        continue;
      }
      (in_n ? request.union_n : request.union_m).push_back(line);
    }
    if (!in_n) {
      return ErrReply(BadRequest("UCONTAIN payload needs a '--' separator"));
    }
    Response response = service_->Execute(request);
    if (!response.status.ok()) return ErrReply(response.status);
    return OkReply("contained=" + std::string(response.verdict ? "1" : "0"));
  }
  if (verb == "BATCH") {
    // Each payload line is `KIND <TAB> q1 [<TAB> q2]` with KIND one of
    // CONTAIN | EQUIV | SAT. The batch fans out on the service pool.
    std::vector<Request> batch;
    for (const std::string& line : payload) {
      std::vector<std::string> fields;
      size_t start = 0;
      while (true) {
        size_t tab = line.find('\t', start);
        fields.push_back(line.substr(start, tab - start));
        if (tab == std::string::npos) break;
        start = tab + 1;
      }
      Request item = request;  // session, deadline, id inherited
      if (fields[0] == "CONTAIN" && fields.size() == 3) {
        item.kind = RequestKind::kContained;
        item.query = fields[1];
        item.query2 = fields[2];
      } else if (fields[0] == "EQUIV" && fields.size() == 3) {
        item.kind = RequestKind::kEquivalent;
        item.query = fields[1];
        item.query2 = fields[2];
      } else if (fields[0] == "SAT" && fields.size() == 2) {
        item.kind = RequestKind::kSatisfiable;
        item.query = fields[1];
      } else {
        return ErrReply(BadRequest(
            "BATCH lines are 'CONTAIN\\tQ1\\tQ2', 'EQUIV\\tQ1\\tQ2' or "
            "'SAT\\tQ'"));
      }
      batch.push_back(std::move(item));
    }
    std::vector<Response> responses = service_->ExecuteBatch(batch);
    // One verdict character per request, '-' for per-item failures; the
    // worst retryable status is surfaced in the OK line so clients can
    // retry the shed subset.
    std::string verdicts;
    uint64_t shed = 0;
    for (const Response& response : responses) {
      if (response.status.ok()) {
        verdicts += response.verdict ? '1' : '0';
      } else {
        verdicts += '-';
        if (IsRetryable(response.status.code())) ++shed;
      }
    }
    return OkReply("n=" + std::to_string(responses.size()) +
                       " retryable=" + std::to_string(shed),
                   verdicts + "\n");
  }

  return ErrReply(BadRequest("unknown verb '" + verb + "'"));
}

ProtocolReply ProtocolHandler::HandleRepl(const CommandLine& command) {
  if (command.args.empty()) {
    return ErrReply(
        BadRequest("REPL needs SUBSCRIBE, STATE, STATUS, PROMOTE or DEMOTE"));
  }
  std::string sub = command.args[0];
  for (char& c : sub) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  persist::DurableCatalog* catalog = service_->options().catalog.get();
  persist::WriteAheadLog* wal =
      catalog != nullptr ? catalog->wal() : nullptr;

  if (sub == "PROMOTE") {
    // Idempotent: promoting a primary answers OK without a transition,
    // so a retrying client converges (docs/replication.md#promotion).
    Status promoted = service_->Promote();
    if (!promoted.ok()) return ErrReply(promoted);
    return OkReply("role=primary term=" + std::to_string(service_->term()));
  }
  if (sub == "DEMOTE") {
    // Fence this node: the caller (a router's fencing sweep, an operator,
    // a peer) proved a primary at <term> exists. `primary=HOST:PORT`
    // names the successor to rejoin as a follower of; it is mandatory
    // for a tied term (deterministic dueling tie-break), optional when
    // the observed term is strictly higher.
    if (command.args.size() != 2) {
      return ErrReply(
          BadRequest("usage: REPL DEMOTE <term> [primary=HOST:PORT]"));
    }
    const uint64_t observed =
        std::strtoull(command.args[1].c_str(), nullptr, 10);
    if (observed == 0) {
      return ErrReply(BadRequest("REPL DEMOTE takes a numeric term >= 1"));
    }
    Status demoted = service_->Demote(observed, ParamString(command, "primary"));
    if (!demoted.ok()) return ErrReply(demoted);
    return OkReply("role=follower term=" + std::to_string(service_->term()));
  }
  if (sub == "STATUS") {
    const ServiceHealth health = service_->CollectHealth();
    std::string fields =
        std::string("role=") +
        (service_->read_only() ? "follower" : "primary") +
        " term=" + std::to_string(service_->term()) +
        " fenced=" + std::string(service_->fenced() ? "1" : "0");
    if (wal != nullptr) {
      fields += " epoch=" + std::to_string(wal->epoch()) +
                " tip=" + std::to_string(wal->synced_bytes()) +
                " tip_seq=" + std::to_string(wal->synced_seq());
    }
    if (health.repl.present) {
      fields += " connected=" +
                std::string(health.repl.connected ? "1" : "0") +
                " lag_records=" + std::to_string(health.repl.lag_records) +
                " applied_records=" +
                std::to_string(health.repl.applied_records);
    }
    return OkReply(fields);
  }

  // The stream verbs source from the WAL: a catalog is mandatory.
  if (wal == nullptr) {
    return ErrReply(Status::FailedPrecondition(
        "replication needs a durable catalog; start with --data-dir"));
  }
  if (Status chaos = Failpoints::Check("repl/ship"); !chaos.ok()) {
    return ErrReply(chaos);
  }

  if (sub == "STATE") {
    // Full resync payload: a registry dump cut at an exact WAL position
    // under the exclusive mutation gate, so (dump + frames past offset)
    // reconstructs this node exactly.
    StatusOr<persist::DurableCatalog::PositionedDump> dump =
        catalog->DumpWithPosition();
    if (!dump.ok()) return ErrReply(dump.status());
    std::string body;
    for (const persist::Record& record : dump->records) {
      body += replicate::EncodeDumpRecord(record);
      body += '\n';
    }
    MetricAdd("repl/state_dumps", 1);
    return OkReply("epoch=" + std::to_string(dump->epoch) +
                       " offset=" + std::to_string(dump->offset) +
                       " seq=" + std::to_string(dump->seq) +
                       " n=" + std::to_string(dump->records.size()) +
                       " term=" + std::to_string(service_->term()),
                   body);
  }
  if (sub == "SUBSCRIBE") {
    if (command.args.size() != 3) {
      return ErrReply(BadRequest(
          "usage: REPL SUBSCRIBE <epoch> <offset> [wait_ms=N] [max_bytes=N] "
          "[term=N]"));
    }
    const uint64_t want_epoch =
        std::strtoull(command.args[1].c_str(), nullptr, 10);
    const uint64_t offset =
        std::strtoull(command.args[2].c_str(), nullptr, 10);
    // The long-poll window is capped so a subscriber can never park a
    // dispatch worker indefinitely; an empty reply just re-subscribes.
    const uint64_t wait_ms = std::min<uint64_t>(
        ParamUint(command, "wait_ms"), 10000);
    const uint64_t max_bytes = ParamUint(command, "max_bytes");
    MetricAdd("repl/subscribes", 1);
    // The fencing handshake: a subscriber carrying a higher term proves
    // a newer primary was elected while we were partitioned — fence
    // *before* shipping a single frame of our forked history.
    const uint64_t subscriber_term = ParamUint(command, "term");
    if (subscriber_term > service_->term()) {
      (void)service_->Demote(subscriber_term, "");
      return ErrReply(Status::FailedPrecondition(
          "fenced term=" + std::to_string(service_->term()) +
          ": subscriber is ahead of this node; resync from the current "
          "primary"));
    }
    if (subscriber_term != 0 && subscriber_term < service_->term()) {
      return ErrReply(Status::FailedPrecondition(
          "stale subscriber term=" + std::to_string(subscriber_term) +
          "; this primary is at term " + std::to_string(service_->term()) +
          "; resync required"));
    }
    if (wal->epoch() != want_epoch) {
      return ErrReply(Status::FailedPrecondition(
          "wal epoch is " + std::to_string(wal->epoch()) + ", not " +
          std::to_string(want_epoch) + " (log compacted); resync required"));
    }
    if (wait_ms > 0 && offset >= wal->synced_bytes()) {
      // Parks until the next group commit lands (the fsync completion
      // notifies), the log compacts, or the window expires — batches
      // ship the moment they become durable, not a poll interval later.
      (void)wal->WaitDurable(offset, static_cast<uint32_t>(wait_ms));
    }
    StatusOr<persist::WriteAheadLog::TailBatch> batch =
        wal->ReadDurableRange(offset, max_bytes);
    if (!batch.ok()) return ErrReply(batch.status());
    if (batch->epoch != want_epoch) {
      return ErrReply(Status::FailedPrecondition(
          "wal compacted during the poll; resync required"));
    }
    std::string body;
    uint64_t frame_bytes = 0;
    for (const persist::WriteAheadLog::TailRecord& record : batch->records) {
      body += replicate::EncodeShippedRecord(record.offset, record.frame);
      body += '\n';
      frame_bytes += record.frame.size();
    }
    MetricAdd("repl/ship_records", batch->records.size());
    MetricAdd("repl/ship_bytes", frame_bytes);
    return OkReply("next=" + std::to_string(batch->next_offset) +
                       " epoch=" + std::to_string(batch->epoch) +
                       " tip=" + std::to_string(batch->durable_bytes) +
                       " tip_seq=" + std::to_string(batch->durable_seq) +
                       " n=" + std::to_string(batch->records.size()) +
                       " term=" + std::to_string(service_->term()),
                   body);
  }
  return ErrReply(
      BadRequest("REPL needs SUBSCRIBE, STATE, STATUS, PROMOTE or DEMOTE"));
}

}  // namespace oocq::server
