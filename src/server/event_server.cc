#include "server/event_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <utility>

#include "server/protocol.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace oocq::server {

namespace {

/// Sentinel epoll user-data values for the two non-connection fds.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

/// Constant-size retryable refusal, used when transport-level bounds
/// (pipeline depth, output buffer) shed a request before it reaches the
/// service. Same wire shape as protocol.cc's ErrReply.
std::string ShedReply(const char* what) {
  return std::string("ERR UNAVAILABLE ") + what + "\n.\n";
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// All state touched only by the loop thread: the connection table, the
/// idle timer wheel, and the stop-drain bookkeeping. Pool workers talk
/// to the loop exclusively through the completion queue + eventfd.
struct EventServer::Loop {
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    ConnectionHandler framing;
    /// Parsed requests waiting for their turn (replies must go out in
    /// request order, so at most one executes at a time). The enqueue
    /// timestamp feeds the server/dispatch_wait_us histogram and the
    /// Dispatch span's queue_us annotation.
    struct QueuedRequest {
      CommandLine command;
      std::vector<std::string> payload;
      uint64_t enqueued_us = 0;
    };
    std::deque<QueuedRequest> requests;
    std::string outbox;
    size_t out_off = 0;
    bool want_write = false;  // EPOLLOUT currently armed
    bool read_off = false;    // peer EOF or drain: no more reads
    bool in_flight = false;   // a request of this conn runs on the pool
    bool quit = false;        // QUIT answered: close once flushed
    /// Timer wheel membership (kNotScheduled when off the wheel).
    size_t wheel_bucket = kNotScheduled;
    std::list<uint64_t>::iterator wheel_it;

    static constexpr size_t kNotScheduled = static_cast<size_t>(-1);

    size_t pending_output() const { return outbox.size() - out_off; }
    bool idle() const {
      return !in_flight && requests.empty() && pending_output() == 0;
    }
  };

  /// Hashed timing wheel for idle-session timeouts: one bucket per tick
  /// across slightly more than one timeout's worth of ticks, so every
  /// entry in the bucket the cursor reaches is due. Activity reschedules
  /// the connection into the bucket one full timeout ahead.
  struct TimerWheel {
    uint64_t tick_ms = 0;
    uint64_t timeout_ticks = 0;
    uint64_t last_tick = 0;
    std::vector<std::list<uint64_t>> buckets;

    bool enabled() const { return tick_ms != 0; }

    void Init(uint64_t timeout_ms) {
      tick_ms = std::clamp<uint64_t>(timeout_ms / 8, 10, 1000);
      timeout_ticks = (timeout_ms + tick_ms - 1) / tick_ms + 1;
      buckets.assign(timeout_ticks + 1, {});
    }

    void Remove(Connection* conn) {
      if (conn->wheel_bucket == Connection::kNotScheduled) return;
      buckets[conn->wheel_bucket].erase(conn->wheel_it);
      conn->wheel_bucket = Connection::kNotScheduled;
    }

    void Schedule(Connection* conn, uint64_t now_tick) {
      Remove(conn);
      size_t bucket = (now_tick + timeout_ticks) % buckets.size();
      buckets[bucket].push_back(conn->id);
      conn->wheel_bucket = bucket;
      conn->wheel_it = std::prev(buckets[bucket].end());
    }
  };

  explicit Loop(EventServer* server) : server(server) {}

  EventServer* server;
  int epoll_fd = -1;
  std::map<uint64_t, std::unique_ptr<Connection>> conns;
  uint64_t next_conn_id = kFirstConnId;
  size_t dispatched = 0;  // requests on the pool, completions not seen
  TimerWheel wheel;
  uint64_t start_ms = 0;
  /// EMFILE backoff: the listener is removed from the interest set until
  /// this deadline, so a level-triggered "still readable" listener does
  /// not spin the loop while fds are exhausted.
  uint64_t listener_paused_until_ms = 0;
  bool listener_armed = false;
  bool stop_begun = false;

  uint64_t NowTick() const {
    return wheel.enabled() ? (NowMs() - start_ms) / wheel.tick_ms : 0;
  }

  void Touch(Connection* conn) {
    if (wheel.enabled()) wheel.Schedule(conn, NowTick());
  }

  void ArmListener(bool arm) {
    if (arm == listener_armed) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    ::epoll_ctl(epoll_fd, arm ? EPOLL_CTL_ADD : EPOLL_CTL_DEL,
                server->listen_fd_, &ev);
    listener_armed = arm;
  }

  void UpdateInterest(Connection* conn) {
    epoll_event ev{};
    ev.events = (conn->read_off ? 0u : EPOLLIN) |
                (conn->want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void Close(Connection* conn) {
    wheel.Remove(conn);
    ::close(conn->fd);  // also removes the fd from the epoll set
    conns.erase(conn->id);
  }

  Connection* Find(uint64_t id) {
    auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }

  void Accept() {
    while (true) {
      int fd = ::accept4(server->listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM) {
          // Out of fds/kernel memory: pause accepting briefly instead of
          // spinning on a listener that stays level-triggered readable.
          OOCQ_METRIC_ADD("server/accept_backoff", 1);
          listener_paused_until_ms = NowMs() + 100;
          ArmListener(false);
          return;
        }
        return;  // listener closed by Stop()
      }
      // Chaos hook (after accept returns, before the connection is
      // served): `delay` stalls acceptance, `error` drops the connection
      // on the floor — a retrying client reconnects.
      if (!Failpoints::Hit("tcp/accept")) {
        ::close(fd);
        continue;
      }
      if (conns.size() >= server->options_.max_connections) {
        OOCQ_METRIC_ADD("server/overflow_refused", 1);
        ::close(fd);
        continue;
      }
      if (server->options_.so_sndbuf_bytes > 0) {
        int sndbuf = static_cast<int>(server->options_.so_sndbuf_bytes);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
      }
      // Request/reply ping-pong with tiny frames: Nagle + delayed ACK
      // would add up to 40ms per exchange at the tail.
      int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      server->accepted_.fetch_add(1, std::memory_order_relaxed);
      OOCQ_METRIC_ADD("server/connections", 1);
      Connection* raw = conn.get();
      conns.emplace(raw->id, std::move(conn));
      Touch(raw);
    }
  }

  void Append(Connection* conn, const std::string& text) {
    // Compact lazily: drop already-sent bytes once they dominate.
    if (conn->out_off > 0 && conn->out_off >= conn->outbox.size() / 2) {
      conn->outbox.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    conn->outbox += text;
    // Write-buffer watermark: the histogram's max is the high-water mark
    // a slow reader drove this connection's outbox to.
    OOCQ_METRIC_RECORD("server/outbox_bytes", conn->pending_output());
  }

  /// Starts the next queued request if the connection is free, shedding
  /// queued requests outright while the peer is not draining its reply
  /// bytes (bounded output buffer — the backpressure contract).
  void Pump(Connection* conn) {
    while (!conn->in_flight && !conn->quit && !conn->requests.empty()) {
      if (conn->pending_output() >
          server->options_.max_output_buffer_bytes) {
        OOCQ_METRIC_ADD("server/backpressure_shed", 1);
        Append(conn, ShedReply(
                         "slow reader: reply buffer over budget, request "
                         "shed"));
        conn->requests.pop_front();
        continue;
      }
      Connection::QueuedRequest next = std::move(conn->requests.front());
      conn->requests.pop_front();
      conn->in_flight = true;
      ++dispatched;
      // Depth gauge: requests handed to the pool whose completions the
      // loop has not yet seen — the dispatch backlog a stalled pool grows.
      OOCQ_METRIC_RECORD("server/dispatch_queue_depth", dispatched);
      uint64_t id = conn->id;
      uint64_t enqueued_us = next.enqueued_us;
      OocqService* service = server->service_;
      EventServer* owner = server;
      server->pool_->Submit([owner, service, id, enqueued_us,
                             command = std::move(next.command),
                             payload = std::move(next.payload)] {
        const uint64_t queue_us = NowUs() - enqueued_us;
        OOCQ_METRIC_RECORD("server/dispatch_wait_us", queue_us);
        // The queue-wait leg of the request's trace path: parsed on the
        // loop thread at enqueued_us, picked up by this pool worker now.
        OOCQ_TRACE_SPAN(span, "Dispatch");
        span.Arg("conn", id).Arg("queue_us", queue_us);
        if (!command.request_id.empty()) span.Arg("id", command.request_id);
        Completion completion;
        completion.conn_id = id;
        ProtocolReply reply = ProtocolHandler(service).Handle(command, payload);
        // Chaos hook: an injected `tcp/write` failure drops the reply
        // and the connection, exactly like a failed send() on the
        // thread-per-connection transport.
        if (!Failpoints::Hit("tcp/write")) {
          completion.drop = true;
        } else {
          completion.text = std::move(reply.text);
          completion.close = reply.close;
        }
        owner->PostCompletion(std::move(completion));
      });
      return;
    }
  }

  /// Parses every complete frame out of the connection's read buffer.
  /// Returns false when the connection was closed (framing violation or
  /// truncated frame at EOF).
  bool ParseFrames(Connection* conn) {
    while (true) {
      CommandLine command;
      std::vector<std::string> payload;
      switch (conn->framing.Next(&command, &payload)) {
        case ConnectionHandler::FrameResult::kViolation:
          OOCQ_METRIC_ADD("server/framing_violations", 1);
          Close(conn);
          return false;
        case ConnectionHandler::FrameResult::kNeedMore:
          if (conn->read_off && conn->framing.mid_frame()) {
            // EOF mid-payload: the frame can never complete; no reply
            // (TcpServer parity for dropped-mid-payload clients).
            Close(conn);
            return false;
          }
          return true;
        case ConnectionHandler::FrameResult::kRequest:
          break;
      }
      if (conn->requests.size() >= server->options_.max_pipeline_depth) {
        OOCQ_METRIC_ADD("server/pipeline_shed", 1);
        Append(conn, ShedReply("pipeline depth exceeded, request shed"));
        continue;
      }
      conn->requests.push_back(
          {std::move(command), std::move(payload), NowUs()});
    }
  }

  /// Drains readable bytes (bounded per readiness for loop fairness),
  /// parses frames, pumps. Returns false if the connection was closed.
  bool OnReadable(Connection* conn) {
    if (conn->read_off) return true;
    Touch(conn);
    char chunk[16384];
    {
      // First leg of the request's trace path: bytes leaving the kernel
      // on the loop thread. Linked to the later Dispatch/Request spans
      // through the shared `conn` annotation (and `id` once parsed).
      OOCQ_TRACE_SPAN(span, "SocketRead");
      span.Arg("conn", conn->id);
      uint64_t total = 0;
      for (int round = 0; round < 8; ++round) {
        // Chaos hook: `error` fails the read — the connection is treated
        // as dropped, which a retrying client must survive.
        if (!Failpoints::Hit("tcp/read")) {
          Close(conn);
          return false;
        }
        ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (got > 0) {
          conn->framing.Feed(chunk, static_cast<size_t>(got));
          total += static_cast<uint64_t>(got);
          if (static_cast<size_t>(got) < sizeof(chunk)) break;
          continue;
        }
        if (got == 0) {
          conn->read_off = true;  // half-close: finish what was received
          UpdateInterest(conn);
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        Close(conn);
        return false;
      }
      span.Arg("bytes", total);
    }
    if (!ParseFrames(conn)) return false;
    Pump(conn);
    return Flush(conn);
  }

  /// Sends buffered reply bytes; arms EPOLLOUT when the socket fills.
  /// Returns false if the connection was closed.
  bool Flush(Connection* conn) {
    const size_t backlog = conn->pending_output();
    if (backlog > 0 && TracingActive()) {
      // Last leg of the request's trace path: reply bytes entering the
      // kernel on the loop thread.
      OOCQ_TRACE_SPAN(span, "ReplyWrite");
      span.Arg("conn", conn->id).Arg("bytes", backlog);
      return FlushBytes(conn);
    }
    return FlushBytes(conn);
  }

  bool FlushBytes(Connection* conn) {
    while (conn->pending_output() > 0) {
      ssize_t sent =
          ::send(conn->fd, conn->outbox.data() + conn->out_off,
                 conn->outbox.size() - conn->out_off, MSG_NOSIGNAL);
      if (sent > 0) {
        conn->out_off += static_cast<size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          UpdateInterest(conn);
          // The peer's receive window is full; the reply waits in the
          // outbox until EPOLLOUT. Counted once per stall, not per retry.
          OOCQ_METRIC_ADD("server/outbox_stalls", 1);
        }
        // A reader so slow that even shed replies pile up unread gets
        // dropped — the bound must bound.
        if (conn->pending_output() >
            4 * server->options_.max_output_buffer_bytes) {
          OOCQ_METRIC_ADD("server/slow_reader_dropped", 1);
          Close(conn);
          return false;
        }
        return true;
      }
      if (sent < 0 && errno == EINTR) continue;
      Close(conn);
      return false;
    }
    conn->outbox.clear();
    conn->out_off = 0;
    if (conn->want_write) {
      conn->want_write = false;
      UpdateInterest(conn);
    }
    if (conn->quit || (conn->read_off && conn->idle())) {
      Close(conn);
      return false;
    }
    return true;
  }

  void OnWritable(Connection* conn) {
    Touch(conn);
    (void)Flush(conn);
  }

  /// Applies finished requests: append the rendered reply, mark the
  /// connection free, start its next queued request, flush.
  void DrainCompletions() {
    uint64_t counter;
    ssize_t drained = ::read(server->wake_fd_, &counter, sizeof(counter));
    (void)drained;  // EAGAIN when woken by Stop() alone is fine
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(server->completions_mu_);
      batch.swap(server->completions_);
    }
    for (Completion& completion : batch) {
      --dispatched;
      Connection* conn = Find(completion.conn_id);
      if (conn == nullptr) continue;  // connection died while executing
      conn->in_flight = false;
      if (completion.drop) {
        Close(conn);
        continue;
      }
      Append(conn, completion.text);
      if (completion.close) {
        // QUIT: anything pipelined after it would not be answered by the
        // reference transport either.
        conn->quit = true;
        conn->requests.clear();
      }
      Pump(conn);
      (void)Flush(conn);
    }
  }

  /// Advances the timer wheel to `now`, closing connections idle past
  /// the timeout (busy connections are rescheduled, not closed).
  void ExpireIdle() {
    if (!wheel.enabled()) return;
    uint64_t now_tick = NowTick();
    uint64_t steps = now_tick - wheel.last_tick;
    steps = std::min<uint64_t>(steps, wheel.buckets.size());
    for (uint64_t i = 1; i <= steps; ++i) {
      uint64_t tick = wheel.last_tick + i;
      std::list<uint64_t> due;
      due.swap(wheel.buckets[tick % wheel.buckets.size()]);
      for (uint64_t id : due) {
        Connection* conn = Find(id);
        if (conn == nullptr) continue;
        conn->wheel_bucket = Connection::kNotScheduled;
        if (!conn->idle()) {
          wheel.Schedule(conn, now_tick);  // mid-request: not idle
          continue;
        }
        OOCQ_METRIC_ADD("server/idle_closed", 1);
        Close(conn);
      }
    }
    wheel.last_tick = now_tick;
  }

  /// First reaction to Stop(): close the listener and half-close every
  /// connection's read side, so requests already received still get
  /// their responses (the graceful-drain contract).
  void BeginStop() {
    if (stop_begun) return;
    stop_begun = true;
    ArmListener(false);
    for (auto& [id, conn] : conns) {
      ::shutdown(conn->fd, SHUT_RD);
      conn->read_off = true;
    }
    // Connections mid-frame can never complete; sweep them (and already
    // idle ones) now. Close() mutates the map, so collect ids first.
    std::vector<uint64_t> sweep;
    for (auto& [id, conn] : conns) {
      if (conn->idle() || conn->framing.mid_frame()) sweep.push_back(id);
    }
    for (uint64_t id : sweep) {
      if (Connection* conn = Find(id)) Close(conn);
    }
  }

  bool DrainComplete() const {
    if (dispatched != 0) return false;
    for (const auto& [id, conn] : conns) {
      if (!conn->idle()) return false;
    }
    return true;
  }

  int EpollTimeoutMs() const {
    if (stop_begun) return 50;
    uint64_t timeout = static_cast<uint64_t>(-1);
    if (wheel.enabled()) timeout = wheel.tick_ms;
    if (listener_paused_until_ms != 0) {
      uint64_t now = NowMs();
      uint64_t resume =
          listener_paused_until_ms > now ? listener_paused_until_ms - now : 1;
      timeout = std::min(timeout, resume);
    }
    if (timeout == static_cast<uint64_t>(-1)) return -1;
    return static_cast<int>(std::min<uint64_t>(timeout, 1000));
  }
};

EventServer::EventServer(OocqService* service, EventServerOptions options)
    : service_(service), options_(options) {}

EventServer::~EventServer() { Stop(); }

Status EventServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("server already started");
  }
  StatusOr<int> listener = OpenListener(options_, /*nonblocking=*/true, &port_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status failed =
        Status::Internal(std::string("eventfd: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }

  loop_ = std::make_unique<Loop>(this);
  loop_->epoll_fd = ::epoll_create1(0);
  if (loop_->epoll_fd < 0) {
    Status failed =
        Status::Internal(std::string("epoll_create1: ") + std::strerror(errno));
    ::close(listen_fd_);
    ::close(wake_fd_);
    listen_fd_ = wake_fd_ = -1;
    loop_.reset();
    return failed;
  }
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.u64 = kWakeTag;
  ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, wake_fd_, &wake_ev);
  loop_->ArmListener(true);
  loop_->start_ms = NowMs();
  if (options_.idle_timeout_ms > 0) {
    loop_->wheel.Init(options_.idle_timeout_ms);
  }

  uint32_t workers = options_.dispatch_threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(workers);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Transport marker: lets a METRICS/STATS scrape tell which transport
  // served this process (the flat dumps are otherwise identical).
  OOCQ_METRIC_ADD("server/transport/event", 1);
  loop_thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventServer::Run() {
  epoll_event events[256];
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) {
      loop_->BeginStop();
      if (loop_->DrainComplete()) break;
    }
    if (loop_->listener_paused_until_ms != 0 &&
        NowMs() >= loop_->listener_paused_until_ms && !loop_->stop_begun) {
      loop_->listener_paused_until_ms = 0;
      loop_->ArmListener(true);
    }
    int n = ::epoll_wait(loop_->epoll_fd, events,
                         static_cast<int>(std::size(events)),
                         loop_->EpollTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    OOCQ_METRIC_ADD("server/loop_wakeups", 1);
    // Loop lag: wall time the loop thread spends handling one readiness
    // batch — time during which no other connection's bytes move. A p99
    // here in the milliseconds means some handler blocks the loop.
    const uint64_t iteration_start_us = NowUs();
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (!loop_->stop_begun) loop_->Accept();
        continue;
      }
      if (tag == kWakeTag) {
        loop_->DrainCompletions();
        continue;
      }
      Loop::Connection* conn = loop_->Find(tag);
      if (conn == nullptr) continue;  // closed earlier in this batch
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Peer reset. Replies for its in-flight request are discarded at
        // completion time (the connection will be gone).
        loop_->Close(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) && !loop_->OnReadable(conn)) continue;
      if (events[i].events & EPOLLOUT) loop_->OnWritable(conn);
    }
    if (n > 0) {
      OOCQ_METRIC_RECORD("server/loop_iteration_us", NowUs() - iteration_start_us);
    }
    loop_->ExpireIdle();
  }
  // Loop exit: drain finished (or epoll died). Close whatever remains.
  std::vector<uint64_t> remaining;
  for (auto& [id, conn] : loop_->conns) remaining.push_back(id);
  for (uint64_t id : remaining) {
    if (Loop::Connection* conn = loop_->Find(id)) loop_->Close(conn);
  }
}

void EventServer::PostCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  WakeLoop();
}

void EventServer::WakeLoop() {
  uint64_t one = 1;
  ssize_t written = ::write(wake_fd_, &one, sizeof(one));
  (void)written;  // eventfd counter saturating still wakes the loop
}

void EventServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop only exits once every dispatched request completed, so the
  // pool is idle; destroying it joins the workers.
  pool_.reset();
  if (loop_ != nullptr && loop_->epoll_fd >= 0) ::close(loop_->epoll_fd);
  loop_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = wake_fd_ = -1;
  service_->Drain();
}

}  // namespace oocq::server
