#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "support/failpoint.h"
#include "support/metrics.h"

namespace oocq::server {

namespace {

/// Buffered line reader over a socket fd. Lines are "\n"-terminated; a
/// trailing "\r" (telnet clients) is stripped.
/// A single protocol line (command or payload) may not exceed this many
/// bytes; a client that streams more without a newline is dropped rather
/// than allowed to grow the connection's buffer without bound.
constexpr size_t kMaxLineBytes = 1 << 20;

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one line into *line (terminator stripped). Returns false on
  /// EOF / error with no buffered line, or on a line over kMaxLineBytes.
  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buffer_.find('\n', scan_from_);
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        scan_from_ = 0;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (buffer_.size() > kMaxLineBytes) return false;  // oversized line
      scan_from_ = buffer_.size();
      // Chaos hook: `error` fails the read (the connection is treated as
      // dropped — exactly what a retrying client must survive).
      if (!Failpoints::Hit("tcp/read")) return false;
      char chunk[4096];
      ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return false;  // peer closed or read side shut down
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t scan_from_ = 0;
};

bool SendAll(int fd, const std::string& data) {
  if (!Failpoints::Hit("tcp/write")) return false;  // injected send failure
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(OocqService* service, TcpServerOptions options)
    : service_(service), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr =
      htonl(options_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status failed =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status failed =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  // Transient-failure backoff: EMFILE/ENFILE (fd exhaustion) and
  // ENOBUFS/ENOMEM mean the *process or host* is out of resources, not
  // that the listener is broken — exiting the loop would turn a burst of
  // connections into a dead server. Sleep (bounded, doubling) and retry;
  // a successful accept resets the backoff.
  uint64_t backoff_ms = 10;
  constexpr uint64_t kMaxBackoffMs = 1000;
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        MetricAdd("server/accept_backoff", 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        continue;
      }
      break;  // listener closed by Stop()
    }
    backoff_ms = 10;
    // Chaos hook (after accept returns, before the connection is served):
    // `delay` stalls acceptance, `error` drops the connection on the
    // floor — a retrying client reconnects.
    if (!Failpoints::Hit("tcp/accept")) {
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    MetricAdd("server/connections", 1);
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      id = next_conn_++;
      conns_.emplace(id, fd);
      conn_threads_.emplace_back([this, fd, id] {
        Serve(fd);
        {
          std::lock_guard<std::mutex> inner(conns_mu_);
          conns_.erase(id);
        }
        ::close(fd);
      });
    }
  }
}

void TcpServer::Serve(int fd) {
  LineReader reader(fd);
  ProtocolHandler handler(service_);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    CommandLine command = ParseCommandLine(line);
    std::vector<std::string> payload;
    bool has_payload = VerbHasPayload(command.verb) ||
                       (command.verb == "SESSION" && !command.args.empty() &&
                        (command.args[0] == "NEW" || command.args[0] == "new"));
    if (has_payload) {
      std::string payload_line;
      bool terminated = false;
      while (reader.ReadLine(&payload_line)) {
        if (payload_line == ".") {
          terminated = true;
          break;
        }
        // Undo dot-stuffing so payload lines may begin with '.'.
        if (!payload_line.empty() && payload_line[0] == '.') {
          payload_line.erase(0, 1);
        }
        payload.push_back(std::move(payload_line));
      }
      if (!terminated) return;  // connection dropped mid-payload
    }
    ProtocolReply reply = handler.Handle(command, payload);
    if (!SendAll(fd, reply.text)) return;
    if (reply.close) return;
  }
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept(): shut down and close the listener.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Half-close live connections: their next ReadLine() sees EOF, but the
  // write side stays open so a request already executing still gets its
  // response before the handler returns.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conns_) ::shutdown(fd, SHUT_RD);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  service_->Drain();
}

}  // namespace oocq::server
