#include "server/tcp_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "support/failpoint.h"
#include "support/metrics.h"

namespace oocq::server {

namespace {

bool SendAll(int fd, const std::string& data) {
  if (!Failpoints::Hit("tcp/write")) return false;  // injected send failure
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(OocqService* service, TcpServerOptions options)
    : service_(service), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("server already started");
  }
  StatusOr<int> listener =
      OpenListener(options_, /*nonblocking=*/false, &port_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Transport marker: lets a METRICS/STATS scrape tell which transport
  // served this process (the flat dumps are otherwise identical).
  MetricAdd("server/transport/thread", 1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  // Transient-failure backoff: EMFILE/ENFILE (fd exhaustion) and
  // ENOBUFS/ENOMEM mean the *process or host* is out of resources, not
  // that the listener is broken — exiting the loop would turn a burst of
  // connections into a dead server. Sleep (bounded, doubling) and retry;
  // a successful accept resets the backoff.
  uint64_t backoff_ms = 10;
  constexpr uint64_t kMaxBackoffMs = 1000;
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        MetricAdd("server/accept_backoff", 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        continue;
      }
      break;  // listener closed by Stop()
    }
    backoff_ms = 10;
    // Chaos hook (after accept returns, before the connection is served):
    // `delay` stalls acceptance, `error` drops the connection on the
    // floor — a retrying client reconnects.
    if (!Failpoints::Hit("tcp/accept")) {
      ::close(fd);
      continue;
    }
    // Request/reply ping-pong with tiny frames: Nagle + delayed ACK
    // would add up to 40ms per exchange at the tail.
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    MetricAdd("server/connections", 1);
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      id = next_conn_++;
      conns_.emplace(id, fd);
      // Thread creation is the resource this transport actually scales
      // with: at thread-per-connection saturation (EAGAIN from
      // pthread_create) the connection is refused rather than the whole
      // server crashing on an uncaught system_error. bench_load drives
      // the transport exactly into this regime.
      try {
        conn_threads_.emplace_back([this, fd, id] {
          Serve(fd);
          {
            std::lock_guard<std::mutex> inner(conns_mu_);
            conns_.erase(id);
          }
          ::close(fd);
        });
      } catch (const std::system_error&) {
        MetricAdd("server/thread_refused", 1);
        conns_.erase(id);
        ::close(fd);
      }
    }
  }
}

void TcpServer::Serve(int fd) {
  // Framing is the shared ConnectionHandler state machine
  // (server/protocol.h); this transport merely feeds it from blocking
  // reads. EventServer feeds the identical machine from epoll readiness.
  ConnectionHandler framing;
  ProtocolHandler handler(service_);
  CommandLine command;
  std::vector<std::string> payload;
  char chunk[4096];
  while (true) {
    switch (framing.Next(&command, &payload)) {
      case ConnectionHandler::FrameResult::kViolation:
        return;  // oversized line: drop the connection
      case ConnectionHandler::FrameResult::kNeedMore: {
        // Chaos hook: `error` fails the read (the connection is treated
        // as dropped — exactly what a retrying client must survive).
        if (!Failpoints::Hit("tcp/read")) return;
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0) return;  // peer closed or read side shut down
        framing.Feed(chunk, static_cast<size_t>(got));
        continue;
      }
      case ConnectionHandler::FrameResult::kRequest:
        break;
    }
    ProtocolReply reply = handler.Handle(command, payload);
    if (!SendAll(fd, reply.text)) return;
    if (reply.close) return;
  }
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept(): shut down and close the listener.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Half-close live connections: their next ReadLine() sees EOF, but the
  // write side stays open so a request already executing still gets its
  // response before the handler returns.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conns_) ::shutdown(fd, SHUT_RD);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  service_->Drain();
}

}  // namespace oocq::server
