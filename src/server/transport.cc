#include "server/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace oocq::server {

StatusOr<int> OpenListener(const TransportOptions& options, bool nonblocking,
                           uint16_t* port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  addr.sin_addr.s_addr =
      htonl(options.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status failed = Status::Internal(std::string("bind: ") +
                                     std::strerror(errno));
    ::close(fd);
    return failed;
  }
  // SOMAXCONN, not a small constant: an open-loop connect burst (10k+
  // sockets from bench_load) must land in the kernel backlog, not be
  // refused while the accept path catches up.
  if (::listen(fd, SOMAXCONN) < 0) {
    Status failed = Status::Internal(std::string("listen: ") +
                                     std::strerror(errno));
    ::close(fd);
    return failed;
  }
  if (nonblocking) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      Status failed = Status::Internal(std::string("fcntl: ") +
                                       std::strerror(errno));
      ::close(fd);
      return failed;
    }
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (port != nullptr &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
          0) {
    *port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace oocq::server
