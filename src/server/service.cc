#include "server/service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <future>
#include <utility>

#include "core/containment.h"
#include "core/explain.h"
#include "core/general_minimization.h"
#include "core/minimization.h"
#include "core/satisfiability.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "support/failpoint.h"
#include "support/log.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq::server {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One finished request's outcome → the registry, classified through the
/// shared retryable taxonomy (IsRetryable, support/status.h) rather than
/// per-code special cases. The per-code counters under the rollup keep
/// dashboards able to tell expiry from shedding from budget overrun.
void CountOutcome(MetricsRegistry& registry, const Status& status) {
  if (status.ok()) {
    registry.Add("server/ok", 1);
    return;
  }
  if (!IsRetryable(status.code())) {
    registry.Add("server/errors", 1);
    return;
  }
  registry.Add("server/retryable", 1);
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      registry.Add("server/deadline_exceeded", 1);
      break;
    case StatusCode::kResourceExhausted:
      registry.Add("server/resource_exhausted", 1);
      break;
    default:
      registry.Add("server/unavailable", 1);
      break;
  }
}

/// The follower-mode refusal every mutating entry point shares. The
/// message leads with "readonly" — the wire contract clients and the
/// router key failover on (ERR FAILED_PRECONDITION readonly ...).
Status ReadonlyError() {
  return Status::FailedPrecondition(
      "readonly: this node is a replication follower; send writes to the "
      "primary");
}

/// The fenced refusal: a demoted primary answers mutations with a term
/// so routers re-resolve to the higher-term primary instead of merely
/// redirecting (ERR FAILED_PRECONDITION fenced term=N ...).
Status FencedError(uint64_t term) {
  return Status::FailedPrecondition(
      "fenced term=" + std::to_string(term) +
      ": a higher-term primary exists; re-resolve and send writes there");
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMinimize:
      return "minimize";
    case RequestKind::kContained:
      return "contained";
    case RequestKind::kEquivalent:
      return "equivalent";
    case RequestKind::kUnionContained:
      return "union_contained";
    case RequestKind::kSatisfiable:
      return "satisfiable";
    case RequestKind::kEvaluate:
      return "evaluate";
    case RequestKind::kExplain:
      return "explain";
  }
  return "unknown";
}

OocqService::OocqService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
  if (options_.metrics) metrics_scope_.emplace(&registry_);
  requests_total_ = registry_.Counter("server/requests");
  started_total_ = registry_.Counter("server/started");
  queue_wait_us_ = registry_.Histogram("server/queue_wait_us");
  latency_us_ = registry_.Histogram("server/latency_us");
  for (int kind = 0; kind < 7; ++kind) {
    verb_latency_us_[kind] = registry_.Histogram(
        std::string("server/verb/") +
        RequestKindName(static_cast<RequestKind>(kind)) + "_us");
  }
  if (!options_.failpoints.empty()) {
    Status armed = Failpoints::Configure(options_.failpoints);
    if (!armed.ok()) registry_.Add("failpoint/config_errors", 1);
  }
  if (options_.budget.AnySet()) budget_.emplace(options_.budget);
  read_only_.store(options_.read_only, std::memory_order_relaxed);
  if (options_.catalog != nullptr) {
    term_.store(options_.catalog->term(), std::memory_order_release);
  }
  pool_ = std::make_unique<ThreadPool>(options_.max_in_flight);
  if (options_.catalog != nullptr) {
    RestoreFromCatalog();
    options_.catalog->StartSnapshotter([this] { return DumpCatalog(); });
  }
}

OocqService::~OocqService() {
  Drain();
  if (options_.catalog != nullptr) {
    options_.catalog->StopSnapshotter();
    // Final compaction: the snapshot carries the warm containment cache
    // into the next process. Then detach the dump — the catalog may
    // outlive this service.
    (void)options_.catalog->SnapshotNow();
    options_.catalog->StartSnapshotter(nullptr);
  }
  // The pool joins before the metrics scope (a member declared earlier)
  // is torn down, so late task metrics never land in a dead registry.
  pool_.reset();
}

StatusOr<std::shared_ptr<OocqService::Session>> OocqService::MakeSession(
    const std::string& schema_text) const {
  OOCQ_ASSIGN_OR_RETURN(Schema schema, ParseSchema(schema_text));
  auto session = std::make_shared<Session>(std::move(schema));
  session->schema_text = schema_text;
  // The cache binds to the Session-owned schema, whose address is stable
  // for the session's lifetime (sessions are held by shared_ptr).
  ContainmentCache::Options cache_options;
  cache_options.containment = options_.engine.containment;
  // The engine-level master switch governs cached decisions too: the
  // cache's baked options are the ones its misses compute under.
  cache_options.containment.enable_compilation =
      options_.engine.enable_compilation;
  cache_options.max_entries = options_.engine.cache.max_entries;
  cache_options.num_shards = options_.engine.cache.num_shards;
  if (options_.engine.cache.enabled) {
    session->cache =
        std::make_unique<ContainmentCache>(&session->schema, cache_options);
  }
  // Compiled programs live and die with the session's decision caches:
  // they depend only on the schema (stable for the session) and the
  // query text, so LoadState never invalidates them.
  if (options_.engine.enable_compilation) {
    session->programs = std::make_unique<compile::ProgramCache>();
  }
  return session;
}

StatusOr<std::string> OocqService::CreateSession(
    const std::string& schema_text) {
  if (read_only()) return fenced() ? FencedError(term()) : ReadonlyError();
  OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        MakeSession(schema_text));
  OOCQ_RETURN_IF_ERROR(ChargeResident(*session, schema_text.size()));
  // Persistence gate (shared): the catalog's snapshotter cannot cut
  // between this mutation's in-memory commit and its WAL append.
  std::shared_lock<std::shared_mutex> guard;
  if (options_.catalog != nullptr) guard = options_.catalog->MutationGuard();
  std::string id;
  uint64_t allocated = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    allocated = next_session_++;
    id = "s" + std::to_string(allocated);
    sessions_.emplace(id, session);
  }
  registry_.Add("server/sessions_created", 1);
  persist::Record record;
  record.type = persist::RecordType::kCreateSession;
  record.session_id = id;
  record.text = schema_text;
  Status logged = LogMutation(std::move(record));
  if (!logged.ok()) {
    // Unlogged sessions are never acked: roll back so the client can
    // retry (or fail over) with a consistent view. The id is released
    // too (unless a concurrent create already claimed the next one), so
    // a scripted retry lands on the same session name.
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.erase(id);
      if (next_session_ == allocated + 1) next_session_ = allocated;
    }
    ReleaseResident(*session, session->resident_bytes);
    return logged;
  }
  return id;
}

Status OocqService::DropSession(const std::string& session_id) {
  if (read_only()) return fenced() ? FencedError(term()) : ReadonlyError();
  std::shared_lock<std::shared_mutex> guard;
  if (options_.catalog != nullptr) guard = options_.catalog->MutationGuard();
  std::shared_ptr<Session> dropped;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // In-flight requests keep the Session alive through their shared_ptr;
    // dropping only unregisters the id.
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session '" + session_id + "'");
    }
    dropped = it->second;
    sessions_.erase(it);
  }
  ReleaseResident(*dropped, dropped->resident_bytes);
  persist::Record record;
  record.type = persist::RecordType::kDropSession;
  record.session_id = session_id;
  return LogMutation(std::move(record));
}

StatusOr<std::shared_ptr<OocqService::Session>> OocqService::FindSession(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + session_id + "'");
  }
  return it->second;
}

Status OocqService::DefineQuery(const std::string& session_id,
                                const std::string& name,
                                const std::string& query_text) {
  if (read_only()) return fenced() ? FencedError(term()) : ReadonlyError();
  OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        FindSession(session_id));
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                        ParseQuery(session->schema, query_text));
  std::shared_lock<std::shared_mutex> guard;
  if (options_.catalog != nullptr) guard = options_.catalog->MutationGuard();
  {
    std::unique_lock<std::shared_mutex> lock(session->mu);
    auto old = session->named_text.find(name);
    const uint64_t old_bytes =
        old != session->named_text.end() ? old->second.size() : 0;
    if (query_text.size() > old_bytes) {
      OOCQ_RETURN_IF_ERROR(
          ChargeResident(*session, query_text.size() - old_bytes));
    } else {
      ReleaseResident(*session, old_bytes - query_text.size());
    }
    session->named.insert_or_assign(name, std::move(query));
    session->named_text.insert_or_assign(name, query_text);
  }
  persist::Record record;
  record.type = persist::RecordType::kDefineQuery;
  record.session_id = session_id;
  record.name = name;
  record.text = query_text;
  // A failed append leaves the definition live in memory; redefinition is
  // idempotent, so the client's retry converges.
  return LogMutation(std::move(record));
}

Status OocqService::LoadState(const std::string& session_id,
                              const std::string& state_text) {
  if (read_only()) return fenced() ? FencedError(term()) : ReadonlyError();
  OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        FindSession(session_id));
  OOCQ_ASSIGN_OR_RETURN(State state,
                        ParseState(&session->schema, state_text));
  std::shared_lock<std::shared_mutex> guard;
  if (options_.catalog != nullptr) guard = options_.catalog->MutationGuard();
  {
    std::unique_lock<std::shared_mutex> lock(session->mu);
    const uint64_t old_bytes =
        session->state_text.has_value() ? session->state_text->size() : 0;
    if (state_text.size() > old_bytes) {
      OOCQ_RETURN_IF_ERROR(
          ChargeResident(*session, state_text.size() - old_bytes));
    } else {
      ReleaseResident(*session, old_bytes - state_text.size());
    }
    session->state.emplace(std::move(state));
    session->state_text = state_text;
  }
  persist::Record record;
  record.type = persist::RecordType::kSetState;
  record.session_id = session_id;
  record.text = state_text;
  return LogMutation(std::move(record));
}

size_t OocqService::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::vector<std::string> OocqService::SessionIds() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;  // std::map iteration: already sorted
}

Status OocqService::ApplyReplicated(const persist::Record& record,
                                    uint64_t term) {
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("repl/apply"));
  if (term != 0) {
    const uint64_t current = term_.load(std::memory_order_acquire);
    if (term < current) {
      // The single-writer invariant's last line of defense: a record
      // shipped by a stale (pre-fence) primary never enters this WAL.
      registry_.Add("repl/rejected_records", 1);
      return Status::FailedPrecondition(
          "fenced record: shipped under term " + std::to_string(term) +
          " but this node is at term " + std::to_string(current));
    }
    if (term > current) {
      std::lock_guard<std::mutex> lock(role_mu_);
      if (term > term_.load(std::memory_order_acquire)) {
        if (options_.catalog != nullptr) {
          OOCQ_RETURN_IF_ERROR(options_.catalog->SetTerm(term));
        }
        term_.store(term, std::memory_order_release);
      }
    }
  }
  // Same discipline as a client mutation: in-memory commit and the WAL
  // append of this node's own catalog happen under one shared hold of
  // the gate, so the local snapshotter can never cut between them —
  // replay==acked holds on the follower exactly as on the primary.
  std::shared_lock<std::shared_mutex> guard;
  if (options_.catalog != nullptr) guard = options_.catalog->MutationGuard();
  OOCQ_RETURN_IF_ERROR(ApplyRecord(record));
  registry_.Add("repl/applied_records", 1);
  return LogMutation(record);
}

Status OocqService::Promote(uint64_t min_term) {
  std::lock_guard<std::mutex> lock(role_mu_);
  if (!read_only_.load(std::memory_order_relaxed)) return Status::Ok();
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("repl/promote"));
  // Claim write authority under a fresh term, durably, *before* the
  // readonly gate opens: the first acked write must already be covered
  // by a term that survives restart.
  const uint64_t next =
      std::max(term_.load(std::memory_order_acquire) + 1, min_term);
  if (options_.catalog != nullptr) {
    OOCQ_RETURN_IF_ERROR(options_.catalog->SetTerm(next));
  }
  term_.store(next, std::memory_order_release);
  fenced_.store(false, std::memory_order_relaxed);
  read_only_.store(false, std::memory_order_relaxed);
  registry_.Add("repl/promotions", 1);
  OOCQ_LOG(Info, "repl")
      .Msg("promoted to primary; accepting writes")
      .With("term", next);
  return Status::Ok();
}

Status OocqService::Demote(uint64_t observed_term,
                           const std::string& new_primary) {
  std::function<void(uint64_t, const std::string&)> handler;
  uint64_t adopted = 0;
  {
    std::lock_guard<std::mutex> lock(role_mu_);
    const uint64_t current = term_.load(std::memory_order_acquire);
    if (observed_term < current) {
      return Status::FailedPrecondition(
          "stale term: demotion names term " + std::to_string(observed_term) +
          " but this node is at term " + std::to_string(current));
    }
    const bool was_primary = !read_only_.load(std::memory_order_relaxed);
    if (was_primary && observed_term == current && new_primary.empty()) {
      // A tied demotion must name the winner: otherwise two dueling
      // primaries at the same term could demote each other and leave
      // no writer at all.
      return Status::FailedPrecondition(
          "refusing tied demotion at term " + std::to_string(current) +
          " without a named successor");
    }
    if (observed_term > current) {
      if (options_.catalog != nullptr) {
        OOCQ_RETURN_IF_ERROR(options_.catalog->SetTerm(observed_term));
      }
      term_.store(observed_term, std::memory_order_release);
    }
    adopted = term_.load(std::memory_order_acquire);
    if (!was_primary) return Status::Ok();  // follower: term adopted, done
    OOCQ_RETURN_IF_ERROR(Failpoints::Check("repl/fence"));
    fenced_.store(true, std::memory_order_relaxed);
    read_only_.store(true, std::memory_order_relaxed);
    registry_.Add("repl/demotions", 1);
    OOCQ_LOG(Info, "repl")
        .Msg("fenced: stepping down to follower")
        .With("term", adopted)
        .With("new_primary", new_primary.empty() ? "<unknown>" : new_primary);
  }
  {
    std::lock_guard<std::mutex> lock(repl_probe_mu_);
    handler = demotion_handler_;
  }
  // Invoked outside every service lock: the handler typically starts a
  // follower tail (which will call back into this service).
  if (handler) handler(adopted, new_primary);
  return Status::Ok();
}

void OocqService::SetReplicationProbe(
    std::function<ReplicationHealth()> probe) {
  std::lock_guard<std::mutex> lock(repl_probe_mu_);
  repl_probe_ = std::move(probe);
}

void OocqService::SetDemotionHandler(
    std::function<void(uint64_t, const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(repl_probe_mu_);
  demotion_handler_ = std::move(handler);
}

Status OocqService::LogMutation(persist::Record record) {
  if (options_.catalog == nullptr) return Status::Ok();
  Status logged = options_.catalog->Log(record);
  if (!logged.ok()) registry_.Add("persist/log_failures", 1);
  return logged;
}

Status OocqService::ApplyRecord(const persist::Record& record) {
  switch (record.type) {
    case persist::RecordType::kCreateSession: {
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        // Idempotent: a crash between snapshot rename and WAL reset makes
        // the WAL replay records the snapshot already holds.
        if (sessions_.count(record.session_id) != 0) return Status::Ok();
      }
      OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            MakeSession(record.text));
      OOCQ_RETURN_IF_ERROR(ChargeResident(*session, record.text.size()));
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.emplace(record.session_id, std::move(session));
      // Persisted ids are never reused: "s<N>" bumps the counter past N.
      if (record.session_id.size() > 1 && record.session_id[0] == 's') {
        const std::string digits = record.session_id.substr(1);
        if (std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
              return std::isdigit(c) != 0;
            })) {
          uint64_t n = std::strtoull(digits.c_str(), nullptr, 10);
          next_session_ = std::max(next_session_, n + 1);
        }
      }
      return Status::Ok();
    }
    case persist::RecordType::kDefineQuery: {
      OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            FindSession(record.session_id));
      OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                            ParseQuery(session->schema, record.text));
      std::unique_lock<std::shared_mutex> lock(session->mu);
      auto old = session->named_text.find(record.name);
      const uint64_t old_bytes =
          old != session->named_text.end() ? old->second.size() : 0;
      if (record.text.size() > old_bytes) {
        OOCQ_RETURN_IF_ERROR(
            ChargeResident(*session, record.text.size() - old_bytes));
      } else {
        ReleaseResident(*session, old_bytes - record.text.size());
      }
      session->named.insert_or_assign(record.name, std::move(query));
      session->named_text.insert_or_assign(record.name, record.text);
      return Status::Ok();
    }
    case persist::RecordType::kSetState: {
      OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            FindSession(record.session_id));
      OOCQ_ASSIGN_OR_RETURN(State state,
                            ParseState(&session->schema, record.text));
      std::unique_lock<std::shared_mutex> lock(session->mu);
      const uint64_t old_bytes =
          session->state_text.has_value() ? session->state_text->size() : 0;
      if (record.text.size() > old_bytes) {
        OOCQ_RETURN_IF_ERROR(
            ChargeResident(*session, record.text.size() - old_bytes));
      } else {
        ReleaseResident(*session, old_bytes - record.text.size());
      }
      session->state.emplace(std::move(state));
      session->state_text = record.text;
      return Status::Ok();
    }
    case persist::RecordType::kDropSession: {
      std::shared_ptr<Session> dropped;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        auto it = sessions_.find(record.session_id);
        if (it == sessions_.end()) return Status::Ok();  // already gone
        dropped = it->second;
        sessions_.erase(it);
      }
      ReleaseResident(*dropped, dropped->resident_bytes);
      return Status::Ok();
    }
    case persist::RecordType::kCacheEntry: {
      OOCQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            FindSession(record.session_id));
      std::shared_lock<std::shared_mutex> lock(session->mu);
      if (session->cache != nullptr) {
        session->cache->Preload(record.text, record.verdict);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown record type");
}

void OocqService::RestoreFromCatalog() {
  size_t sessions_before;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_before = sessions_.size();
  }
  size_t applied = 0;
  size_t skipped = 0;
  size_t cache_entries = 0;
  for (const persist::Record& record : options_.catalog->recovered()) {
    // A record that no longer parses (hand-edited file, removed feature)
    // is skipped and counted — recovery always completes.
    if (ApplyRecord(record).ok()) {
      ++applied;
      if (record.type == persist::RecordType::kCacheEntry) ++cache_entries;
    } else {
      ++skipped;
    }
  }
  registry_.Add("persist/restored_records", applied);
  registry_.Add("persist/restored_cache_entries", cache_entries);
  if (skipped != 0) registry_.Add("persist/restore_skipped", skipped);
  size_t restored;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    restored = sessions_.size() - sessions_before;
  }
  registry_.Add("server/sessions_restored", restored);
}

std::vector<persist::Record> OocqService::DumpCatalog() {
  std::vector<persist::Record> records;
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.assign(sessions_.begin(), sessions_.end());
  }
  size_t cache_budget = options_.catalog != nullptr
                            ? options_.catalog->options().max_cache_entries
                            : 0;
  const bool cache_unlimited = cache_budget == 0;
  for (const auto& [id, session] : sessions) {
    std::shared_lock<std::shared_mutex> lock(session->mu);
    persist::Record create;
    create.type = persist::RecordType::kCreateSession;
    create.session_id = id;
    create.text = session->schema_text;
    records.push_back(std::move(create));
    for (const auto& [name, text] : session->named_text) {
      persist::Record define;
      define.type = persist::RecordType::kDefineQuery;
      define.session_id = id;
      define.name = name;
      define.text = text;
      records.push_back(std::move(define));
    }
    if (session->state_text.has_value()) {
      persist::Record state;
      state.type = persist::RecordType::kSetState;
      state.session_id = id;
      state.text = *session->state_text;
      records.push_back(std::move(state));
    }
    if (session->cache != nullptr && (cache_unlimited || cache_budget > 0)) {
      // Only decided verdicts are exported; errors (deadline expiry
      // included) are never memoized, so they can never be persisted.
      for (auto& [key, verdict] :
           session->cache->Export(cache_unlimited ? 0 : cache_budget)) {
        persist::Record entry;
        entry.type = persist::RecordType::kCacheEntry;
        entry.session_id = id;
        entry.text = std::move(key);
        entry.verdict = verdict;
        records.push_back(std::move(entry));
        if (!cache_unlimited) --cache_budget;
      }
    }
  }
  return records;
}

Status OocqService::AdmitOne() {
  if (draining_.load(std::memory_order_relaxed)) {
    registry_.Add("server/shed", 1);
    return Status::Unavailable("server draining; retry elsewhere");
  }
  const uint32_t limit = options_.max_in_flight + options_.max_queue_depth;
  if (pending_.fetch_add(1, std::memory_order_acq_rel) >= limit) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    registry_.Add("server/shed", 1);
    return Status::Unavailable("admission queue full; retry with backoff");
  }
  return Status::Ok();
}

void OocqService::FinishOne() {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

Status OocqService::ChargeResident(Session& session, uint64_t bytes) {
  if (bytes == 0 || !budget_.has_value()) return Status::Ok();
  Status charged = budget_->ChargeResidentBytes(bytes);
  if (!charged.ok()) {
    registry_.Add("server/budget_exhausted", 1);
    return charged;
  }
  session.resident_bytes += bytes;
  return Status::Ok();
}

void OocqService::ReleaseResident(Session& session, uint64_t bytes) {
  if (bytes == 0 || !budget_.has_value()) return;
  bytes = std::min<uint64_t>(bytes, session.resident_bytes);
  budget_->ReleaseResidentBytes(bytes);
  session.resident_bytes -= bytes;
}

ServiceHealth OocqService::CollectHealth() const {
  ServiceHealth health;
  health.pending = pending();
  health.completed = completed();
  health.draining = draining();
  health.sessions = session_count();
  if (const ResourceBudget* b = budget()) {
    const ResourceLimits& limits = b->limits();
    health.has_budget = true;
    health.resident_bytes = b->resident_bytes();
    health.max_resident_bytes = limits.max_resident_bytes;
    health.work_units = b->work_units_charged();
    health.max_work_units = limits.max_subset_work_units;
    health.disjuncts = b->disjuncts_charged();
    health.max_disjuncts = limits.max_expanded_disjuncts;
    health.exhausted = b->exhausted_count();
  }
  {
    std::lock_guard<std::mutex> lock(repl_probe_mu_);
    if (repl_probe_) health.repl = repl_probe_();
  }
  if (!health.repl.present) {
    // Primary side: once a subscriber has connected (the protocol layer
    // counts repl/subscribes), ship-side telemetry joins the snapshot.
    // A never-replicated server keeps its pre-replication HEALTH/STATS
    // output byte-compatible.
    if (registry_.CounterValue("repl/subscribes") > 0) {
      health.repl.present = true;
      health.repl.role = "primary";
      health.repl.connected = true;
      // Counter names avoid the exact gauge names StatsText() emits, so
      // the exposition never carries two samples of one metric.
      health.repl.shipped_bytes = registry_.CounterValue("repl/ship_bytes");
      if (options_.catalog != nullptr &&
          options_.catalog->wal() != nullptr) {
        health.repl.epoch = options_.catalog->wal()->epoch();
      }
    }
  }
  if (health.repl.present && health.repl.term == 0) {
    health.repl.term = term();
  }
  return health;
}

std::string OocqService::StatsText() const {
  std::string out = PrometheusString(registry_.Snap());
  const ServiceHealth health = CollectHealth();
  auto gauge = [&out](const char* name, uint64_t value) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  gauge("oocq_server_pending", health.pending);
  gauge("oocq_server_completed_total", health.completed);
  gauge("oocq_server_draining", health.draining ? 1 : 0);
  gauge("oocq_server_sessions", health.sessions);
  if (health.has_budget) {
    gauge("oocq_budget_resident_bytes", health.resident_bytes);
    gauge("oocq_budget_resident_bytes_limit", health.max_resident_bytes);
    gauge("oocq_budget_work_units", health.work_units);
    gauge("oocq_budget_work_units_limit", health.max_work_units);
    gauge("oocq_budget_disjuncts", health.disjuncts);
    gauge("oocq_budget_disjuncts_limit", health.max_disjuncts);
    gauge("oocq_budget_exhausted_total", health.exhausted);
  }
  if (health.repl.present) {
    // The replication satellite gauges (docs/replication.md#telemetry):
    // lag in records behind the primary's durable tip, and frame bytes
    // shipped to subscribers. Both sides emit both names so dashboards
    // need one query regardless of role.
    gauge("oocq_repl_lag_records", health.repl.lag_records);
    gauge("oocq_repl_shipped_bytes", health.repl.shipped_bytes);
    gauge("oocq_repl_connected", health.repl.connected ? 1 : 0);
    gauge("oocq_repl_epoch", health.repl.epoch);
    gauge("oocq_repl_term", health.repl.term);
  }
  return out;
}

void OocqService::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

namespace {

/// Resolution + pipeline helpers shared by the request kinds. They all
/// take the session under its shared lock (held by the caller).

StatusOr<ConjunctiveQuery> ResolveQuery(
    const OocqService& /*service*/, const Schema& schema,
    const std::map<std::string, ConjunctiveQuery>& named,
    const std::string& text) {
  if (!text.empty() && text[0] == '@') {
    auto it = named.find(text.substr(1));
    if (it == named.end()) {
      return Status::NotFound("no registered query '" + text.substr(1) + "'");
    }
    return it->second;
  }
  return ParseQuery(schema, text);
}

/// Expands an arbitrary conjunctive query to its union of terminal
/// queries — the normal form every decision kind works on.
StatusOr<UnionQuery> ExpandForRequest(const Schema& schema,
                                      const ConjunctiveQuery& query,
                                      const EngineOptions& opts) {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery well_formed,
                        NormalizeToWellFormed(schema, query));
  return ExpandToTerminalQueries(schema, well_formed, opts.expansion);
}

/// The QueryOptimizer::IsContained decision with the *session's* shared
/// cache: expand both sides, use the exact single-disjunct path when N is
/// one terminal query, else Thm 4.1.
StatusOr<bool> ContainedViaPipeline(const Schema& schema,
                                    const ConjunctiveQuery& q1,
                                    const ConjunctiveQuery& q2,
                                    const EngineOptions& opts,
                                    ContainmentCache* cache) {
  OOCQ_ASSIGN_OR_RETURN(UnionQuery m, ExpandForRequest(schema, q1, opts));
  OOCQ_ASSIGN_OR_RETURN(UnionQuery n, ExpandForRequest(schema, q2, opts));
  if (n.disjuncts.size() == 1) {
    for (const ConjunctiveQuery& qi : m.disjuncts) {
      OOCQ_ASSIGN_OR_RETURN(
          bool contained,
          cache != nullptr
              ? cache->Contained(qi, n.disjuncts[0], nullptr,
                                 opts.containment.cancel,
                                 opts.containment.budget)
              : Contained(schema, qi, n.disjuncts[0], opts.containment));
      if (!contained) return false;
    }
    return true;
  }
  if (n.disjuncts.empty()) return m.disjuncts.empty();
  return UnionContained(schema, m, n, opts.containment, nullptr, cache);
}

}  // namespace

Response OocqService::Run(const Request& request, Session& session,
                          const CancellationToken* cancel) const {
  Response response;
  if (Status chaos = Failpoints::Check("service/execute"); !chaos.ok()) {
    response.status = std::move(chaos);
    return response;
  }
  // Engine options for this request: session-wide knobs plus this
  // request's cancellation token on every containment path.
  EngineOptions opts = WithPropagatedParallelism(options_.engine);
  opts.containment.cancel = cancel;
  // The per-run cache below is the session's, not a fresh one.
  opts.cache.enabled = false;
  // Per-request budget (engine.limits) chained under the service-wide one,
  // so both the per-request and the aggregate ceilings hold; the work it
  // charged is returned to the service budget when this request finishes.
  std::optional<ResourceBudget> request_budget;
  if (opts.limits.AnySet() || budget_.has_value()) {
    request_budget.emplace(opts.limits,
                           budget_.has_value() ? &*budget_ : nullptr);
    opts.containment.budget = &*request_budget;
    opts.expansion.budget = &*request_budget;
  }

  std::shared_lock<std::shared_mutex> lock(session.mu);
  const Schema& schema = session.schema;
  ContainmentCache* cache = session.cache.get();

  auto resolve = [&](const std::string& text) {
    return ResolveQuery(*this, schema, session.named, text);
  };

  switch (request.kind) {
    case RequestKind::kMinimize: {
      StatusOr<ConjunctiveQuery> query = resolve(request.query);
      if (!query.ok()) {
        response.status = query.status();
        return response;
      }
      StatusOr<ConjunctiveQuery> well_formed =
          NormalizeToWellFormed(schema, *query);
      if (!well_formed.ok()) {
        response.status = well_formed.status();
        return response;
      }
      UnionQuery minimized;
      bool exact = false;
      if (well_formed->IsPositive()) {
        StatusOr<MinimizationReport> report =
            MinimizePositiveQuery(schema, *well_formed, opts, cache);
        if (!report.ok()) {
          response.status = report.status();
          return response;
        }
        minimized = std::move(report->minimized);
        exact = true;
      } else {
        StatusOr<GeneralMinimizationReport> report =
            MinimizeConjunctiveQuery(schema, *well_formed, opts, cache);
        if (!report.ok()) {
          response.status = report.status();
          return response;
        }
        minimized = std::move(report->minimized);
      }
      response.verdict = exact;
      response.body = UnionQueryToString(schema, minimized);
      return response;
    }
    case RequestKind::kContained:
    case RequestKind::kEquivalent: {
      StatusOr<ConjunctiveQuery> q1 = resolve(request.query);
      StatusOr<ConjunctiveQuery> q2 = resolve(request.query2);
      if (!q1.ok() || !q2.ok()) {
        response.status = !q1.ok() ? q1.status() : q2.status();
        return response;
      }
      StatusOr<bool> forward =
          ContainedViaPipeline(schema, *q1, *q2, opts, cache);
      if (!forward.ok()) {
        response.status = forward.status();
        return response;
      }
      if (request.kind == RequestKind::kContained || !*forward) {
        response.verdict = *forward;
        return response;
      }
      StatusOr<bool> backward =
          ContainedViaPipeline(schema, *q2, *q1, opts, cache);
      if (!backward.ok()) {
        response.status = backward.status();
        return response;
      }
      response.verdict = *backward;
      return response;
    }
    case RequestKind::kUnionContained: {
      UnionQuery m, n;
      for (const auto* side : {&request.union_m, &request.union_n}) {
        UnionQuery& out = side == &request.union_m ? m : n;
        for (const std::string& text : *side) {
          StatusOr<ConjunctiveQuery> q = resolve(text);
          if (!q.ok()) {
            response.status = q.status();
            return response;
          }
          StatusOr<UnionQuery> expanded = ExpandForRequest(schema, *q, opts);
          if (!expanded.ok()) {
            response.status = expanded.status();
            return response;
          }
          for (ConjunctiveQuery& d : expanded->disjuncts) {
            out.disjuncts.push_back(std::move(d));
          }
        }
      }
      StatusOr<bool> verdict =
          UnionContained(schema, m, n, opts.containment, nullptr, cache);
      if (!verdict.ok()) {
        response.status = verdict.status();
        return response;
      }
      response.verdict = *verdict;
      return response;
    }
    case RequestKind::kSatisfiable: {
      StatusOr<ConjunctiveQuery> query = resolve(request.query);
      if (!query.ok()) {
        response.status = query.status();
        return response;
      }
      StatusOr<ConjunctiveQuery> well_formed =
          NormalizeToWellFormed(schema, *query);
      if (!well_formed.ok()) {
        response.status = well_formed.status();
        return response;
      }
      if (!well_formed->IsTerminal(schema)) {
        response.status = Status::FailedPrecondition(
            "satisfiable requires a terminal query; minimize first");
        return response;
      }
      SatisfiabilityResult result = CheckSatisfiable(schema, *well_formed);
      response.verdict = result.satisfiable;
      if (!result.satisfiable) response.body = result.reason;
      return response;
    }
    case RequestKind::kEvaluate: {
      if (!session.state.has_value()) {
        response.status = Status::FailedPrecondition(
            "session has no state loaded; send one first");
        return response;
      }
      StatusOr<ConjunctiveQuery> query = resolve(request.query);
      if (!query.ok()) {
        response.status = query.status();
        return response;
      }
      StatusOr<ConjunctiveQuery> well_formed =
          NormalizeToWellFormed(schema, *query);
      if (!well_formed.ok()) {
        response.status = well_formed.status();
        return response;
      }
      EvalOptions eval_options;
      eval_options.cancel = cancel;
      eval_options.enable_compilation = opts.enable_compilation;
      if (eval_options.enable_compilation && session.programs != nullptr) {
        eval_options.program =
            session.programs->GetOrCompile(schema, *well_formed);
        // The cache memoized a structural compile failure: skip the
        // per-request recompile attempt and go straight to the walker.
        if (eval_options.program == nullptr) {
          eval_options.enable_compilation = false;
        }
      }
      StatusOr<std::vector<Oid>> answers =
          Evaluate(*session.state, *well_formed, eval_options);
      if (!answers.ok()) {
        response.status = answers.status();
        return response;
      }
      response.verdict = !answers->empty();
      for (Oid oid : *answers) {
        response.body += session.state->DebugString(oid);
        response.body += '\n';
      }
      return response;
    }
    case RequestKind::kExplain: {
      StatusOr<ConjunctiveQuery> q1 = resolve(request.query);
      StatusOr<ConjunctiveQuery> q2 = resolve(request.query2);
      if (!q1.ok() || !q2.ok()) {
        response.status = !q1.ok() ? q1.status() : q2.status();
        return response;
      }
      StatusOr<ContainmentExplanation> explanation =
          ExplainContainment(schema, *q1, *q2, opts.containment);
      if (!explanation.ok()) {
        response.status = explanation.status();
        return response;
      }
      response.verdict = explanation->contained;
      response.body = explanation->text;
      return response;
    }
  }
  response.status = Status::Internal("unhandled request kind");
  return response;
}

Response OocqService::Execute(const Request& request) {
  const uint64_t admitted_us = NowUs();
  requests_total_->Add(1);
  Response response;

  Status admitted = AdmitOne();
  if (!admitted.ok()) {
    response.status = std::move(admitted);
    response.latency_us = NowUs() - admitted_us;
    return response;
  }

  StatusOr<std::shared_ptr<Session>> session = FindSession(request.session_id);
  if (!session.ok()) {
    FinishOne();
    response.status = session.status();
    response.latency_us = NowUs() - admitted_us;
    return response;
  }

  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  std::optional<CancellationToken> token;
  if (deadline_ms != 0) {
    token.emplace(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms));
  }
  const CancellationToken* cancel = token.has_value() ? &*token : nullptr;

  std::future<void> done = pool_->Submit([&] {
    queue_wait_us_->Record(NowUs() - admitted_us);
    // Slow-request diagnostics: capture this thread's span tree so a
    // request over the threshold can be logged with its full breakdown
    // (engine phases, WAL appends) even when no TraceSession is active.
    std::optional<ThreadSpanCapture> capture;
    if (options_.slow_request_us != 0) capture.emplace();
    {
      OOCQ_TRACE_SPAN(span, "Request");
      span.Arg("kind", RequestKindName(request.kind));
      if (!request.request_id.empty()) span.Arg("id", request.request_id);
      started_total_->Add(1);
      // A request that out-waited its deadline in the queue is answered
      // without touching the engine.
      Status live = cancel != nullptr ? cancel->Check() : Status::Ok();
      if (!live.ok()) {
        response.status = std::move(live);
      } else {
        response = Run(request, **session, cancel);
      }
      if (span.recording()) {
        span.Arg("status", StatusCodeToString(response.status.code()));
      }
    }
    if (capture.has_value()) {
      const uint64_t elapsed_us = NowUs() - admitted_us;
      if (elapsed_us >= options_.slow_request_us) {
        registry_.Add("server/slow_requests", 1);
        OOCQ_LOG(Warn, "server")
            .Msg("slow request")
            .With("kind", RequestKindName(request.kind))
            .With("id", request.request_id)
            .With("session", request.session_id)
            .With("status", StatusCodeToString(response.status.code()))
            .With("latency_us", elapsed_us)
            .With("spans", capture->Render());
      }
    }
  });
  done.wait();
  FinishOne();

  response.latency_us = NowUs() - admitted_us;
  latency_us_->Record(response.latency_us);
  verb_latency_us_[static_cast<int>(request.kind)]->Record(
      response.latency_us);
  CountOutcome(registry_, response.status);
  return response;
}

std::vector<Response> OocqService::ExecuteBatch(
    const std::vector<Request>& requests) {
  registry_.Add("server/batches", 1);
  // Each request is admitted and submitted independently; the pool is the
  // fan-out. Blocking here on all futures keeps the caller's thread as
  // the single completion point, so responses come back in order.
  std::vector<Response> responses(requests.size());
  struct Pending {
    size_t index = 0;
    std::shared_ptr<Session> session;
    std::optional<CancellationToken> token;  // address-stable: heap slot
    std::future<void> done;
    uint64_t admitted_us = 0;
  };
  std::vector<std::unique_ptr<Pending>> pending;
  pending.reserve(requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    const uint64_t admitted_us = NowUs();
    requests_total_->Add(1);
    Status admitted = AdmitOne();
    if (!admitted.ok()) {
      responses[i].status = std::move(admitted);
      continue;
    }
    StatusOr<std::shared_ptr<Session>> session =
        FindSession(request.session_id);
    if (!session.ok()) {
      FinishOne();
      responses[i].status = session.status();
      continue;
    }
    auto p = std::make_unique<Pending>();
    p->index = i;
    p->session = *std::move(session);
    p->admitted_us = admitted_us;
    const uint64_t deadline_ms = request.deadline_ms != 0
                                     ? request.deadline_ms
                                     : options_.default_deadline_ms;
    if (deadline_ms != 0) {
      p->token.emplace(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms));
    }
    const CancellationToken* cancel =
        p->token.has_value() ? &*p->token : nullptr;
    Response* out = &responses[i];
    Session* sess = p->session.get();
    p->done = pool_->Submit([this, &request, out, sess, cancel] {
      OOCQ_TRACE_SPAN(span, "Request");
      span.Arg("kind", RequestKindName(request.kind)).Arg("batch", "true");
      if (!request.request_id.empty()) span.Arg("id", request.request_id);
      started_total_->Add(1);
      Status live = cancel != nullptr ? cancel->Check() : Status::Ok();
      if (!live.ok()) {
        out->status = std::move(live);
      } else {
        *out = Run(request, *sess, cancel);
      }
      if (span.recording()) {
        span.Arg("status", StatusCodeToString(out->status.code()));
      }
    });
    pending.push_back(std::move(p));
  }

  for (std::unique_ptr<Pending>& p : pending) {
    p->done.wait();
    FinishOne();
    responses[p->index].latency_us = NowUs() - p->admitted_us;
    latency_us_->Record(responses[p->index].latency_us);
    verb_latency_us_[static_cast<int>(requests[p->index].kind)]->Record(
        responses[p->index].latency_us);
    CountOutcome(registry_, responses[p->index].status);
  }
  return responses;
}

}  // namespace oocq::server
