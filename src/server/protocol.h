#ifndef OOCQ_SERVER_PROTOCOL_H_
#define OOCQ_SERVER_PROTOCOL_H_

/// The line/payload wire protocol of oocq_serve, factored out of the TCP
/// transport so it is testable (and smokable) without sockets.
///
/// Framing (docs/server.md has the full grammar):
///
///   request  := command-line "\n" [ payload ]
///   payload  := (line "\n")* "." "\n"          -- for payload verbs only
///   response := status-line "\n" (line "\n")* "." "\n"
///
/// A command line is a verb plus space-separated arguments; `key=value`
/// arguments become parameters (deadline_ms=50, id=req-7). Whether a verb
/// reads a payload is static (VerbHasPayload), so the transport can frame
/// without understanding the command. Every response ends with a lone "."
/// line, so clients frame responses the same way.
///
/// Status lines: "OK key=value ..." on success, "ERR <CODE> <message>" on
/// failure; CODE is the StatusCodeToString name, and DEADLINE_EXCEEDED /
/// UNAVAILABLE are the retryable pair (support/status.h).
#include <string>
#include <vector>

#include "server/service.h"

namespace oocq::server {

/// A parsed command line: verb, positional args, key=value params.
struct CommandLine {
  std::string verb;                 // upper-cased
  std::vector<std::string> args;    // positional, in order
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Param(const std::string& key) const;
};

CommandLine ParseCommandLine(const std::string& line);

/// True when `verb` (upper-case) is followed by a "."-terminated payload.
bool VerbHasPayload(const std::string& verb);

/// One protocol exchange, rendered ready-to-send (terminating ".\n"
/// included). `close` is set by QUIT.
struct ProtocolReply {
  std::string text;
  bool close = false;
};

/// Executes one parsed request against `service` and renders the reply.
/// Never throws and never returns an unterminated reply — protocol
/// errors become ERR status lines.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(OocqService* service) : service_(service) {}

  ProtocolReply Handle(const CommandLine& command,
                       const std::vector<std::string>& payload);

 private:
  OocqService* service_;
};

}  // namespace oocq::server

#endif  // OOCQ_SERVER_PROTOCOL_H_
