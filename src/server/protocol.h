#ifndef OOCQ_SERVER_PROTOCOL_H_
#define OOCQ_SERVER_PROTOCOL_H_

/// The line/payload wire protocol of oocq_serve, factored out of the TCP
/// transport so it is testable (and smokable) without sockets.
///
/// Framing (docs/server.md has the full grammar):
///
///   request  := command-line "\n" [ payload ]
///   payload  := (line "\n")* "." "\n"          -- for payload verbs only
///   response := status-line "\n" (line "\n")* "." "\n"
///
/// A command line is a verb plus space-separated arguments; `key=value`
/// arguments become parameters (deadline_ms=50, id=req-7). Whether a verb
/// reads a payload is static (VerbHasPayload), so the transport can frame
/// without understanding the command. Every response ends with a lone "."
/// line, so clients frame responses the same way.
///
/// Status lines: "OK key=value ..." on success, "ERR <CODE> <message>" on
/// failure; CODE is the StatusCodeToString name, and DEADLINE_EXCEEDED /
/// UNAVAILABLE are the retryable pair (support/status.h).
#include <cstddef>
#include <string>
#include <vector>

#include "server/service.h"

namespace oocq::server {

/// The protocol revision this server speaks; negotiated by HELLO
/// (docs/server.md). Bump only for incompatible framing changes — new
/// verbs are discoverable through the HELLO capability list instead.
inline constexpr int kProtocolVersion = 1;

/// A single protocol line (command or payload) may not exceed this many
/// bytes; a client that streams more without a newline is a framing
/// violation and is dropped rather than allowed to grow the connection's
/// buffer without bound.
inline constexpr size_t kMaxLineBytes = 1 << 20;

/// A parsed command line: verb, positional args, key=value params, and
/// the optional wire-propagated request id (docs/observability.md#ids).
struct CommandLine {
  std::string verb;                 // upper-cased
  std::vector<std::string> args;    // positional, in order
  std::vector<std::pair<std::string, std::string>> params;
  /// From the `ID <token>` prefix: `ID r7 CONTAIN s1` parses as verb
  /// CONTAIN with request_id "r7". Echoed on the reply status line
  /// (`OK id=r7 ...` / `ERR CODE id=r7 ...`) and threaded as the `id`
  /// annotation through every span the request touches, so one token
  /// links socket read → queue → engine → WAL → reply in a trace export.
  std::string request_id;

  const std::string* Param(const std::string& key) const;
};

CommandLine ParseCommandLine(const std::string& line);

/// True when `verb` (upper-case) is followed by a "."-terminated payload.
bool VerbHasPayload(const std::string& verb);

/// Incremental framing state machine for the request side of the wire
/// protocol, shared by every transport: raw bytes go in via Feed() (from
/// a blocking read or an epoll readiness callback — the handler does not
/// care), complete request frames come out of Next() with the payload
/// already dot-unstuffed. Frame state survives across Feed() calls, so a
/// request split over arbitrarily many TCP segments parses identically
/// to one delivered whole.
class ConnectionHandler {
 public:
  enum class FrameResult {
    kRequest,   // *command / *payload hold one complete request
    kNeedMore,  // no complete frame buffered; Feed() more bytes
    kViolation, // framing abuse (line over kMaxLineBytes); drop the conn
  };

  /// Appends raw bytes received from the peer.
  void Feed(const char* data, size_t size) { buffer_.append(data, size); }

  /// Extracts the next complete request. Blank lines between requests
  /// are skipped; a payload-verb frame is complete only once its "."
  /// terminator arrived. kViolation is sticky: the connection is beyond
  /// recovery and must be dropped.
  FrameResult Next(CommandLine* command, std::vector<std::string>* payload);

  /// Bytes buffered but not yet returned as a frame (read backpressure
  /// accounting for event-driven transports).
  size_t buffered_bytes() const { return buffer_.size(); }

  /// True while the handler is mid-payload — an EOF now is a truncated
  /// frame, not a clean close.
  bool mid_frame() const { return in_payload_; }

 private:
  /// Pops one "\n"-terminated line (terminator stripped, trailing "\r"
  /// dropped for telnet clients). False with *violation unset = need
  /// more bytes; false with *violation set = line over kMaxLineBytes.
  bool NextLine(std::string* line, bool* violation);

  std::string buffer_;
  size_t scan_from_ = 0;
  bool in_payload_ = false;
  bool violated_ = false;
  CommandLine pending_command_;
  std::vector<std::string> pending_payload_;
};

/// One protocol exchange, rendered ready-to-send (terminating ".\n"
/// included). `close` is set by QUIT.
struct ProtocolReply {
  std::string text;
  bool close = false;
};

/// Executes one parsed request against `service` and renders the reply.
/// Never throws and never returns an unterminated reply — protocol
/// errors become ERR status lines.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(OocqService* service) : service_(service) {}

  ProtocolReply Handle(const CommandLine& command,
                       const std::vector<std::string>& payload);

 private:
  /// Handle() minus the cross-cutting request-id plumbing: the wrapper
  /// opens the HandleRequest span, runs this, and tags the reply.
  ProtocolReply HandleInner(const CommandLine& command,
                            const std::vector<std::string>& payload);

  /// The REPL verb family — WAL shipping and promotion
  /// (docs/replication.md): SUBSCRIBE (long-poll a batch of durable WAL
  /// frames), STATE (positioned full dump for resync), STATUS
  /// (role/position introspection), PROMOTE (clear the readonly gate).
  ProtocolReply HandleRepl(const CommandLine& command);

  OocqService* service_;
};

}  // namespace oocq::server

#endif  // OOCQ_SERVER_PROTOCOL_H_
