#ifndef OOCQ_SERVER_TRANSPORT_H_
#define OOCQ_SERVER_TRANSPORT_H_

/// The transport seam of the server subsystem: every front end that puts
/// the line protocol (server/protocol.h) on a socket implements this
/// interface, so callers — oocq_serve, the e2e tests, the load
/// generator — pick a transport without caring how connections are
/// scheduled.
///
/// Two implementations ship:
///
///  * `TcpServer` (server/tcp_server.h) — one thread per connection.
///    The reference implementation: simple, blocking reads, scales with
///    OS threads.
///  * `EventServer` (server/event_server.h) — a single epoll readiness
///    loop owning per-connection state machines, dispatching parsed
///    requests onto a worker pool. Scales with sockets.
///
/// Contract (both implementations, pinned by the parameterized e2e
/// tests):
///
///  * Start() binds, listens and begins accepting; port() then reports
///    the resolved port (options.port == 0 picks an ephemeral one).
///  * One `ProtocolHandler` request/reply exchange at a time per
///    connection, replies in request order (clients may pipeline).
///  * A framing violation (oversized line, EOF mid-payload) drops that
///    connection and only that connection.
///  * Stop() is graceful and idempotent: the listener closes, requests
///    already received still get their responses written, then the
///    wrapped OocqService drains. Safe to call from a signal-handling
///    thread.
///  * The `tcp/accept`, `tcp/read` and `tcp/write` failpoints
///    (support/failpoint.h) are honored at the equivalent sites.
#include <cstdint>

#include "support/status.h"

namespace oocq::server {

/// Options every transport shares; transport-specific option structs
/// (TcpServerOptions, EventServerOptions) extend this base.
struct TransportOptions {
  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Bind only the loopback interface (the safe default for a local
  /// decision-procedure service); false binds all interfaces.
  bool loopback_only = true;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds, listens and starts serving. Fails (kInternal) if the port is
  /// taken or sockets are unavailable.
  virtual Status Start() = 0;

  /// Graceful shutdown; see the contract above. Idempotent.
  virtual void Stop() = 0;

  /// The bound port (resolved when options.port == 0). 0 before Start().
  virtual uint16_t port() const = 0;
  virtual bool running() const = 0;
  /// Connections accepted over the transport's lifetime.
  virtual uint64_t connections_accepted() const = 0;
};

/// Opens a listening IPv4 socket per `options` (SOMAXCONN backlog,
/// SO_REUSEADDR, optionally non-blocking), returning the fd and writing
/// the resolved port to *port. Shared by both transports.
StatusOr<int> OpenListener(const TransportOptions& options, bool nonblocking,
                           uint16_t* port);

}  // namespace oocq::server

#endif  // OOCQ_SERVER_TRANSPORT_H_
