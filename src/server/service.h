#ifndef OOCQ_SERVER_SERVICE_H_
#define OOCQ_SERVER_SERVICE_H_

/// The embeddable, transport-agnostic query service: schemas, states and
/// named queries are registered once into a *session* and reused across
/// requests, so the per-request cost is the decision procedure alone —
/// the deployment shape the paper's reusable per-schema containment
/// (Thm 3.1 / Cor 3.4) and minimization (Thm 4.2–4.5) services motivate.
///
///   OocqService service;
///   std::string sid = *service.CreateSession(schema_text);
///   Request request;
///   request.kind = RequestKind::kContained;
///   request.session_id = sid;
///   request.query = "{ x | x in Auto }";
///   request.query2 = "{ x | x in Vehicle }";
///   request.deadline_ms = 50;
///   Response response = service.Execute(request);   // blocking
///
/// Concurrency model: Execute() admits the request (bounded queue +
/// max-in-flight — beyond capacity it sheds immediately with retryable
/// kUnavailable), runs it on the service's support/thread_pool, and
/// blocks the calling thread until the response is ready. Transports
/// call Execute() from one thread per connection; the pool bounds the
/// engine work actually running. ExecuteBatch() fans a batch out onto
/// the same pool and returns responses in request order.
///
/// Each request gets a CancellationToken from its deadline, threaded
/// through the engine (ContainmentOptions::cancel), so expiry mid-scan
/// returns kDeadlineExceeded — never a hung request. All requests of a
/// session share one ContainmentCache; retryable errors are never
/// memoized (core/containment_cache.h).
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "compile/program_cache.h"
#include "core/containment_cache.h"
#include "core/engine_options.h"
#include "persist/catalog.h"
#include "query/query.h"
#include "schema/schema.h"
#include "state/state.h"
#include "support/cancellation.h"
#include "support/metrics.h"
#include "support/resource_budget.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace oocq::server {

struct ServiceOptions {
  /// Engine configuration applied to every request (parallel fan-out,
  /// containment limits, cache sizing). The default (serial engine) is
  /// right for a loaded server: concurrency comes from running
  /// `max_in_flight` independent requests, not from splitting one.
  EngineOptions engine;
  /// Requests executing concurrently (the service pool's worker count).
  uint32_t max_in_flight = 4;
  /// Admitted-but-not-running requests tolerated beyond max_in_flight;
  /// one more is shed with kUnavailable instead of queued.
  uint32_t max_queue_depth = 64;
  /// Deadline applied when a request carries none (0 = unbounded).
  uint64_t default_deadline_ms = 0;
  /// Collect service counters/histograms into metrics() (server/requests,
  /// server/shed, server/latency_us, …). The registry is the one the
  /// `METRICS` protocol command snapshots.
  bool metrics = true;
  /// Service-wide resource ceilings (docs/robustness.md). Work limits
  /// (disjuncts, subset work units) cap the *aggregate* of all in-flight
  /// requests; max_resident_bytes caps the catalog text (schemas, named
  /// queries, states) the service keeps registered. Per-request ceilings
  /// go in engine.limits; every request budget chains under this one.
  /// Overruns surface as retryable kResourceExhausted.
  ResourceLimits budget;
  /// A request whose admission-to-completion latency reaches this many
  /// microseconds is logged at Warn with its captured span tree
  /// (support/trace.h ThreadSpanCapture), so one slow verdict can be
  /// attributed to engine work vs. queueing vs. persistence without
  /// tracing the whole server. 0 disables the slow-request log.
  uint64_t slow_request_us = 0;
  /// Failpoint spec armed at construction ("wal/fsync=error@3,...", see
  /// support/failpoint.h). Empty arms nothing; a malformed spec is
  /// reported once to the metrics registry and ignored.
  std::string failpoints;
  /// Durable catalog (docs/persistence.md). When set, the service replays
  /// the catalog's recovered records on construction — re-registering
  /// sessions, named queries and states, and warm-starting each session's
  /// ContainmentCache — then logs every session mutation through it and
  /// registers the catalog's snapshot dump. On destruction the service
  /// takes one final snapshot so the warm cache survives clean restarts.
  std::shared_ptr<persist::DurableCatalog> catalog;
  /// Replication follower mode (docs/replication.md): client-facing
  /// mutations (CreateSession / DropSession / DefineQuery / LoadState)
  /// answer kFailedPrecondition "readonly ..." while the decision verbs
  /// keep serving — verdicts are deterministic functions of replayed
  /// state, so a follower's answers match the primary's. Records shipped
  /// from the primary enter through ApplyReplicated(), which bypasses
  /// the gate; Promote() clears it.
  bool read_only = false;
};

enum class RequestKind {
  kMinimize,        // §4 exact (positive) or §5 reduced union (general)
  kContained,       // Q1 ⊆ Q2 through the Thm 4.1 expansion pipeline
  kEquivalent,      // both directions, shared per-session cache
  kUnionContained,  // Thm 4.1 over explicit disjunct lists
  kSatisfiable,     // Thm 2.2 on a terminal query
  kEvaluate,        // answers on the session's registered state
  kExplain,         // narrated containment decision
};

const char* RequestKindName(RequestKind kind);

/// Replication telemetry, filled by whichever side of the stream this
/// node is on: a follower's tail loop registers a probe
/// (SetReplicationProbe) reporting lag; a primary reports ship-side
/// counters once a subscriber has connected. `present` gates the `repl`
/// line in HEALTH and the repl gauges in STATS, so a non-replicated
/// server's output is unchanged.
struct ReplicationHealth {
  bool present = false;
  std::string role;             // "primary" | "follower"
  bool connected = false;       // follower: stream to the primary is up
  uint64_t lag_records = 0;     // primary durable tip seq − applied seq
  uint64_t shipped_bytes = 0;   // primary: frame bytes shipped
  uint64_t applied_records = 0; // follower: records applied this epoch
  uint64_t epoch = 0;           // WAL compaction epoch being tailed
  uint64_t term = 0;            // replication term (write authority)
};

/// One liveness/progress snapshot, collected once and rendered by both
/// the HEALTH verb (PR 5 wire format, unchanged) and the STATS
/// exposition — a single collection path so the two can never disagree.
struct ServiceHealth {
  uint32_t pending = 0;
  uint64_t completed = 0;
  bool draining = false;
  uint64_t sessions = 0;
  bool has_budget = false;
  uint64_t resident_bytes = 0;
  uint64_t max_resident_bytes = 0;
  uint64_t work_units = 0;
  uint64_t max_work_units = 0;
  uint64_t disjuncts = 0;
  uint64_t max_disjuncts = 0;
  uint64_t exhausted = 0;
  ReplicationHealth repl;
};

/// One typed request. Query fields hold either query text or `@name`
/// references to queries registered with DefineQuery().
struct Request {
  RequestKind kind = RequestKind::kContained;
  std::string session_id;
  std::string query;                 // primary query (all kinds)
  std::string query2;                // second query (binary kinds)
  std::vector<std::string> union_m;  // kUnionContained: disjuncts of M
  std::vector<std::string> union_n;  // kUnionContained: disjuncts of N
  /// Relative deadline; 0 inherits ServiceOptions::default_deadline_ms.
  /// Expiry — in the admission queue or mid-scan — yields
  /// kDeadlineExceeded (retryable, IsRetryable()).
  uint64_t deadline_ms = 0;
  /// Caller-chosen id annotated onto the request's trace span, so a
  /// Chrome trace of the server shows which spans served which request.
  std::string request_id;
};

struct Response {
  Status status;            // retryable codes: shed / expired deadline
  bool verdict = false;     // contained / equivalent / satisfiable
  std::string body;         // rendered result (minimize, eval, explain)
  uint64_t latency_us = 0;  // admission to completion, queue wait included
};

class OocqService {
 public:
  explicit OocqService(ServiceOptions options = {});
  /// Drains: refuses new work and joins in-flight requests.
  ~OocqService();

  OocqService(const OocqService&) = delete;
  OocqService& operator=(const OocqService&) = delete;

  // ---- Session registry -------------------------------------------------
  /// Parses `schema_text` and registers a fresh session around it (own
  /// named-query map, own ContainmentCache). Returns the session id.
  StatusOr<std::string> CreateSession(const std::string& schema_text);
  Status DropSession(const std::string& session_id);
  /// Parses and registers a named query; requests reference it as @name.
  Status DefineQuery(const std::string& session_id, const std::string& name,
                     const std::string& query_text);
  /// Parses and registers the session's database state (kEvaluate target).
  Status LoadState(const std::string& session_id,
                   const std::string& state_text);
  size_t session_count() const;
  /// The registered session ids, sorted. A replication resync uses this
  /// to drop state the new dump no longer contains.
  std::vector<std::string> SessionIds() const;

  // ---- Replication (docs/replication.md) --------------------------------
  /// True while client-facing mutations are refused with
  /// kFailedPrecondition (ServiceOptions::read_only, or fencing).
  bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }
  /// True when this node was a primary that observed a higher term and
  /// fenced itself: mutations answer "fenced term=N" instead of
  /// "readonly" so routers know to re-resolve, not just redirect.
  bool fenced() const { return fenced_.load(std::memory_order_relaxed); }
  /// The replication term this node is operating under. Mirrors the
  /// durable catalog's TERM file; 1 for a catalog-less service.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }
  /// Applies one record shipped from the primary: bypasses the readonly
  /// gate, replays through the idempotent ApplyRecord path, and logs the
  /// record to this node's own catalog — so replay==acked holds on the
  /// follower too and promotion is just Promote(). Serialized by the
  /// caller (the follower's single tail thread). `term` is the shipping
  /// primary's term: lower than ours is rejected (kFailedPrecondition —
  /// a healed stale primary can never pollute this WAL), higher is
  /// adopted durably, 0 means "unstamped" (trusted local replay).
  Status ApplyReplicated(const persist::Record& record, uint64_t term = 0);
  /// Clears the readonly gate; this node now accepts writes. On an
  /// actual transition the term is bumped to max(term+1, min_term) and
  /// persisted, and the `repl/promote` failpoint fires. Idempotent.
  Status Promote(uint64_t min_term = 0);
  /// Fences this node: a peer (subscriber handshake, REPL DEMOTE, the
  /// router's fencing sweep) proved a primary at `observed_term` exists.
  /// A primary steps down when observed_term > term(), or when
  /// observed_term == term() and `new_primary` names the dueling winner
  /// (the router's deterministic tie-break). Adopts the term durably,
  /// flips read-only + fenced, fires the `repl/fence` failpoint, and
  /// invokes the demotion handler with (term, new_primary) so the host
  /// can rejoin as a follower. kFailedPrecondition for a stale term.
  /// Already-followers adopt the term and return Ok.
  Status Demote(uint64_t observed_term, const std::string& new_primary);
  /// Installs the replication telemetry source CollectHealth() consults
  /// (a follower's tail loop). Null detaches it.
  void SetReplicationProbe(std::function<ReplicationHealth()> probe);
  /// Installs the hook Demote() invokes after fencing (term, new_primary
  /// — new_primary may be empty when the demoter named no successor).
  /// The host uses it to start tailing the new primary. Called on the
  /// demoting thread with no service locks held. Null detaches it.
  void SetDemotionHandler(
      std::function<void(uint64_t, const std::string&)> handler);

  // ---- Request execution ------------------------------------------------
  /// Admission control + pool execution + wait; see the header comment.
  Response Execute(const Request& request);
  /// Admits and fans the whole batch onto the pool; responses come back
  /// in request order, and verdicts are identical to running the batch
  /// sequentially (each request is independent; the shared cache computes
  /// each decision once regardless of schedule). Requests that don't fit
  /// the admission window are shed individually.
  std::vector<Response> ExecuteBatch(const std::vector<Request>& requests);

  // ---- Lifecycle / introspection ----------------------------------------
  /// Stops admitting (subsequent Execute sheds with kUnavailable) and
  /// blocks until every in-flight request finished. Idempotent.
  void Drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// The service-lifetime registry (populated when options.metrics).
  const MetricsRegistry& metrics() const { return registry_; }
  /// Mutable handle for companion components (the replication tail
  /// thread) whose lifetime is bounded by the service: writing here
  /// instead of through the process-wide MetricsScope keeps their
  /// counters valid even when another service owns the global scope.
  MetricsRegistry* metrics_registry() { return &registry_; }
  const ServiceOptions& options() const { return options_; }

  /// One coherent liveness snapshot (see ServiceHealth).
  ServiceHealth CollectHealth() const;
  /// Prometheus-style text exposition of the registry plus the
  /// ServiceHealth gauges — what the STATS verb and `oocq_serve
  /// --stats-file` emit (docs/observability.md#stats).
  std::string StatsText() const;

  /// Requests admitted and not yet finished (queued + running).
  uint32_t pending() const { return pending_.load(std::memory_order_relaxed); }
  /// Requests finished since construction (any status). A watchdog that
  /// sees pending() > 0 while this stops advancing has found a wedged
  /// worker pool (examples/oocq_serve.cpp).
  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// The service-wide budget (ServiceOptions::budget); null when no
  /// service limit is set. Read-only introspection for HEALTH.
  const ResourceBudget* budget() const {
    return budget_.has_value() ? &*budget_ : nullptr;
  }

 private:
  struct Session {
    explicit Session(Schema s) : schema(std::move(s)) {}
    Schema schema;
    std::optional<State> state;
    std::map<std::string, ConjunctiveQuery> named;
    std::unique_ptr<ContainmentCache> cache;
    /// Compiled evaluation programs, keyed by query text — same lifetime
    /// and invalidation epoch as `cache` (both are rebuilt together
    /// whenever the session's decision state is reset).
    std::unique_ptr<compile::ProgramCache> programs;
    /// Source texts of schema / named queries / state, kept verbatim so
    /// the durable catalog persists exactly what the client sent (no
    /// print-reparse round trip).
    std::string schema_text;
    std::map<std::string, std::string> named_text;
    std::optional<std::string> state_text;
    /// Catalog bytes this session has charged on the service budget
    /// (released on DropSession).
    uint64_t resident_bytes = 0;
    /// Registry mutations (DefineQuery/LoadState) take it exclusively;
    /// request execution reads under a shared lock.
    mutable std::shared_mutex mu;
  };

  StatusOr<std::shared_ptr<Session>> FindSession(
      const std::string& session_id) const;
  /// Builds a Session around parsed `schema_text`; shared by CreateSession
  /// and replay (which forces the persisted id instead of minting one).
  StatusOr<std::shared_ptr<Session>> MakeSession(
      const std::string& schema_text) const;
  /// Replays one catalog record idempotently (see docs/persistence.md);
  /// a failure skips the record, never aborts the restore.
  Status ApplyRecord(const persist::Record& record);
  void RestoreFromCatalog();
  /// Serializes the whole registry (+ cache verdicts worth warming) for
  /// the catalog's snapshotter. Called with mutations gated off.
  std::vector<persist::Record> DumpCatalog();
  /// Appends one mutation to the catalog's WAL (no-op without a catalog).
  Status LogMutation(persist::Record record);
  /// Admission check; on success the caller owes one FinishOne().
  Status AdmitOne();
  void FinishOne();
  /// Charges `delta` catalog bytes for `session` on the service budget
  /// (no-op without one); negative-delta releases never fail.
  Status ChargeResident(Session& session, uint64_t bytes);
  void ReleaseResident(Session& session, uint64_t bytes);
  /// The request body, run on a pool worker. `cancel` may be null.
  Response Run(const Request& request, Session& session,
               const CancellationToken* cancel) const;

  ServiceOptions options_;
  MetricsRegistry registry_;
  std::optional<MetricsScope> metrics_scope_;
  /// Per-request hot-path metric handles, resolved once at construction:
  /// Execute()/ExecuteBatch() update lock-free atomics instead of paying
  /// a name lookup (shard mutex + hash) per request. Handles stay valid
  /// for the registry's (= this service's) lifetime.
  MetricCounter* requests_total_ = nullptr;
  MetricCounter* started_total_ = nullptr;
  MetricHistogram* queue_wait_us_ = nullptr;
  MetricHistogram* latency_us_ = nullptr;
  MetricHistogram* verb_latency_us_[7] = {};  // indexed by RequestKind
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;

  std::atomic<uint32_t> pending_{0};  // admitted: queued + running
  std::atomic<uint64_t> completed_{0};
  /// ServiceOptions::read_only, flipped by Promote() / Demote().
  std::atomic<bool> read_only_{false};
  /// Set by Demote(), cleared by Promote(): mutations answer "fenced
  /// term=N" instead of "readonly".
  std::atomic<bool> fenced_{false};
  /// Mirrors the catalog term (1 without a catalog). Guarded for writers
  /// by role_mu_; readers use the atomic.
  std::atomic<uint64_t> term_{1};
  /// Serializes role/term transitions (Promote, Demote, term adoption in
  /// ApplyReplicated) so concurrent demotions cannot interleave the
  /// persist-then-publish sequence.
  std::mutex role_mu_;
  mutable std::mutex repl_probe_mu_;
  std::function<ReplicationHealth()> repl_probe_;
  std::function<void(uint64_t, const std::string&)> demotion_handler_;
  /// ServiceOptions::budget. Mutable: const request paths (Run) charge
  /// work against it; charging is internally synchronized (atomics).
  mutable std::optional<ResourceBudget> budget_;
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace oocq::server

#endif  // OOCQ_SERVER_SERVICE_H_
