#ifndef OOCQ_CORE_SEARCH_SPACE_H_
#define OOCQ_CORE_SEARCH_SPACE_H_

#include <map>
#include <vector>

#include "query/query.h"
#include "schema/schema.h"

namespace oocq {

/// term-class(Q, x) (§4): the terminal descendant classes over which
/// variable `x` ranges in Q, i.e. the terminal descendants of the classes
/// in x's range atom. Sorted ascending.
std::vector<ClassId> TermClass(const Schema& schema,
                               const ConjunctiveQuery& query, VarId x);

/// The paper's optimality metric: for each terminal class C, the total
/// number of occurrences of C in term-class(Q, y) over all variables y.
/// Q is "more optimal" than P when every per-class count of Q is <= P's.
struct SearchSpaceCost {
  /// Sum of all per-class counts (the scalar reported by the benches).
  uint64_t total = 0;
  /// Occurrences per terminal class.
  std::map<ClassId, uint64_t> per_class;
};

SearchSpaceCost SearchSpaceCostOf(const Schema& schema,
                                  const ConjunctiveQuery& query);
SearchSpaceCost SearchSpaceCostOf(const Schema& schema,
                                  const UnionQuery& query);

/// Componentwise comparison (condition 2 of the paper's Q < P): true iff
/// every terminal class occurs in `a` at most as often as in `b`.
bool CostLeq(const SearchSpaceCost& a, const SearchSpaceCost& b);

}  // namespace oocq

#endif  // OOCQ_CORE_SEARCH_SPACE_H_
