#ifndef OOCQ_CORE_SATISFIABILITY_H_
#define OOCQ_CORE_SATISFIABILITY_H_

#include <string>

#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Outcome of the satisfiability test, with a human-readable cause when
/// unsatisfiable (useful to report *why* an expansion disjunct dropped).
struct SatisfiabilityResult {
  bool satisfiable = false;
  std::string reason;
};

/// Decides whether a well-formed *terminal* conjunctive query has a state
/// with a non-empty answer (paper Thm 2.2; the paper's proof lives in an
/// unavailable tech report — DESIGN.md §5.3 derives this procedure and
/// argues completeness via witness-state construction).
///
/// The query is unsatisfiable iff one of:
///  (a) two variables with distinct range classes are in one equivalence
///      class of E(Q) (distinct terminal extents are disjoint);
///  (b) an object term x.A where A is not an attribute of x's class, or A
///      is set-typed, or the class of [x.A]'s variables is not a terminal
///      descendant of A's type class;
///  (c) a set term y.A where A is not an attribute or not set-typed;
///  (d) a membership s ∈ y.A whose element class is not a terminal
///      descendant of the element type of y.A;
///  (e) an inequality atom whose sides are in one equivalence class;
///  (f) a non-membership x ∉ y.A such that Q ⊢ x ∈ y.A;
///  (g) a non-range atom x ∉ C1∨…∨Cn with x's class a descendant of some Ci.
///
/// Precondition: CheckWellFormed(schema, query).ok() and
/// query.IsTerminal(schema).
SatisfiabilityResult CheckSatisfiable(const Schema& schema,
                                      const ConjunctiveQuery& query);

/// Satisfiability for *general* well-formed conjunctive queries: by
/// Prop 2.1 the query is equivalent to its terminal expansion, so it is
/// satisfiable iff some expansion disjunct is. Returns the first
/// satisfiable disjunct's index in `witness_disjunct` when non-null.
StatusOr<bool> CheckSatisfiableGeneral(const Schema& schema,
                                       const ConjunctiveQuery& query,
                                       size_t* witness_disjunct = nullptr);

/// Normalizes a satisfiable terminal conjunctive query (§2.5 + DESIGN.md
/// §5.3): removes non-range atoms (implied by the terminal range atoms)
/// and inequality atoms whose sides lie in provably disjoint terminal
/// classes. Both removals preserve the answer on every state: well-formed
/// queries equate every object attribute term to a ranged variable through
/// atoms that survive the removal, so operand non-nullness stays forced.
/// Non-membership atoms are never removed — under 3-valued logic even a
/// type-trivial `x ∉ y.A` forces y.A to be non-null (Ex 3.3).
///
/// Returns FailedPrecondition if the query is unsatisfiable.
StatusOr<ConjunctiveQuery> NormalizeTerminalQuery(const Schema& schema,
                                                  const ConjunctiveQuery& query);

}  // namespace oocq

#endif  // OOCQ_CORE_SATISFIABILITY_H_
