#include "core/containment_cache.h"

#include "core/canonical.h"
#include "support/status_macros.h"

namespace oocq {

StatusOr<bool> ContainmentCache::Contained(const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2) {
  std::pair<std::string, std::string> key(CanonicalKey(q1), CanonicalKey(q2));
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  OOCQ_ASSIGN_OR_RETURN(bool contained,
                        ::oocq::Contained(*schema_, q1, q2, options_));
  cache_.emplace(std::move(key), contained);
  return contained;
}

}  // namespace oocq
