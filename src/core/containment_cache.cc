#include "core/containment_cache.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "core/canonical.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/status_macros.h"

namespace oocq {

ContainmentCache::ContainmentCache(const Schema* schema, Options options)
    : schema_(schema), options_(std::move(options)) {
  const uint32_t num_shards = std::max(1u, options_.num_shards);
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  max_entries_per_shard_ =
      options_.max_entries == 0
          ? 0
          : std::max<size_t>(1, options_.max_entries / num_shards);
}

ContainmentCache::ContainmentCache(const Schema* schema,
                                   ContainmentOptions containment)
    : ContainmentCache(schema, Options{.containment = containment}) {}

ContainmentCache::Shard& ContainmentCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void ContainmentCache::EvictIfOver(Shard& shard) {
  if (max_entries_per_shard_ == 0 ||
      shard.map.size() <= max_entries_per_shard_) {
    return;
  }
  // Evict the oldest finished entry; skip stale fifo keys (erased on
  // error) and in-flight ones.
  for (size_t scanned = shard.fifo.size(); scanned > 0; --scanned) {
    std::string victim = std::move(shard.fifo.front());
    shard.fifo.pop_front();
    auto vit = shard.map.find(victim);
    if (vit == shard.map.end()) continue;  // stale
    if (!vit->second->done) {
      shard.fifo.push_back(std::move(victim));  // in flight: keep
      continue;
    }
    shard.map.erase(vit);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    OOCQ_METRIC_ADD("cache/evictions", 1);
    break;
  }
}

std::vector<std::pair<std::string, bool>> ContainmentCache::Export(
    size_t max_entries) const {
  std::vector<std::pair<std::string, bool>> exported;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const std::string& key : shard->fifo) {
      if (max_entries != 0 && exported.size() >= max_entries) return exported;
      auto it = shard->map.find(key);
      if (it == shard->map.end() || !it->second->done ||
          !it->second->error.ok()) {
        continue;
      }
      exported.emplace_back(key, it->second->value);
    }
  }
  return exported;
}

void ContainmentCache::Preload(const std::string& key, bool value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(key) != 0) return;
  auto entry = std::make_shared<Entry>();
  entry->done = true;
  entry->value = value;
  shard.map.emplace(key, std::move(entry));
  shard.fifo.push_back(key);
  EvictIfOver(shard);
}

size_t ContainmentCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

StatusOr<bool> ContainmentCache::Contained(const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           ContainmentStats* stats,
                                           const CancellationToken* cancel,
                                           ResourceBudget* budget) {
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("cache/lookup"));
  // Length-prefixing Q1's key makes the concatenation injective even if a
  // string constant inside a canonical key contains arbitrary bytes.
  const std::string k1 = CanonicalKey(q1);
  std::string key = std::to_string(k1.size());
  key += ':';
  key += k1;
  key += CanonicalKey(q2);
  Shard& shard = ShardFor(key);

  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      // This thread owns the computation; concurrent requesters of the
      // same key wait below instead of duplicating the work.
      entry = std::make_shared<Entry>();
      shard.map.emplace(key, entry);
      shard.fifo.push_back(key);
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->cache_misses;
      OOCQ_METRIC_ADD("cache/miss", 1);
      EvictIfOver(shard);
    } else {
      entry = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->cache_hits;
      OOCQ_METRIC_ADD("cache/hit", 1);
      if (!entry->done) {
        // Another thread owns this key's computation; block until its
        // value lands (compute-once, docs/parallelism.md). A waiter with
        // a token re-polls it between waits so a tripped deadline never
        // leaves it hung behind a slower (or unbounded) owner.
        OOCQ_METRIC_ADD("cache/wait", 1);
        if (cancel == nullptr) {
          shard.cv.wait(lock, [&entry] { return entry->done; });
        } else {
          while (!shard.cv.wait_for(lock, std::chrono::milliseconds(5),
                                    [&entry] { return entry->done; })) {
            Status live = cancel->Check();
            if (!live.ok()) return live;
          }
        }
      }
      if (!entry->error.ok()) return entry->error;
      return entry->value;
    }
  }

  // This thread owns the entry: decide outside the lock. The caller's
  // token governs only the decision it computes; cached hits are instant
  // and never observe it.
  ContainmentOptions compute_options = options_.containment;
  compute_options.cancel = cancel;
  if (budget != nullptr) compute_options.budget = budget;
  StatusOr<bool> decided =
      ::oocq::Contained(*schema_, q1, q2, compute_options, stats);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (decided.ok()) {
      entry->value = *decided;
    } else {
      entry->error = decided.status();
      if (IsRetryable(decided.status().code())) {
        // Transient outcomes (deadline, cancellation, budget) are
        // delivered to current waiters but not memoized: a retry —
        // possibly with raised limits or under less load — recomputes.
        shard.map.erase(key);
      }
      // Deterministic errors (bad precondition, structural cap) stay
      // memoized so identical requests fail fast instead of redoing the
      // doomed enumeration. Export() skips errored entries, so they never
      // reach the durable catalog.
    }
    entry->done = true;
  }
  shard.cv.notify_all();
  return decided;
}

}  // namespace oocq
