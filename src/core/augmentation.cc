#include "core/augmentation.h"

#include <vector>

#include "core/satisfiability.h"

namespace oocq {

namespace {

/// Recursive enumeration of variable partitions where a variable may only
/// join a block of its own range class. `block_of[v]` assigns block ids in
/// restricted-growth form so each partition is produced exactly once.
struct PartitionEnumerator {
  const Schema& schema;
  const ConjunctiveQuery& query;
  const AugmentationOptions& options;
  const std::function<bool(const ConjunctiveQuery&)>& fn;

  std::vector<int> block_of;          // var -> block id
  std::vector<ClassId> block_class;   // block id -> range class
  std::vector<VarId> block_leader;    // block id -> first variable
  uint64_t enumerated = 0;
  bool stopped = false;    // fn returned false
  bool exhausted = false;  // cap hit

  void Emit() {
    ++enumerated;
    if (enumerated > options.max_augmentations) {
      exhausted = true;
      return;
    }
    ConjunctiveQuery augmented = query;
    for (VarId v = 0; v < query.num_vars(); ++v) {
      VarId leader = block_leader[block_of[v]];
      if (leader != v) {
        augmented.AddAtom(Atom::Equality(Term::Var(leader), Term::Var(v)));
      }
    }
    if (!CheckSatisfiable(schema, augmented).satisfiable) return;
    if (!fn(augmented)) stopped = true;
  }

  void Recurse(VarId v) {
    if (stopped || exhausted) return;
    if (v == query.num_vars()) {
      Emit();
      return;
    }
    ClassId cls = query.RangeClassOf(v);
    // Join an existing block of the same class...
    for (size_t b = 0; b < block_class.size(); ++b) {
      if (block_class[b] != cls) continue;
      block_of[v] = static_cast<int>(b);
      Recurse(v + 1);
      if (stopped || exhausted) return;
    }
    // ...or open a new block.
    block_of[v] = static_cast<int>(block_class.size());
    block_class.push_back(cls);
    block_leader.push_back(v);
    Recurse(v + 1);
    block_class.pop_back();
    block_leader.pop_back();
  }
};

}  // namespace

StatusOr<bool> ForEachConsistentAugmentation(
    const Schema& schema, const ConjunctiveQuery& query,
    const AugmentationOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& fn) {
  PartitionEnumerator enumerator{schema, query, options, fn,
                                 std::vector<int>(query.num_vars(), -1),
                                 {},
                                 {},
                                 0,
                                 false,
                                 false};
  enumerator.Recurse(0);
  if (enumerator.exhausted) {
    return Status::ResourceExhausted(
        "more than " + std::to_string(options.max_augmentations) +
        " consistent augmentations; raise "
        "AugmentationOptions::max_augmentations");
  }
  return !enumerator.stopped;
}

StatusOr<uint64_t> CountConsistentAugmentations(
    const Schema& schema, const ConjunctiveQuery& query,
    const AugmentationOptions& options) {
  uint64_t count = 0;
  StatusOr<bool> result = ForEachConsistentAugmentation(
      schema, query, options, [&count](const ConjunctiveQuery&) {
        ++count;
        return true;
      });
  if (!result.ok()) return result.status();
  return count;
}

}  // namespace oocq
