#ifndef OOCQ_CORE_GENERAL_MINIMIZATION_H_
#define OOCQ_CORE_GENERAL_MINIMIZATION_H_

#include "core/minimization.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

class ContainmentCache;

/// Result of the general (non-positive) minimization.
struct GeneralMinimizationReport {
  /// An equivalent union of terminal conjunctive queries, reduced as far
  /// as the verified transformations allow.
  UnionQuery minimized;
  uint64_t raw_disjuncts = 0;
  uint64_t satisfiable_disjuncts = 0;
  uint64_t nonredundant_disjuncts = 0;
  uint64_t variables_removed = 0;
  /// Aggregate work counters of every containment / self-mapping search.
  ContainmentStats containment;
};

/// Best-effort minimization for *general* conjunctive queries — the
/// problem the paper leaves open ("We shall investigate the minimization
/// problem for conjunctive queries in general", §5). Every step is
/// answer-preserving:
///
///  1. Prop 2.1 expansion into terminal disjuncts; unsatisfiable ones
///     dropped (always sound).
///  2. Redundant-disjunct removal using the *general* containment test
///     (Thm 3.1): dropping Qi when Qi ⊆ Qj never changes the union.
///  3. Verified variable folding: a non-contradictory self-mapping that
///     avoids one variable is applied only if the folded disjunct is
///     proven equivalent to the original by the general containment test
///     in both directions. (Thm 4.3 makes the check superfluous for
///     positive disjuncts; for general ones it is required — the theorem
///     does not extend, so we verify instead of trusting the mapping.)
///
/// Unlike MinimizePositiveQuery, the result carries no optimality
/// guarantee — it is an equivalent, usually smaller union.
StatusOr<GeneralMinimizationReport> MinimizeConjunctiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {},
    ContainmentCache* cache = nullptr);

/// The folding step alone, for one satisfiable terminal conjunctive
/// query (any atom kinds). `removed` counts eliminated variables; `stats`
/// accumulates the self-mapping and verification-containment work.
StatusOr<ConjunctiveQuery> FoldTerminalQueryVerified(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {}, uint64_t* removed = nullptr,
    ContainmentStats* stats = nullptr);

/// Atom-level minimization (a further extension; the paper minimizes
/// variables only): greedily removes non-range atoms whose deletion
/// provably preserves the answer. Dropping an atom can only weaken a
/// conjunctive query, so atom A is redundant iff (Q − A) ⊆ Q, decided by
/// the general containment test. Removals that would break
/// well-formedness (e.g. stranding an attribute term) are skipped; range
/// atoms are never touched (condition (iii)). Left-to-right fixpoint.
/// `removed` counts deleted atoms.
StatusOr<ConjunctiveQuery> RemoveRedundantAtoms(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {}, uint64_t* removed = nullptr);

}  // namespace oocq

#endif  // OOCQ_CORE_GENERAL_MINIMIZATION_H_
