#include "core/mapping.h"

#include <algorithm>
#include <numeric>

namespace oocq {

namespace {

/// The source variables an atom constrains (besides range candidates).
void AtomVariables(const Atom& atom, VarId out[2], int* count) {
  *count = 0;
  switch (atom.kind()) {
    case AtomKind::kRange:
      break;  // Folded into the candidate lists.
    case AtomKind::kNonRange:
    case AtomKind::kConstant:
      out[(*count)++] = atom.var();
      break;
    case AtomKind::kEquality:
    case AtomKind::kInequality:
    case AtomKind::kMembership:
    case AtomKind::kNonMembership:
      out[(*count)++] = atom.lhs().var;
      if (atom.rhs().var != atom.lhs().var) out[(*count)++] = atom.rhs().var;
      break;
  }
}

}  // namespace

MappingResult FindNonContradictoryMapping(
    const Schema& schema, const ConjunctiveQuery& from,
    const QueryAnalysis& target, const MappingConstraints& constraints) {
  MappingResult result;
  const ConjunctiveQuery& tq = target.query();
  const VarId free_target = constraints.free_target == kInvalidVarId
                                ? tq.free_var()
                                : constraints.free_target;
  const size_t n = from.num_vars();

  // Candidate targets per source variable: identical range class (range
  // atom derivability is syntactic presence), the forbidden target
  // excluded, and condition (i) for the free variable.
  std::vector<std::vector<VarId>> candidates(n);
  const EqualityGraph& tgraph = target.graph();
  const TermId free_rep = tgraph.Find(tgraph.VarNode(free_target));
  for (VarId v = 0; v < n; ++v) {
    ClassId cls = from.RangeClassOf(v);
    for (VarId w = 0; w < tq.num_vars(); ++w) {
      if (target.range_class(w) != cls) continue;
      if (w == constraints.forbidden_target) continue;
      if (v == from.free_var() &&
          tgraph.Find(tgraph.VarNode(w)) != free_rep) {
        continue;
      }
      candidates[v].push_back(w);
    }
    if (candidates[v].empty()) return result;  // No mapping can exist.
  }

  // Assign variables in ascending candidate-count order.
  std::vector<VarId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&candidates](VarId a, VarId b) {
    return candidates[a].size() < candidates[b].size();
  });
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = i;

  // Schedule each atom at the position where its last variable binds.
  std::vector<std::vector<const Atom*>> checks(n);
  for (const Atom& atom : from.atoms()) {
    VarId vars[2];
    int count = 0;
    AtomVariables(atom, vars, &count);
    if (count == 0) continue;
    size_t last = position[vars[0]];
    if (count == 2) last = std::max(last, position[vars[1]]);
    checks[last].push_back(&atom);
  }

  std::vector<VarId> image(n, kInvalidVarId);
  auto atom_holds = [&](const Atom& atom) -> bool {
    switch (atom.kind()) {
      case AtomKind::kRange:
        return true;
      case AtomKind::kNonRange:
        // Image classes equal source classes, so this mirrors the source
        // satisfiability condition (g) and is statically decided.
        for (ClassId excluded : atom.classes()) {
          if (schema.IsSubclassOf(target.range_class(image[atom.var()]),
                                  excluded)) {
            return false;
          }
        }
        return true;
      case AtomKind::kEquality:
        return target.DerivesEquality(
            atom.lhs().WithVar(image[atom.lhs().var]),
            atom.rhs().WithVar(image[atom.rhs().var]));
      case AtomKind::kInequality:
        return target.NotContradictsInequality(
            atom.lhs().WithVar(image[atom.lhs().var]),
            atom.rhs().WithVar(image[atom.rhs().var]));
      case AtomKind::kMembership:
        return target.DerivesMembership(image[atom.lhs().var],
                                        image[atom.rhs().var],
                                        atom.rhs().attr);
      case AtomKind::kNonMembership:
        return target.NotContradictsNonMembership(image[atom.lhs().var],
                                                  image[atom.rhs().var],
                                                  atom.rhs().attr);
      case AtomKind::kConstant:
        return target.DerivesConstant(image[atom.var()], atom.constant());
    }
    return false;
  };

  // Iterative backtracking over candidate indices.
  std::vector<size_t> choice(n, 0);
  size_t depth = 0;
  while (true) {
    if (++result.steps > constraints.max_steps) {
      result.exhausted = true;
      return result;
    }
    VarId v = order[depth];
    if (choice[depth] >= candidates[v].size()) {
      // Exhausted this level; backtrack.
      image[v] = kInvalidVarId;
      choice[depth] = 0;
      if (depth == 0) return result;  // No mapping exists.
      --depth;
      image[order[depth]] = kInvalidVarId;
      ++choice[depth];
      continue;
    }
    image[v] = candidates[v][choice[depth]];
    bool holds = true;
    for (const Atom* atom : checks[depth]) {
      if (!atom_holds(*atom)) {
        holds = false;
        break;
      }
    }
    if (!holds) {
      image[v] = kInvalidVarId;
      ++choice[depth];
      continue;
    }
    if (depth + 1 == n) {
      result.image = image;
      return result;
    }
    ++depth;
  }
}

}  // namespace oocq
