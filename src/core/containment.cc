#include "core/containment.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <set>
#include <utility>
#include <vector>

#include "compile/mask_scan.h"
#include "core/augmentation.h"
#include "core/containment_cache.h"
#include "core/derivability.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/equality_graph.h"
#include "query/well_formed.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace oocq {

namespace {

constexpr uint64_t kNoEvent = ~uint64_t{0};

/// What one Contained() call decided structurally: which Thm 3.1
/// specialization dispatch fired, and the largest membership pool |T| it
/// enumerated subsets of. Deterministic — the dispatch depends only on
/// Q2's atom kinds and the pool only on the (augmented) query.
struct ContainedTraceInfo {
  const char* specialization = "trivial";  // decided by a shortcut
  uint64_t max_pool = 0;
};

bool HasAtomKind(const ConjunctiveQuery& query, AtomKind kind) {
  return std::any_of(
      query.atoms().begin(), query.atoms().end(),
      [kind](const Atom& atom) { return atom.kind() == kind; });
}

/// Atomically lowers `target` to `value` if `value` is smaller. Workers
/// publish decisive events through this so later indices can stop early;
/// the final minimum is schedule-independent because indices are claimed
/// in order (support/thread_pool.h).
template <typename T>
void AtomicMin(std::atomic<T>& target, T value) {
  T current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_acq_rel)) {
  }
}

}  // namespace

StatusOr<std::vector<Atom>> MembershipCandidatePool(
    const Schema& schema, const ConjunctiveQuery& base,
    const ContainmentOptions& options) {
  EqualityGraph graph = EqualityGraph::Build(base);

  // Representative element variables: one per variable equivalence class.
  std::vector<VarId> element_reps;
  {
    std::set<TermId> seen;
    for (VarId v = 0; v < base.num_vars(); ++v) {
      if (seen.insert(graph.Find(graph.VarNode(v))).second) {
        element_reps.push_back(v);
      }
    }
  }
  // Representative set terms: one per (set-variable class, attribute).
  std::vector<std::pair<VarId, std::string>> set_reps;
  {
    std::set<std::pair<TermId, std::string>> seen;
    for (const Atom& atom : base.atoms()) {
      if (atom.kind() != AtomKind::kMembership &&
          atom.kind() != AtomKind::kNonMembership) {
        continue;
      }
      TermId rep = graph.Find(graph.VarNode(atom.set_term().var));
      if (seen.insert({rep, atom.set_term().attr}).second) {
        set_reps.emplace_back(atom.set_term().var, atom.set_term().attr);
      }
    }
  }

  std::vector<Atom> candidates;
  for (VarId element : element_reps) {
    for (const auto& [set_var, attr] : set_reps) {
      Atom candidate = Atom::Membership(element, set_var, attr);
      ConjunctiveQuery extended = base;
      extended.AddAtom(candidate);
      if (!CheckSatisfiable(schema, extended).satisfiable) continue;
      // Skip candidates already derivable: adding them changes nothing.
      bool derivable = false;
      for (const Atom& atom : base.atoms()) {
        if (atom.kind() != AtomKind::kMembership) continue;
        if (graph.Equivalent(graph.VarNode(atom.var()),
                             graph.VarNode(element)) &&
            graph.Equivalent(graph.VarNode(atom.set_term().var),
                             graph.VarNode(set_var)) &&
            atom.set_term().attr == attr) {
          derivable = true;
          break;
        }
      }
      if (derivable) continue;
      candidates.push_back(std::move(candidate));
      if (candidates.size() > options.max_membership_candidates) {
        return Status::ResourceExhausted(
            "more than " + std::to_string(options.max_membership_candidates) +
            " candidate membership atoms (2^|T| subsets would be "
            "enumerated); raise "
            "ContainmentOptions::max_membership_candidates");
      }
    }
  }
  return candidates;
}


namespace {

/// The Thm 3.1 decision procedure proper; the public Contained() wraps it
/// with a trace span and metrics. `tinfo` receives the dispatch outcome.
StatusOr<bool> ContainedImpl(const Schema& schema, const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2,
                             const ContainmentOptions& options,
                             ContainmentStats* stats,
                             ContainedTraceInfo* tinfo) {
  if (options.cancel != nullptr) {
    OOCQ_RETURN_IF_ERROR(options.cancel->Check());
  }
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q1));
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q2));
  if (!q1.IsTerminal(schema) || !q2.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "Contained requires terminal conjunctive queries; expand with "
        "ExpandToTerminalQueries first");
  }

  if (!CheckSatisfiable(schema, q1).satisfiable) return true;
  if (!CheckSatisfiable(schema, q2).satisfiable) return false;

  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n1, NormalizeTerminalQuery(schema, q1));
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n2, NormalizeTerminalQuery(schema, q2));

  const bool rhs_has_inequality =
      options.force_full_theorem || HasAtomKind(n2, AtomKind::kInequality);
  const bool rhs_has_non_membership =
      options.force_full_theorem ||
      HasAtomKind(n2, AtomKind::kNonMembership);
  // Thm 3.1's specialization lattice over Q2's atom kinds (§3, Cor
  // 3.2–3.4): inequalities force the augmentation axis, non-membership
  // atoms force the membership-subset axis.
  tinfo->specialization =
      rhs_has_inequality ? (rhs_has_non_membership ? "Thm3.1" : "Cor3.3")
                         : (rhs_has_non_membership ? "Cor3.2" : "Cor3.4");

  MappingConstraints constraints;
  constraints.free_target = n1.free_var();
  constraints.max_steps = options.max_mapping_steps;

  // Checks the Thm 3.1 condition against one consistent augmentation
  // Q1&S, enumerating the subsets W of T when Q2 has non-membership atoms.
  // The subsets are independent, so the 2^|T| masks are scanned in chunks
  // that fan out over options.parallel; the verdict is resolved as the
  // smallest decisive mask in enumeration order, which is exactly what
  // the serial scan reports.
  auto check_augmentation =
      [&](const ConjunctiveQuery& base) -> StatusOr<bool> {
    // Cancellation is polled once per augmentation here and once per
    // mask inside the subset scan, so both Thm 3.1 axes abort promptly.
    if (options.cancel != nullptr) {
      OOCQ_RETURN_IF_ERROR(options.cancel->Check());
    }
    if (stats != nullptr) ++stats->augmentations;
    std::vector<Atom> membership_pool;
    if (rhs_has_non_membership) {
      OOCQ_ASSIGN_OR_RETURN(membership_pool,
                            MembershipCandidatePool(schema, base, options));
    }
    const size_t t_size = membership_pool.size();
    tinfo->max_pool = std::max<uint64_t>(tinfo->max_pool, t_size);
    const uint64_t total = uint64_t{1} << t_size;

    // Compiled subset scan (src/compile/mask_scan.h): one mapping
    // enumeration plus a word-parallel coverage test replaces the 2^|T|
    // per-mask mapping searches. It decides exactly when its
    // W-independence preconditions verify; otherwise fall through to the
    // interpreted per-mask scan below.
    if (options.enable_compilation && t_size > 0) {
      compile::MaskScanOptions scan_options;
      scan_options.max_steps = options.max_mapping_steps;
      scan_options.cancel = options.cancel;
      scan_options.budget = options.budget;
      compile::MaskScanResult scan = compile::RunCompiledMaskScan(
          schema, base, membership_pool, n2, constraints, scan_options);
      if (scan.decided) {
        OOCQ_METRIC_ADD("compile/mask_scans", 1);
        if (stats != nullptr) {
          stats->membership_subsets += scan.masks_tested;
          stats->membership_subsets_skipped += scan.masks_skipped;
          ++stats->mapping_searches;
          stats->mapping_steps += scan.mapping_steps;
        }
        if (!scan.error.ok()) return scan.error;
        return scan.contained;
      }
      OOCQ_METRIC_ADD("compile/mask_fallbacks", 1);
    }

    // A chunk's outcome: the first mask in its range that decided the
    // test (condition violated, or an error such as ResourceExhausted),
    // plus the work counters for the masks it actually scanned.
    struct ChunkResult {
      uint64_t event_mask = kNoEvent;
      bool is_error = false;
      Status error = Status::Ok();
      ContainmentStats stats;
    };
    std::atomic<uint64_t> first_event{kNoEvent};

    auto scan_masks = [&](uint64_t begin, uint64_t end) -> ChunkResult {
      ChunkResult result;
      // Masks the chunk leaves undecided — behind an abort, after a
      // decisive refutation, or unsatisfiable — count as skipped, so
      // membership_subsets keeps meaning "masks actually tested".
      uint64_t& skipped = result.stats.membership_subsets_skipped;
      if (Status chaos = Failpoints::Check("core/subset_scan"); !chaos.ok()) {
        result.event_mask = begin;
        result.is_error = true;
        result.error = std::move(chaos);
        skipped += end - begin;
        AtomicMin(first_event, begin);
        return result;
      }
      for (uint64_t mask = begin; mask < end; ++mask) {
        // A smaller decisive mask already settles the answer.
        if (mask > first_event.load(std::memory_order_acquire)) {
          skipped += end - mask;
          break;
        }
        if (options.cancel != nullptr) {
          Status live = options.cancel->Check();
          if (!live.ok()) {
            result.event_mask = mask;
            result.is_error = true;
            result.error = std::move(live);
            skipped += end - mask;
            AtomicMin(first_event, mask);
            break;
          }
        }
        if (options.budget != nullptr) {
          Status charged = options.budget->ChargeSubsetWork(1);
          if (!charged.ok()) {
            result.event_mask = mask;
            result.is_error = true;
            result.error = std::move(charged);
            skipped += end - mask;
            AtomicMin(first_event, mask);
            break;
          }
        }
        ConjunctiveQuery target = base;
        for (size_t i = 0; i < t_size; ++i) {
          if (mask & (uint64_t{1} << i)) target.AddAtom(membership_pool[i]);
        }
        if (!CheckSatisfiable(schema, target).satisfiable) {
          ++skipped;
          continue;
        }
        ++result.stats.membership_subsets;
        ++result.stats.mapping_searches;
        StatusOr<QueryAnalysis> analysis = QueryAnalysis::Create(schema, target);
        if (!analysis.ok()) {
          result.event_mask = mask;
          result.is_error = true;
          result.error = analysis.status();
          skipped += end - mask - 1;
          AtomicMin(first_event, mask);
          break;
        }
        MappingResult mapping =
            FindNonContradictoryMapping(schema, n2, *analysis, constraints);
        result.stats.mapping_steps += mapping.steps;
        if (mapping.exhausted) {
          result.event_mask = mask;
          result.is_error = true;
          result.error = Status::ResourceExhausted(
              "mapping search exceeded ContainmentOptions::max_mapping_steps");
          skipped += end - mask - 1;
          AtomicMin(first_event, mask);
          break;
        }
        if (!mapping.found()) {
          result.event_mask = mask;
          skipped += end - mask - 1;
          AtomicMin(first_event, mask);
          break;
        }
      }
      return result;
    };

    uint64_t num_chunks = 1;
    const uint32_t threads = EffectiveThreads(options.parallel);
    if (threads > 1 && !InParallelRegion() &&
        total >= options.parallel.min_parallel_items) {
      // Over-decompose so uneven mapping searches balance across workers.
      num_chunks = std::min<uint64_t>(total, uint64_t{threads} * 8);
    }
    const uint64_t chunk_size = (total + num_chunks - 1) / num_chunks;
    OOCQ_ASSIGN_OR_RETURN(
        std::vector<ChunkResult> chunks,
        (ParallelMap<ChunkResult>(
            options.parallel, static_cast<size_t>(num_chunks),
            [&](size_t c) -> StatusOr<ChunkResult> {
              const uint64_t begin = static_cast<uint64_t>(c) * chunk_size;
              const uint64_t end = std::min<uint64_t>(total, begin + chunk_size);
              return scan_masks(begin, end);
            })));
    for (const ChunkResult& chunk : chunks) {
      if (stats != nullptr) stats->Add(chunk.stats);
    }
    for (const ChunkResult& chunk : chunks) {
      if (chunk.event_mask == kNoEvent) continue;
      if (chunk.is_error) return chunk.error;
      return false;
    }
    return true;
  };

  if (!rhs_has_inequality) {
    // Cor 3.4 (positive Q2) and Cor 3.2 (no inequalities): S = ∅ only.
    return check_augmentation(n1);
  }

  // Cor 3.3 / Thm 3.1: enumerate every consistent augmentation.
  AugmentationOptions augmentation_options;
  augmentation_options.max_augmentations = options.max_augmentations;
  Status inner_error = Status::Ok();
  StatusOr<bool> outcome = ForEachConsistentAugmentation(
      schema, n1, augmentation_options,
      [&](const ConjunctiveQuery& augmented) -> bool {
        StatusOr<bool> ok = check_augmentation(augmented);
        if (!ok.ok()) {
          inner_error = ok.status();
          return false;
        }
        return *ok;
      });
  if (!inner_error.ok()) return inner_error;
  if (!outcome.ok()) return outcome.status();
  return *outcome;
}

/// "Cor3.4" -> "containment/cor34", "Thm3.1" -> "containment/thm31", …
std::string SpecializationCounterName(const char* specialization) {
  std::string name = "containment/";
  for (const char* p = specialization; *p != '\0'; ++p) {
    if (*p == '.') continue;
    name += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  return name;
}

}  // namespace

StatusOr<bool> Contained(const Schema& schema, const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         const ContainmentOptions& options,
                         ContainmentStats* stats) {
  OOCQ_TRACE_SPAN(span, "Contained");
  ContainedTraceInfo tinfo;
  ContainmentStats local;
  StatusOr<bool> verdict =
      ContainedImpl(schema, q1, q2, options, &local, &tinfo);
  if (stats != nullptr) stats->Add(local);
  if (MetricsRegistry* metrics = ActiveMetrics()) {
    metrics->Add("containment/calls", 1);
    metrics->Add(SpecializationCounterName(tinfo.specialization), 1);
    metrics->Add("containment/augmentations", local.augmentations);
    metrics->Add("containment/membership_subsets", local.membership_subsets);
    metrics->Add("containment/membership_subsets_skipped",
                 local.membership_subsets_skipped);
    metrics->Add("containment/mapping_searches", local.mapping_searches);
    metrics->Add("containment/mapping_steps", local.mapping_steps);
    metrics->Record("containment/pool_size", tinfo.max_pool);
  }
  if (span.recording()) {
    // All annotations are scheduling-independent on the positive
    // pipeline (docs/observability.md); the work counters can differ on
    // early-exit paths, mirroring the PR 1 determinism contract.
    span.Arg("spec", tinfo.specialization)
        .Arg("pool", tinfo.max_pool)
        .Arg("augmentations", local.augmentations)
        .Arg("subsets", local.membership_subsets)
        .Arg("mapping_steps", local.mapping_steps);
    if (verdict.ok()) span.Arg("contained", *verdict ? "true" : "false");
  }
  return verdict;
}

StatusOr<bool> EquivalentQueries(const Schema& schema,
                                 const ConjunctiveQuery& q1,
                                 const ConjunctiveQuery& q2,
                                 const ContainmentOptions& options,
                                 ContainmentStats* stats) {
  OOCQ_ASSIGN_OR_RETURN(bool forward, Contained(schema, q1, q2, options, stats));
  if (!forward) return false;
  return Contained(schema, q2, q1, options, stats);
}

StatusOr<bool> UnionContained(const Schema& schema, const UnionQuery& m,
                              const UnionQuery& n,
                              const ContainmentOptions& options,
                              ContainmentStats* stats,
                              ContainmentCache* cache) {
  OOCQ_TRACE_SPAN(span, "UnionContained");
  span.Arg("m_disjuncts", static_cast<uint64_t>(m.disjuncts.size()))
      .Arg("n_disjuncts", static_cast<uint64_t>(n.disjuncts.size()));
  OOCQ_METRIC_ADD("containment/union_calls", 1);
  // Thm 4.1 is stated (and true) for unions of terminal positive
  // conjunctive queries; reject anything else.
  for (const UnionQuery* side : {&m, &n}) {
    for (const ConjunctiveQuery& q : side->disjuncts) {
      OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q));
      if (!q.IsTerminal(schema)) {
        return Status::FailedPrecondition(
            "UnionContained requires terminal disjuncts");
      }
      if (!CheckSatisfiable(schema, q).satisfiable) continue;
      OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery normalized,
                            NormalizeTerminalQuery(schema, q));
      if (!normalized.IsPositive()) {
        return Status::FailedPrecondition(
            "UnionContained requires positive disjuncts (Thm 4.1)");
      }
    }
  }

  // Thm 4.1 fan-out: each disjunct of M is tested independently. The
  // verdict is the smallest decisive disjunct index (a "not contained
  // anywhere" or an error), matching the serial in-order scan.
  struct DisjunctResult {
    bool decisive = false;
    bool is_error = false;
    Status error = Status::Ok();
    ContainmentStats stats;
  };
  std::atomic<size_t> first_event{static_cast<size_t>(-1)};
  OOCQ_ASSIGN_OR_RETURN(
      std::vector<DisjunctResult> outcomes,
      (ParallelMap<DisjunctResult>(
          options.parallel, m.disjuncts.size(),
          [&](size_t i) -> StatusOr<DisjunctResult> {
            DisjunctResult result;
            if (i > first_event.load(std::memory_order_acquire)) {
              return result;  // a smaller index already decided
            }
            if (options.cancel != nullptr) {
              Status live = options.cancel->Check();
              if (!live.ok()) {
                result.decisive = true;
                result.is_error = true;
                result.error = std::move(live);
                AtomicMin(first_event, i);
                return result;
              }
            }
            const ConjunctiveQuery& qi = m.disjuncts[i];
            if (!CheckSatisfiable(schema, qi).satisfiable) return result;
            for (const ConjunctiveQuery& pj : n.disjuncts) {
              StatusOr<bool> contained =
                  cache != nullptr
                      ? cache->Contained(qi, pj, &result.stats,
                                         options.cancel, options.budget)
                      : Contained(schema, qi, pj, options, &result.stats);
              if (!contained.ok()) {
                result.decisive = true;
                result.is_error = true;
                result.error = contained.status();
                AtomicMin(first_event, i);
                return result;
              }
              if (*contained) return result;
            }
            result.decisive = true;  // contained in no disjunct of N
            AtomicMin(first_event, i);
            return result;
          })));
  for (const DisjunctResult& outcome : outcomes) {
    if (stats != nullptr) stats->Add(outcome.stats);
  }
  for (const DisjunctResult& outcome : outcomes) {
    if (!outcome.decisive) continue;
    if (outcome.is_error) return outcome.error;
    return false;
  }
  return true;
}

StatusOr<bool> UnionEquivalent(const Schema& schema, const UnionQuery& m,
                               const UnionQuery& n,
                               const ContainmentOptions& options,
                               ContainmentStats* stats,
                               ContainmentCache* cache) {
  OOCQ_ASSIGN_OR_RETURN(bool forward,
                        UnionContained(schema, m, n, options, stats, cache));
  if (!forward) return false;
  return UnionContained(schema, n, m, options, stats, cache);
}

}  // namespace oocq
