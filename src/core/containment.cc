#include "core/containment.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/augmentation.h"
#include "core/derivability.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/equality_graph.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

bool HasAtomKind(const ConjunctiveQuery& query, AtomKind kind) {
  return std::any_of(
      query.atoms().begin(), query.atoms().end(),
      [kind](const Atom& atom) { return atom.kind() == kind; });
}

}  // namespace

StatusOr<std::vector<Atom>> MembershipCandidatePool(
    const Schema& schema, const ConjunctiveQuery& base,
    const ContainmentOptions& options) {
  EqualityGraph graph = EqualityGraph::Build(base);

  // Representative element variables: one per variable equivalence class.
  std::vector<VarId> element_reps;
  {
    std::set<TermId> seen;
    for (VarId v = 0; v < base.num_vars(); ++v) {
      if (seen.insert(graph.Find(graph.VarNode(v))).second) {
        element_reps.push_back(v);
      }
    }
  }
  // Representative set terms: one per (set-variable class, attribute).
  std::vector<std::pair<VarId, std::string>> set_reps;
  {
    std::set<std::pair<TermId, std::string>> seen;
    for (const Atom& atom : base.atoms()) {
      if (atom.kind() != AtomKind::kMembership &&
          atom.kind() != AtomKind::kNonMembership) {
        continue;
      }
      TermId rep = graph.Find(graph.VarNode(atom.set_term().var));
      if (seen.insert({rep, atom.set_term().attr}).second) {
        set_reps.emplace_back(atom.set_term().var, atom.set_term().attr);
      }
    }
  }

  std::vector<Atom> candidates;
  for (VarId element : element_reps) {
    for (const auto& [set_var, attr] : set_reps) {
      Atom candidate = Atom::Membership(element, set_var, attr);
      ConjunctiveQuery extended = base;
      extended.AddAtom(candidate);
      if (!CheckSatisfiable(schema, extended).satisfiable) continue;
      // Skip candidates already derivable: adding them changes nothing.
      bool derivable = false;
      for (const Atom& atom : base.atoms()) {
        if (atom.kind() != AtomKind::kMembership) continue;
        if (graph.Equivalent(graph.VarNode(atom.var()),
                             graph.VarNode(element)) &&
            graph.Equivalent(graph.VarNode(atom.set_term().var),
                             graph.VarNode(set_var)) &&
            atom.set_term().attr == attr) {
          derivable = true;
          break;
        }
      }
      if (derivable) continue;
      candidates.push_back(std::move(candidate));
      if (candidates.size() > options.max_membership_candidates) {
        return Status::ResourceExhausted(
            "more than " + std::to_string(options.max_membership_candidates) +
            " candidate membership atoms (2^|T| subsets would be "
            "enumerated); raise "
            "ContainmentOptions::max_membership_candidates");
      }
    }
  }
  return candidates;
}


StatusOr<bool> Contained(const Schema& schema, const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         const ContainmentOptions& options,
                         ContainmentStats* stats) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q1));
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q2));
  if (!q1.IsTerminal(schema) || !q2.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "Contained requires terminal conjunctive queries; expand with "
        "ExpandToTerminalQueries first");
  }

  if (!CheckSatisfiable(schema, q1).satisfiable) return true;
  if (!CheckSatisfiable(schema, q2).satisfiable) return false;

  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n1, NormalizeTerminalQuery(schema, q1));
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n2, NormalizeTerminalQuery(schema, q2));

  const bool rhs_has_inequality =
      options.force_full_theorem || HasAtomKind(n2, AtomKind::kInequality);
  const bool rhs_has_non_membership =
      options.force_full_theorem ||
      HasAtomKind(n2, AtomKind::kNonMembership);

  MappingConstraints constraints;
  constraints.free_target = n1.free_var();
  constraints.max_steps = options.max_mapping_steps;

  // Checks the Thm 3.1 condition against one consistent augmentation
  // Q1&S, enumerating the subsets W of T when Q2 has non-membership atoms.
  auto check_augmentation =
      [&](const ConjunctiveQuery& base) -> StatusOr<bool> {
    if (stats != nullptr) ++stats->augmentations;
    std::vector<Atom> membership_pool;
    if (rhs_has_non_membership) {
      OOCQ_ASSIGN_OR_RETURN(membership_pool,
                            MembershipCandidatePool(schema, base, options));
    }
    const size_t t_size = membership_pool.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << t_size); ++mask) {
      ConjunctiveQuery target = base;
      for (size_t i = 0; i < t_size; ++i) {
        if (mask & (uint64_t{1} << i)) target.AddAtom(membership_pool[i]);
      }
      if (!CheckSatisfiable(schema, target).satisfiable) continue;
      if (stats != nullptr) {
        ++stats->membership_subsets;
        ++stats->mapping_searches;
      }
      OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                            QueryAnalysis::Create(schema, target));
      MappingResult mapping =
          FindNonContradictoryMapping(schema, n2, analysis, constraints);
      if (stats != nullptr) stats->mapping_steps += mapping.steps;
      if (mapping.exhausted) {
        return Status::ResourceExhausted(
            "mapping search exceeded ContainmentOptions::max_mapping_steps");
      }
      if (!mapping.found()) return false;
    }
    return true;
  };

  if (!rhs_has_inequality) {
    // Cor 3.4 (positive Q2) and Cor 3.2 (no inequalities): S = ∅ only.
    return check_augmentation(n1);
  }

  // Cor 3.3 / Thm 3.1: enumerate every consistent augmentation.
  AugmentationOptions augmentation_options;
  augmentation_options.max_augmentations = options.max_augmentations;
  Status inner_error = Status::Ok();
  StatusOr<bool> outcome = ForEachConsistentAugmentation(
      schema, n1, augmentation_options,
      [&](const ConjunctiveQuery& augmented) -> bool {
        StatusOr<bool> ok = check_augmentation(augmented);
        if (!ok.ok()) {
          inner_error = ok.status();
          return false;
        }
        return *ok;
      });
  if (!inner_error.ok()) return inner_error;
  if (!outcome.ok()) return outcome.status();
  return *outcome;
}

StatusOr<bool> EquivalentQueries(const Schema& schema,
                                 const ConjunctiveQuery& q1,
                                 const ConjunctiveQuery& q2,
                                 const ContainmentOptions& options) {
  OOCQ_ASSIGN_OR_RETURN(bool forward, Contained(schema, q1, q2, options));
  if (!forward) return false;
  return Contained(schema, q2, q1, options);
}

StatusOr<bool> UnionContained(const Schema& schema, const UnionQuery& m,
                              const UnionQuery& n,
                              const ContainmentOptions& options) {
  // Thm 4.1 is stated (and true) for unions of terminal positive
  // conjunctive queries; reject anything else.
  for (const UnionQuery* side : {&m, &n}) {
    for (const ConjunctiveQuery& q : side->disjuncts) {
      OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q));
      if (!q.IsTerminal(schema)) {
        return Status::FailedPrecondition(
            "UnionContained requires terminal disjuncts");
      }
      if (!CheckSatisfiable(schema, q).satisfiable) continue;
      OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery normalized,
                            NormalizeTerminalQuery(schema, q));
      if (!normalized.IsPositive()) {
        return Status::FailedPrecondition(
            "UnionContained requires positive disjuncts (Thm 4.1)");
      }
    }
  }

  for (const ConjunctiveQuery& qi : m.disjuncts) {
    if (!CheckSatisfiable(schema, qi).satisfiable) continue;
    bool contained_somewhere = false;
    for (const ConjunctiveQuery& pj : n.disjuncts) {
      OOCQ_ASSIGN_OR_RETURN(bool contained,
                            Contained(schema, qi, pj, options));
      if (contained) {
        contained_somewhere = true;
        break;
      }
    }
    if (!contained_somewhere) return false;
  }
  return true;
}

StatusOr<bool> UnionEquivalent(const Schema& schema, const UnionQuery& m,
                               const UnionQuery& n,
                               const ContainmentOptions& options) {
  OOCQ_ASSIGN_OR_RETURN(bool forward, UnionContained(schema, m, n, options));
  if (!forward) return false;
  return UnionContained(schema, n, m, options);
}

}  // namespace oocq
