#ifndef OOCQ_CORE_OPTIMIZER_H_
#define OOCQ_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/minimization.h"
#include "core/search_space.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// One pipeline phase's aggregated wall time and work, one row of the
/// Summary() per-phase table.
struct PhaseMetrics {
  /// Phase key: "well_form", "expand", "satisfiability_prune",
  /// "redundancy", "minimize_vars" (positive §4) or "fold_vars" (general).
  std::string name;
  uint64_t ns = 0;     // wall time accumulated by the phase's timer
  uint64_t calls = 0;  // times the phase ran in this pipeline
  std::string work;    // phase-specific work description
};

/// Metrics of one engine run, collected when
/// EngineOptions::observability requests it (`metrics` or `trace`).
struct RunMetrics {
  bool enabled = false;
  /// Phases in pipeline order; only phases that actually ran appear.
  std::vector<PhaseMetrics> phases;
  /// Every named counter the run touched, name-sorted. Work counters are
  /// deterministic across thread counts on the positive pipeline; *.ns
  /// timing counters are not (docs/observability.md).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Everything the optimizer learned about one query.
struct OptimizeReport {
  /// The equivalent search-space-optimal union (for positive inputs);
  /// for general conjunctive inputs, the equivalent reduced union of
  /// core/general_minimization.h (sound, but without the §4 optimality
  /// guarantee — the paper leaves exact general minimization open, §5).
  UnionQuery optimized;
  /// True when the exact §4 minimization applied (positive input).
  bool exact = false;
  SearchSpaceCost original_cost;
  SearchSpaceCost optimized_cost;
  MinimizationReport details;
  /// Aggregate work counters of every containment / self-mapping search
  /// the run performed (also available as details.containment).
  ContainmentStats containment;
  /// Containment-cache traffic of this run (EngineOptions::cache); both
  /// zero when the cache is disabled. Misses equal the distinct
  /// containment decisions computed — deterministic across thread counts.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Entries the cache's entry cap pushed out during this run.
  uint64_t cache_evictions = 0;
  /// Per-phase timing/work and the run's counters; empty (enabled ==
  /// false) unless EngineOptions::observability asked for collection.
  RunMetrics metrics;
  /// Resource-budget usage of the run (EngineOptions::limits); all zero
  /// with budget_enforced == false when no budget governed the run.
  bool budget_enforced = false;
  uint64_t budget_disjuncts = 0;   // Prop 2.1 disjuncts charged
  uint64_t budget_work_units = 0;  // Thm 3.1 subset masks charged

  /// Multi-line human-readable description of the run; includes the
  /// per-phase time/work table when `metrics` was collected.
  std::string Summary(const Schema& schema) const;
};

/// The library facade: owns a schema and drives the full pipeline
/// (well-forming, expansion, satisfiability pruning, redundancy removal,
/// variable minimization) for user queries. Configure parallel fan-out
/// and the shared containment cache through EngineOptions
/// (MinimizationOptions is its historical alias).
class QueryOptimizer {
 public:
  explicit QueryOptimizer(Schema schema, MinimizationOptions options = {})
      : schema_(std::move(schema)), options_(options) {}

  const Schema& schema() const { return schema_; }

  /// Optimizes `query` (any conjunctive query; it is normalized to
  /// well-formed first). Positive queries get the exact §4 minimization;
  /// general conjunctive queries get the equivalent satisfiability-pruned
  /// terminal expansion. All workers of the run share one containment
  /// memo table when options.cache.enabled.
  StatusOr<OptimizeReport> Optimize(const ConjunctiveQuery& query) const;

  /// Parses and optimizes a query written in the calculus-like syntax.
  StatusOr<OptimizeReport> OptimizeText(std::string_view text) const;

  /// Containment Q1 ⊆ Q2 of two (arbitrary) conjunctive queries whose
  /// terminal expansions are positive: both sides are normalized, expanded
  /// and compared with Thm 4.1. For terminal queries with negative atoms
  /// use Contained() directly. `stats` (optional) accumulates the work
  /// counters of the underlying containment tests.
  StatusOr<bool> IsContained(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2,
                             ContainmentStats* stats = nullptr) const;

  /// IsContained in both directions.
  StatusOr<bool> IsEquivalent(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              ContainmentStats* stats = nullptr) const;

 private:
  StatusOr<UnionQuery> ExpandToUnion(const ConjunctiveQuery& query) const;
  /// IsContained body sharing one per-call containment cache, so
  /// IsEquivalent's two directions reuse each other's decisions.
  StatusOr<bool> IsContainedWithCache(const ConjunctiveQuery& q1,
                                      const ConjunctiveQuery& q2,
                                      ContainmentStats* stats,
                                      const EngineOptions& opts,
                                      ContainmentCache* cache) const;

  Schema schema_;
  MinimizationOptions options_;
};

}  // namespace oocq

#endif  // OOCQ_CORE_OPTIMIZER_H_
