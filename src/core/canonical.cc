#include "core/canonical.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

namespace oocq {

namespace {

/// Deterministic text encoding of a term under a variable renumbering.
std::string EncodeTerm(const Term& term, const std::vector<int>& index) {
  std::string out = std::to_string(index[term.var]);
  if (term.is_attribute()) {
    out += '.';
    out += term.attr;
  }
  return out;
}

/// Deterministic text encoding of an atom under a variable renumbering.
std::string EncodeAtom(const Atom& atom, const std::vector<int>& index) {
  std::string out = std::to_string(static_cast<int>(atom.kind()));
  out += '|';
  switch (atom.kind()) {
    case AtomKind::kRange:
    case AtomKind::kNonRange: {
      out += std::to_string(index[atom.var()]);
      for (ClassId c : atom.classes()) {
        out += ',';
        out += std::to_string(c);
      }
      break;
    }
    case AtomKind::kConstant:
      out += std::to_string(index[atom.var()]);
      out += '#';
      out += ConstantToString(atom.constant());
      break;
    default: {
      // Equality-style atoms are symmetric: use the smaller encoding
      // first so renumbering cannot flip the comparison.
      std::string lhs = EncodeTerm(atom.lhs(), index);
      std::string rhs = EncodeTerm(atom.rhs(), index);
      if (atom.kind() == AtomKind::kEquality ||
          atom.kind() == AtomKind::kInequality) {
        if (rhs < lhs) std::swap(lhs, rhs);
      }
      out += lhs;
      out += '~';
      out += rhs;
      break;
    }
  }
  return out;
}

/// Full query encoding: free-variable index + sorted unique atom list.
std::string EncodeQuery(const ConjunctiveQuery& query,
                        const std::vector<int>& index) {
  std::vector<std::string> atoms;
  atoms.reserve(query.atoms().size());
  for (const Atom& atom : query.atoms()) {
    atoms.push_back(EncodeAtom(atom, index));
  }
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  std::string out = "f" + std::to_string(index[query.free_var()]);
  for (const std::string& atom : atoms) {
    out += ';';
    out += atom;
  }
  return out;
}

/// Color refinement: stable partition of the variables by structural
/// role. Returns the color id per variable.
std::vector<int> RefineColors(const ConjunctiveQuery& query) {
  const size_t n = query.num_vars();
  std::vector<std::string> color(n);
  for (VarId v = 0; v < n; ++v) {
    color[v] = v == query.free_var() ? "F" : "B";
    // All range atoms (robust even for non-well-formed inputs).
    std::vector<std::string> ranges;
    for (const Atom& atom : query.atoms()) {
      if (atom.kind() != AtomKind::kRange || atom.var() != v) continue;
      std::string r;
      for (ClassId c : atom.classes()) r += std::to_string(c) + ",";
      ranges.push_back(std::move(r));
    }
    std::sort(ranges.begin(), ranges.end());
    for (const std::string& r : ranges) color[v] += "[" + r + "]";
    // Constant bindings are part of the initial structural color.
    std::vector<std::string> constants;
    for (const Atom& atom : query.atoms()) {
      if (atom.kind() == AtomKind::kConstant && atom.var() == v) {
        constants.push_back(ConstantToString(atom.constant()));
      }
    }
    std::sort(constants.begin(), constants.end());
    for (const std::string& c : constants) color[v] += "#" + c;
  }

  for (size_t round = 0; round < n; ++round) {
    std::vector<std::string> next(n);
    for (VarId v = 0; v < n; ++v) {
      // Signature: for each incident atom, its kind, this variable's
      // role, the attribute names, and the other endpoint's color.
      std::vector<std::string> signatures;
      for (const Atom& atom : query.atoms()) {
        if (atom.kind() == AtomKind::kRange ||
            atom.kind() == AtomKind::kNonRange ||
            atom.kind() == AtomKind::kConstant) {
          continue;  // Already in the initial color.
        }
        const Term& lhs = atom.lhs();
        const Term& rhs = atom.rhs();
        for (const auto& [self, other] :
             {std::make_pair(lhs, rhs), std::make_pair(rhs, lhs)}) {
          if (self.var != v) continue;
          signatures.push_back(
              std::to_string(static_cast<int>(atom.kind())) + ":" +
              self.attr + ">" + other.attr + "@" + color[other.var]);
        }
      }
      std::sort(signatures.begin(), signatures.end());
      next[v] = color[v];
      for (const std::string& s : signatures) next[v] += "{" + s + "}";
    }
    // Compress to keep strings bounded.
    std::map<std::string, int> ids;
    for (VarId v = 0; v < n; ++v) ids.emplace(next[v], 0);
    int id = 0;
    for (auto& [key, value] : ids) value = id++;
    std::vector<std::string> compressed(n);
    bool changed = false;
    for (VarId v = 0; v < n; ++v) {
      compressed[v] = "c" + std::to_string(ids[next[v]]);
      // Track whether the partition is finer than before by comparing
      // color-class counts.
    }
    std::map<std::string, int> before, after;
    for (VarId v = 0; v < n; ++v) {
      ++before[color[v]];
      ++after[compressed[v]];
    }
    changed = before.size() != after.size();
    color = std::move(compressed);
    if (!changed && round > 0) break;
  }

  std::map<std::string, int> ids;
  for (VarId v = 0; v < n; ++v) ids.emplace(color[v], 0);
  int id = 0;
  for (auto& [key, value] : ids) value = id++;
  std::vector<int> result(n);
  for (VarId v = 0; v < n; ++v) result[v] = ids[color[v]];
  return result;
}

}  // namespace

ConjunctiveQuery CanonicalizeQuery(const ConjunctiveQuery& query,
                                   uint64_t max_tie_permutations) {
  const size_t n = query.num_vars();
  std::vector<int> colors = RefineColors(query);

  // Variables grouped by color, groups in color order.
  std::map<int, std::vector<VarId>> groups;
  for (VarId v = 0; v < n; ++v) groups[colors[v]].push_back(v);

  // Estimate the tie-breaking search space.
  uint64_t permutations = 1;
  bool over_budget = false;
  for (const auto& [color, members] : groups) {
    for (size_t k = 2; k <= members.size(); ++k) {
      if (permutations > max_tie_permutations / k) {
        over_budget = true;
        break;
      }
      permutations *= k;
    }
    if (over_budget) break;
  }

  // Order = concatenation of groups; search permutations within groups
  // for the minimal encoding (skipped when over budget).
  std::vector<VarId> best_order;
  for (const auto& [color, members] : groups) {
    best_order.insert(best_order.end(), members.begin(), members.end());
  }
  auto encode_for = [&query](const std::vector<VarId>& order) {
    std::vector<int> index(query.num_vars());
    for (size_t i = 0; i < order.size(); ++i) index[order[i]] = static_cast<int>(i);
    return EncodeQuery(query, index);
  };
  if (!over_budget && permutations > 1) {
    std::string best_encoding = encode_for(best_order);
    std::vector<std::vector<VarId>> group_list;
    for (auto& [color, members] : groups) group_list.push_back(members);
    // Recursive product of per-group permutations.
    std::vector<VarId> current;
    std::function<void(size_t)> recurse = [&](size_t g) {
      if (g == group_list.size()) {
        std::string encoding = encode_for(current);
        if (encoding < best_encoding) {
          best_encoding = encoding;
          best_order = current;
        }
        return;
      }
      std::vector<VarId> perm = group_list[g];
      std::sort(perm.begin(), perm.end());
      do {
        size_t before = current.size();
        current.insert(current.end(), perm.begin(), perm.end());
        recurse(g + 1);
        current.resize(before);
      } while (std::next_permutation(perm.begin(), perm.end()));
    };
    recurse(0);
  }

  // Materialize: variables renamed v0..v{n-1} in canonical order.
  std::vector<int> index(n);
  for (size_t i = 0; i < n; ++i) index[best_order[i]] = static_cast<int>(i);
  ConjunctiveQuery result;
  for (size_t i = 0; i < n; ++i) {
    result.AddVariable("v" + std::to_string(i));
  }
  result.set_free_var(static_cast<VarId>(index[query.free_var()]));
  std::vector<VarId> mapping(n);
  for (VarId v = 0; v < n; ++v) mapping[v] = static_cast<VarId>(index[v]);
  std::vector<Atom> atoms;
  for (const Atom& atom : query.atoms()) {
    atoms.push_back(atom.MapVariables(mapping));
  }
  std::vector<int> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<int>(i);
  std::sort(atoms.begin(), atoms.end(), [&identity](const Atom& a, const Atom& b) {
    return EncodeAtom(a, identity) < EncodeAtom(b, identity);
  });
  for (Atom& atom : atoms) result.AddAtom(std::move(atom));
  result.DeduplicateAtoms();
  return result;
}

std::string CanonicalKey(const ConjunctiveQuery& query,
                         uint64_t max_tie_permutations) {
  ConjunctiveQuery canonical = CanonicalizeQuery(query, max_tie_permutations);
  std::vector<int> identity(canonical.num_vars());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = static_cast<int>(i);
  return EncodeQuery(canonical, identity);
}

}  // namespace oocq
