#ifndef OOCQ_CORE_ENGINE_OPTIONS_H_
#define OOCQ_CORE_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "core/containment.h"
#include "core/expansion.h"
#include "support/resource_budget.h"
#include "support/thread_pool.h"

namespace oocq {

class TraceLog;

/// Observability sinks for a pipeline run. Both default off so an
/// unconfigured run is byte-identical to the pre-observability engine
/// (and pays one relaxed atomic load per instrumentation site).
struct ObservabilityOptions {
  /// When non-null, the pipeline entry points (Optimize, IsContained,
  /// IsEquivalent) install a TraceSession around the run and spans from
  /// every layer land here. Finalized when the entry point returns.
  /// One session is active at a time process-wide (first wins).
  TraceLog* trace = nullptr;
  /// Collect named counters/histograms into OptimizeReport::metrics and
  /// render the per-phase table in Summary(). Implied by `trace`.
  bool metrics = false;
};

/// Sizing knobs for the shared containment memo table the optimizer
/// pipeline threads through its fan-out (core/containment_cache.h).
struct CacheOptions {
  /// Memoize Contained() decisions across the pipeline. Disabling falls
  /// back to recomputing every pair.
  bool enabled = true;
  /// Total entry cap across all shards (0 = unlimited). When a shard is
  /// full its oldest entry is evicted first.
  size_t max_entries = 1 << 20;
  /// Number of independently locked shards; contention drops roughly
  /// linearly in this. Values < 1 are treated as 1.
  uint32_t num_shards = 16;
};

/// The unified option set for the engine: one struct configures the whole
/// §3/§4 pipeline — containment limits, Prop 2.1 expansion caps, parallel
/// fan-out, and the shared containment cache. `MinimizationOptions`
/// (core/minimization.h) is an alias, so existing call sites compile
/// unchanged; new code should say EngineOptions.
///
/// `parallel` governs the pipeline-level fan-outs (the containment matrix
/// of RemoveRedundantDisjuncts, per-disjunct pruning/minimization, the
/// per-disjunct tests of UnionContained). The pipeline entry points copy
/// it into `containment.parallel` so the Thm 3.1 subset enumeration inside
/// Contained() sees the same knobs; set `containment.parallel` directly
/// only when calling Contained() outside the pipeline.
struct EngineOptions {
  ContainmentOptions containment;
  ExpansionOptions expansion;
  ParallelOptions parallel;
  CacheOptions cache;
  ObservabilityOptions observability;
  /// Master switch for the query-compilation subsystem (src/compile/):
  /// the bytecode VM fast path in Evaluate/EvaluateIndexed and the
  /// compiled Thm 3.1 subset scan. Propagated into
  /// containment.enable_compilation by WithPropagatedParallelism, and
  /// into EvalOptions by the service layer. `--no-compile` on the CLIs
  /// maps here for A/B runs; results are identical either way.
  bool enable_compilation = true;
  /// Per-run resource ceilings (support/resource_budget.h). When any limit
  /// is set, each pipeline entry point (Optimize, IsContained,
  /// IsEquivalent) installs a run-scoped ResourceBudget into
  /// containment.budget / expansion.budget, chained under any budget the
  /// caller already placed there (e.g. a service-wide one) — so both the
  /// per-run cap and the aggregate cap are enforced, and overruns surface
  /// as retryable kResourceExhausted.
  ResourceLimits limits;
};

/// Returns `options` with `parallel` propagated into the containment and
/// expansion sub-structs — what the pipeline entry points apply on entry.
inline EngineOptions WithPropagatedParallelism(EngineOptions options) {
  options.containment.parallel = options.parallel;
  options.expansion.parallel = options.parallel;
  options.containment.enable_compilation = options.enable_compilation;
  return options;
}

}  // namespace oocq

#endif  // OOCQ_CORE_ENGINE_OPTIONS_H_
