#ifndef OOCQ_CORE_CONTAINMENT_H_
#define OOCQ_CORE_CONTAINMENT_H_

#include <cstdint>

#include "query/query.h"
#include "schema/schema.h"
#include "support/cancellation.h"
#include "support/resource_budget.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace oocq {

/// Resource limits for the containment test. The general test (Thm 3.1)
/// enumerates consistent augmentations × membership-atom subsets ×
/// mapping-search steps; each axis is capped and overruns surface as
/// ResourceExhausted rather than unbounded work.
struct ContainmentOptions {
  uint64_t max_mapping_steps = 10'000'000;
  uint64_t max_augmentations = 100'000;
  /// Cap on |T|, the deduplicated candidate membership atoms (Thm 3.1
  /// enumerates all 2^|T| subsets W).
  uint32_t max_membership_candidates = 24;
  /// Ablation switch: always run the full Thm 3.1 enumeration (all
  /// consistent augmentations × all membership subsets) even when Q2's
  /// atom kinds admit a Cor 3.2–3.4 fast path. The outcome is identical;
  /// bench_ablation measures what the fast paths save.
  bool force_full_theorem = false;
  /// Use the compiled subset scan (src/compile/mask_scan.h) for the
  /// 2^|T| membership-subset axis: one mapping enumeration plus a
  /// word-parallel bitmask coverage test instead of a mapping search per
  /// subset. Verdicts, statuses, and the membership_subsets counters are
  /// identical to the interpreted scan (which remains the fallback for
  /// shapes the compiled scan cannot prove safe).
  bool enable_compilation = true;
  /// Fan-out knobs for the 2^|T| membership-subset enumeration inside
  /// Contained() and the per-disjunct tests of UnionContained(). Default
  /// serial; the pipeline entry points overwrite this with
  /// EngineOptions::parallel (core/engine_options.h). Verdicts are
  /// schedule-independent; only the work counters may differ when an
  /// early exit races (docs/parallelism.md).
  ParallelOptions parallel;
  /// Cooperative cancellation (support/cancellation.h), polled between
  /// independent work items — per membership-subset mask, per
  /// augmentation, per disjunct test, per self-mapping search. When the
  /// token trips, the test aborts with its retryable status
  /// (kDeadlineExceeded / kUnavailable) instead of finishing the scan;
  /// every fan-out worker polls the same token, so one expiry drains the
  /// whole region. Null (the default) disables polling. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Optional shared budget, charged one subset work unit per membership
  /// mask scanned — the same cadence the cancellation token is polled at.
  /// Unlike max_membership_candidates (a per-call structural cap), a
  /// budget meters aggregate work across the requests sharing it and
  /// trips with retryable kResourceExhausted. Not owned; may be null.
  ResourceBudget* budget = nullptr;
};

/// Work counters filled by Contained() when non-null (benches E4/E8).
/// Under parallel execution counters measure the work actually done:
/// identical to the serial run except on early-exit paths, where
/// cancelled workers may have completed extra units first.
struct ContainmentStats {
  uint64_t augmentations = 0;
  /// Membership-subset masks actually tested (a mapping search ran, or
  /// the compiled scan decided them). Masks enumerated but never tested
  /// land in membership_subsets_skipped instead.
  uint64_t membership_subsets = 0;
  /// Masks enumerated but not tested: unsatisfiable targets, masks
  /// behind an abort (budget, cancellation, error), and masks after a
  /// decisive refutation. membership_subsets + membership_subsets_skipped
  /// is the full 2^|T| enumeration the scan was asked for.
  uint64_t membership_subsets_skipped = 0;
  uint64_t mapping_searches = 0;
  uint64_t mapping_steps = 0;
  /// Containment-cache traffic of the decisions this call routed through
  /// a ContainmentCache (both zero when no cache was involved). Misses
  /// equal the distinct decisions computed — deterministic across thread
  /// counts on the positive pipeline (docs/parallelism.md).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// Accumulates `other` into this (fan-out workers aggregate task-local
  /// counters through this).
  void Add(const ContainmentStats& other) {
    augmentations += other.augmentations;
    membership_subsets += other.membership_subsets;
    membership_subsets_skipped += other.membership_subsets_skipped;
    mapping_searches += other.mapping_searches;
    mapping_steps += other.mapping_steps;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

/// Decides Q1 ⊆ Q2 for well-formed terminal conjunctive queries over
/// `schema`. Implements Thm 3.1, automatically specializing by Q2's atom
/// kinds: positive Q2 → single mapping search (Cor 3.4); Q2 without
/// non-membership atoms → augmentations only (Cor 3.3); Q2 without
/// inequality atoms → membership subsets only (Cor 3.2). An unsatisfiable
/// Q1 is contained in everything; a satisfiable Q1 is never contained in
/// an unsatisfiable Q2.
StatusOr<bool> Contained(const Schema& schema, const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         const ContainmentOptions& options = {},
                         ContainmentStats* stats = nullptr);

/// The pool T of Thm 3.1 for a (possibly augmented) satisfiable terminal
/// target query: one candidate membership atom per (element equivalence
/// class, set-term equivalence class) pair that keeps the query
/// satisfiable when added, excluding already-derivable ones. Exposed for
/// the explanation tooling and the benches; Contained() enumerates all
/// 2^|T| subsets of this pool.
StatusOr<std::vector<Atom>> MembershipCandidatePool(
    const Schema& schema, const ConjunctiveQuery& base,
    const ContainmentOptions& options = {});

/// Q1 ≡ Q2: containment in both directions.
StatusOr<bool> EquivalentQueries(const Schema& schema,
                                 const ConjunctiveQuery& q1,
                                 const ConjunctiveQuery& q2,
                                 const ContainmentOptions& options = {},
                                 ContainmentStats* stats = nullptr);

class ContainmentCache;

/// Thm 4.1: for unions of terminal *positive* conjunctive queries,
/// M ⊆ N iff every satisfiable disjunct of M is contained in some disjunct
/// of N. Returns FailedPrecondition when a satisfiable disjunct is not
/// positive or not terminal (the componentwise characterization does not
/// hold for general queries). The per-disjunct tests are independent and
/// fan out over options.parallel; the verdict is schedule-independent.
/// When `cache` is non-null the per-disjunct tests route through it (its
/// ContainmentOptions govern those decisions) and its hit/miss traffic
/// lands in `stats`.
StatusOr<bool> UnionContained(const Schema& schema, const UnionQuery& m,
                              const UnionQuery& n,
                              const ContainmentOptions& options = {},
                              ContainmentStats* stats = nullptr,
                              ContainmentCache* cache = nullptr);

/// M ≡ N for unions of terminal positive conjunctive queries.
StatusOr<bool> UnionEquivalent(const Schema& schema, const UnionQuery& m,
                               const UnionQuery& n,
                               const ContainmentOptions& options = {},
                               ContainmentStats* stats = nullptr,
                               ContainmentCache* cache = nullptr);

}  // namespace oocq

#endif  // OOCQ_CORE_CONTAINMENT_H_
