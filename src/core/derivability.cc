#include "core/derivability.h"

#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

StatusOr<QueryAnalysis> QueryAnalysis::Create(const Schema& schema,
                                              const ConjunctiveQuery& query) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "QueryAnalysis requires a terminal conjunctive query");
  }
  SatisfiabilityResult sat = CheckSatisfiable(schema, query);
  if (!sat.satisfiable) {
    return Status::FailedPrecondition(
        "QueryAnalysis requires a satisfiable query: " + sat.reason);
  }

  QueryAnalysis analysis(query, EqualityGraph::Build(query));
  analysis.range_class_.resize(query.num_vars());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    analysis.range_class_[v] = query.RangeClassOf(v);
  }
  const EqualityGraph& graph = analysis.graph_;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kMembership ||
        atom.kind() == AtomKind::kNonMembership) {
      TermId set_var_rep = graph.Find(graph.VarNode(atom.set_term().var));
      analysis.set_term_index_.emplace(set_var_rep, atom.set_term().attr);
      if (atom.kind() == AtomKind::kMembership) {
        analysis.membership_index_.emplace(graph.Find(graph.VarNode(atom.var())),
                                           set_var_rep, atom.set_term().attr);
      }
    } else if (atom.kind() == AtomKind::kConstant) {
      // Unique per class by satisfiability condition (h).
      analysis.constant_index_.emplace(graph.Find(graph.VarNode(atom.var())),
                                       atom.constant());
    }
  }
  return analysis;
}

bool QueryAnalysis::DerivesConstant(VarId x, const ConstantValue& value) const {
  const ConstantValue* bound = ConstantOfClass(x);
  return bound != nullptr && *bound == value;
}

const ConstantValue* QueryAnalysis::ConstantOfClass(VarId x) const {
  auto it = constant_index_.find(graph_.Find(graph_.VarNode(x)));
  return it == constant_index_.end() ? nullptr : &it->second;
}

TermId QueryAnalysis::ObjectTermClassRep(const Term& t) const {
  TermId var_node = graph_.VarNode(t.var);
  if (!t.is_attribute()) return graph_.Find(var_node);
  for (VarId s : graph_.ClassVariables(var_node)) {
    TermId node = graph_.FindTermId(Term::Attr(s, t.attr));
    if (node != kInvalidTermId && graph_.IsObjectTerm(node)) {
      // All s.attr nodes for s ∈ [t.var] are congruent, so the first hit
      // determines the class.
      return graph_.Find(node);
    }
  }
  return kInvalidTermId;
}

bool QueryAnalysis::DerivesEquality(const Term& lhs, const Term& rhs) const {
  TermId lrep = ObjectTermClassRep(lhs);
  TermId rrep = ObjectTermClassRep(rhs);
  return lrep != kInvalidTermId && lrep == rrep;
}

bool QueryAnalysis::DerivesMembership(VarId x, VarId y,
                                      const std::string& attr) const {
  return membership_index_.count(std::make_tuple(
             graph_.Find(graph_.VarNode(x)), graph_.Find(graph_.VarNode(y)),
             attr)) > 0;
}

bool QueryAnalysis::NotContradictsInequality(const Term& lhs,
                                             const Term& rhs) const {
  TermId lrep = ObjectTermClassRep(lhs);
  TermId rrep = ObjectTermClassRep(rhs);
  if (lrep == kInvalidTermId || rrep == kInvalidTermId) return false;
  // Q & {lhs != rhs} is satisfiable iff the operands are in different
  // equivalence classes (condition (e)) that are not forced equal by
  // identical constant bindings (condition (e2) of the extension).
  // Normalization merges same-constant classes, so the second check only
  // fires on non-normalized targets.
  if (lrep == rrep) return false;
  auto lconst = constant_index_.find(lrep);
  auto rconst = constant_index_.find(rrep);
  if (lconst != constant_index_.end() && rconst != constant_index_.end() &&
      lconst->second == rconst->second) {
    return false;
  }
  return true;
}

bool QueryAnalysis::HasSetTerm(VarId y, const std::string& attr) const {
  return set_term_index_.count(std::make_pair(
             graph_.Find(graph_.VarNode(y)), attr)) > 0;
}

bool QueryAnalysis::NotContradictsNonMembership(VarId x, VarId y,
                                                const std::string& attr) const {
  // Q & {x notin t.attr} is satisfiable iff the set term exists (which the
  // definition requires — an unconstrained set object could contain x, or
  // be null) and the membership is not derivable (condition (f)).
  return HasSetTerm(y, attr) && !DerivesMembership(x, y, attr);
}

}  // namespace oocq
