#ifndef OOCQ_CORE_EXPANSION_H_
#define OOCQ_CORE_EXPANSION_H_

#include <cstdint>

#include "query/query.h"
#include "schema/schema.h"
#include "support/resource_budget.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace oocq {

/// Options for the terminal expansion.
struct ExpansionOptions {
  /// Cap on the product of per-variable terminal-class choices.
  uint64_t max_disjuncts = 1'000'000;
  /// Optional shared budget; the expansion charges its raw disjunct count
  /// before materializing any (kResourceExhausted on overrun). Unlike
  /// max_disjuncts — a per-call cap — a budget can be shared across the
  /// requests of a session or a whole service. Not owned; may be null.
  ResourceBudget* budget = nullptr;
  /// Drop unsatisfiable disjuncts and normalize the satisfiable ones
  /// (remove non-range atoms etc.). Disable to obtain the raw Prop 2.1
  /// expansion.
  bool prune_unsatisfiable = true;
  /// Fan-out knobs for the per-combination satisfiability pruning; each
  /// Prop 2.1 combination is checked independently and the surviving
  /// disjuncts keep enumeration order. Default serial; the pipeline entry
  /// points overwrite this with EngineOptions::parallel.
  ParallelOptions parallel;
};

/// Statistics about one expansion (reported by the minimizer).
struct ExpansionStats {
  uint64_t raw_disjuncts = 0;         // product of range-choice counts
  uint64_t satisfiable_disjuncts = 0; // after pruning (== raw when disabled)
};

/// Prop 2.1: converts a well-formed conjunctive query into an equivalent
/// union of terminal conjunctive queries. Every variable's range atom
/// x ∈ C1∨…∨Cn is replaced, in all combinations, by x ∈ E for a terminal
/// descendant E of some Ci (the Terminal Class Partitioning Assumption
/// makes the union equivalent). Non-range atoms are evaluated per
/// combination during normalization.
StatusOr<UnionQuery> ExpandToTerminalQueries(const Schema& schema,
                                             const ConjunctiveQuery& query,
                                             const ExpansionOptions& options = {},
                                             ExpansionStats* stats = nullptr);

}  // namespace oocq

#endif  // OOCQ_CORE_EXPANSION_H_
