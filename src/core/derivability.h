#ifndef OOCQ_CORE_DERIVABILITY_H_
#define OOCQ_CORE_DERIVABILITY_H_

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "query/equality_graph.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Precomputed view of a satisfiable, well-formed *terminal* conjunctive
/// query: its equality graph E(Q) plus O(1) indices for the derivability
/// (Q ⊢ A) and non-contradiction relations of §3.1. This is the target
/// side of every non-contradictory-mapping search.
class QueryAnalysis {
 public:
  /// Precondition: `query` is well-formed, terminal and satisfiable
  /// (checked; returns FailedPrecondition otherwise). The query should be
  /// normalized (NormalizeTerminalQuery) when used as a containment
  /// target.
  static StatusOr<QueryAnalysis> Create(const Schema& schema,
                                        const ConjunctiveQuery& query);

  const ConjunctiveQuery& query() const { return query_; }
  const EqualityGraph& graph() const { return graph_; }

  /// The terminal class of variable v (from its unique range atom).
  ClassId range_class(VarId v) const { return range_class_[v]; }

  /// Q ⊢ x ∈ C: the atom is literally present, i.e. C is x's range class.
  bool DerivesRange(VarId x, ClassId c) const { return range_class_[x] == c; }

  /// Q ⊢ lhs = rhs: some representatives of the operand terms are object
  /// terms of Q lying in one equivalence class.
  bool DerivesEquality(const Term& lhs, const Term& rhs) const;

  /// Q ⊢ x ∈ y.attr: some s ∈ [x], t ∈ [y] have the atom `s in t.attr`.
  bool DerivesMembership(VarId x, VarId y, const std::string& attr) const;

  /// Q ⊢ x = <literal>: some s ∈ [x] carries a kConstant atom with this
  /// exact value (the constants extension).
  bool DerivesConstant(VarId x, const ConstantValue& value) const;

  /// The constant bound to x's equivalence class, or nullptr.
  const ConstantValue* ConstantOfClass(VarId x) const;

  /// Q does not contradict lhs ≠ rhs: both operands exist as object terms
  /// of Q (up to equivalence) and adding the inequality stays satisfiable.
  bool NotContradictsInequality(const Term& lhs, const Term& rhs) const;

  /// Q does not contradict x ∉ y.attr: some t ∈ [y] has t.attr as a set
  /// term of Q and adding the non-membership stays satisfiable.
  bool NotContradictsNonMembership(VarId x, VarId y,
                                   const std::string& attr) const;

  /// The representative of the equivalence class of f(s) for s ∈ [t.var],
  /// provided f(s) is an object term node of Q for some such s;
  /// kInvalidTermId otherwise. For a plain variable term this is simply
  /// its representative (variables are always object terms).
  TermId ObjectTermClassRep(const Term& t) const;

  /// Whether some t ∈ [y] has t.attr occurring as a set term of Q.
  bool HasSetTerm(VarId y, const std::string& attr) const;

 private:
  QueryAnalysis(const ConjunctiveQuery& query, EqualityGraph graph)
      : query_(query), graph_(std::move(graph)) {}

  ConjunctiveQuery query_;
  EqualityGraph graph_;
  std::vector<ClassId> range_class_;
  /// (Find(element var), Find(set var), attr) of every membership atom.
  std::set<std::tuple<TermId, TermId, std::string>> membership_index_;
  /// (Find(set var), attr) of every set-term node.
  std::set<std::pair<TermId, std::string>> set_term_index_;
  /// Find(var) -> the constant its class is bound to (unique when
  /// satisfiable).
  std::map<TermId, ConstantValue> constant_index_;
};

}  // namespace oocq

#endif  // OOCQ_CORE_DERIVABILITY_H_
