#include "core/general_minimization.h"

#include "core/containment.h"
#include "core/derivability.h"
#include "core/expansion.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

StatusOr<ConjunctiveQuery> FoldTerminalQueryVerified(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "FoldTerminalQueryVerified requires a terminal query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));

  bool progress = true;
  while (progress) {
    progress = false;
    OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                          QueryAnalysis::Create(schema, current));
    for (VarId v = 0; v < current.num_vars() && !progress; ++v) {
      MappingConstraints constraints;
      constraints.forbidden_target = v;
      constraints.free_target = current.free_var();
      constraints.max_steps = options.containment.max_mapping_steps;
      MappingResult mapping =
          FindNonContradictoryMapping(schema, current, analysis, constraints);
      if (mapping.exhausted) {
        return Status::ResourceExhausted(
            "self-mapping search exceeded max_mapping_steps");
      }
      if (!mapping.found()) continue;

      ConjunctiveQuery folded = ApplyVariableMapping(current, *mapping.image);
      // A non-contradictory self-mapping guarantees equivalence only for
      // positive queries (Thm 4.3); for general queries, verify.
      bool accept;
      if (current.IsPositive()) {
        accept = true;
      } else {
        OOCQ_ASSIGN_OR_RETURN(
            accept,
            EquivalentQueries(schema, current, folded, options.containment));
      }
      if (!accept) continue;
      if (removed != nullptr) {
        *removed += current.num_vars() - folded.num_vars();
      }
      current = std::move(folded);
      progress = true;
    }
  }
  return current;
}

StatusOr<ConjunctiveQuery> RemoveRedundantAtoms(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "RemoveRedundantAtoms requires a terminal query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));

  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < current.atoms().size(); ++i) {
      if (current.atoms()[i].kind() == AtomKind::kRange) continue;
      ConjunctiveQuery reduced;
      for (VarId v = 0; v < current.num_vars(); ++v) {
        reduced.AddVariable(current.var_name(v));
      }
      reduced.set_free_var(current.free_var());
      for (size_t j = 0; j < current.atoms().size(); ++j) {
        if (j != i) reduced.AddAtom(current.atoms()[j]);
      }
      if (!CheckWellFormed(schema, reduced).ok()) continue;
      // Removal only weakens: redundant iff (Q - A) ⊆ Q.
      OOCQ_ASSIGN_OR_RETURN(
          bool contained,
          Contained(schema, reduced, current, options.containment));
      if (!contained) continue;
      current = std::move(reduced);
      if (removed != nullptr) ++*removed;
      progress = true;
      break;
    }
  }
  return current;
}

StatusOr<GeneralMinimizationReport> MinimizeConjunctiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));

  GeneralMinimizationReport report;

  ExpansionStats expansion_stats;
  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery expanded,
      ExpandToTerminalQueries(schema, query, options.expansion,
                              &expansion_stats));
  report.raw_disjuncts = expansion_stats.raw_disjuncts;
  report.satisfiable_disjuncts = expansion_stats.satisfiable_disjuncts;

  // RemoveRedundantDisjuncts uses the general Contained test, which is
  // sound for any terminal conjunctive disjuncts.
  OOCQ_ASSIGN_OR_RETURN(UnionQuery nonredundant,
                        RemoveRedundantDisjuncts(schema, expanded, options));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  for (ConjunctiveQuery& disjunct : nonredundant.disjuncts) {
    OOCQ_ASSIGN_OR_RETURN(
        ConjunctiveQuery folded,
        FoldTerminalQueryVerified(schema, disjunct, options,
                                  &report.variables_removed));
    report.minimized.disjuncts.push_back(std::move(folded));
  }
  return report;
}

}  // namespace oocq
