#include "core/general_minimization.h"

#include <utility>
#include <vector>

#include "core/containment.h"
#include "core/containment_cache.h"
#include "core/derivability.h"
#include "core/expansion.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace oocq {

StatusOr<ConjunctiveQuery> FoldTerminalQueryVerified(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed,
    ContainmentStats* stats) {
  OOCQ_TRACE_SPAN(span, "FoldTerminalQueryVerified");
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "FoldTerminalQueryVerified requires a terminal query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));

  span.Arg("vars_in", static_cast<uint64_t>(current.num_vars()));

  bool progress = true;
  while (progress) {
    progress = false;
    OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                          QueryAnalysis::Create(schema, current));
    for (VarId v = 0; v < current.num_vars() && !progress; ++v) {
      MappingConstraints constraints;
      constraints.forbidden_target = v;
      constraints.free_target = current.free_var();
      constraints.max_steps = options.containment.max_mapping_steps;
      MappingResult mapping =
          FindNonContradictoryMapping(schema, current, analysis, constraints);
      if (stats != nullptr) {
        ++stats->mapping_searches;
        stats->mapping_steps += mapping.steps;
      }
      if (mapping.exhausted) {
        return Status::ResourceExhausted(
            "self-mapping search exceeded max_mapping_steps");
      }
      if (!mapping.found()) continue;

      ConjunctiveQuery folded = ApplyVariableMapping(current, *mapping.image);
      // A non-contradictory self-mapping guarantees equivalence only for
      // positive queries (Thm 4.3); for general queries, verify.
      bool accept;
      if (current.IsPositive()) {
        accept = true;
      } else {
        OOCQ_ASSIGN_OR_RETURN(
            accept, EquivalentQueries(schema, current, folded,
                                      options.containment, stats));
      }
      if (!accept) continue;
      if (removed != nullptr) {
        *removed += current.num_vars() - folded.num_vars();
      }
      current = std::move(folded);
      progress = true;
    }
  }
  span.Arg("vars_out", static_cast<uint64_t>(current.num_vars()));
  return current;
}

StatusOr<ConjunctiveQuery> RemoveRedundantAtoms(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "RemoveRedundantAtoms requires a terminal query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));

  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < current.atoms().size(); ++i) {
      if (current.atoms()[i].kind() == AtomKind::kRange) continue;
      ConjunctiveQuery reduced;
      for (VarId v = 0; v < current.num_vars(); ++v) {
        reduced.AddVariable(current.var_name(v));
      }
      reduced.set_free_var(current.free_var());
      for (size_t j = 0; j < current.atoms().size(); ++j) {
        if (j != i) reduced.AddAtom(current.atoms()[j]);
      }
      if (!CheckWellFormed(schema, reduced).ok()) continue;
      // Removal only weakens: redundant iff (Q - A) ⊆ Q.
      OOCQ_ASSIGN_OR_RETURN(
          bool contained,
          Contained(schema, reduced, current, options.containment, nullptr));
      if (!contained) continue;
      current = std::move(reduced);
      if (removed != nullptr) ++*removed;
      progress = true;
      break;
    }
  }
  return current;
}

StatusOr<GeneralMinimizationReport> MinimizeConjunctiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, ContainmentCache* cache) {
  OOCQ_TRACE_SPAN(span, "MinimizeConjunctiveQuery");
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  const EngineOptions opts = WithPropagatedParallelism(options);

  GeneralMinimizationReport report;

  ExpansionStats expansion_stats;
  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery expanded,
      ExpandToTerminalQueries(schema, query, opts.expansion,
                              &expansion_stats));
  report.raw_disjuncts = expansion_stats.raw_disjuncts;
  report.satisfiable_disjuncts = expansion_stats.satisfiable_disjuncts;

  // RemoveRedundantDisjuncts uses the general Contained test, which is
  // sound for any terminal conjunctive disjuncts.
  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery nonredundant,
      RemoveRedundantDisjuncts(schema, expanded, opts, cache,
                               &report.containment));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  // Verified folding of each survivor is independent work (Thm 4.3 does
  // not extend to general disjuncts, so each fold re-verifies; the
  // verification containments are per-disjunct and fan out with them).
  struct FoldOutcome {
    ConjunctiveQuery folded;
    uint64_t removed = 0;
    ContainmentStats stats;
  };
  OOCQ_TRACE_SPAN(fold_span, "FoldDisjuncts");
  fold_span.Arg("disjuncts",
                static_cast<uint64_t>(nonredundant.disjuncts.size()));
  ScopedPhaseTimer fold_timer("phase/fold_vars");
  OOCQ_ASSIGN_OR_RETURN(
      std::vector<FoldOutcome> outcomes,
      (ParallelMap<FoldOutcome>(
          opts.parallel, nonredundant.disjuncts.size(),
          [&](size_t i) -> StatusOr<FoldOutcome> {
            FoldOutcome outcome;
            OOCQ_ASSIGN_OR_RETURN(
                outcome.folded,
                FoldTerminalQueryVerified(schema, nonredundant.disjuncts[i],
                                          opts, &outcome.removed,
                                          &outcome.stats));
            return outcome;
          })));
  for (FoldOutcome& outcome : outcomes) {
    report.variables_removed += outcome.removed;
    report.containment.Add(outcome.stats);
    report.minimized.disjuncts.push_back(std::move(outcome.folded));
  }
  fold_span.Arg("vars_removed", report.variables_removed);
  OOCQ_METRIC_ADD("minimize/vars_removed", report.variables_removed);
  return report;
}

}  // namespace oocq
