#ifndef OOCQ_CORE_EXPLAIN_H_
#define OOCQ_CORE_EXPLAIN_H_

#include <string>

#include "core/containment.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// A human-readable account of one containment decision — the tool a
/// user reaches for when `Contained` answers "no" and they want to know
/// *why* (or "yes" and they want the witness).
struct ContainmentExplanation {
  bool contained = false;
  /// Multi-line narrative: the dispatch path taken (Cor 3.2/3.3/3.4 or
  /// Thm 3.1), the witness mapping on success, or the refuting
  /// augmentation/membership-subset on failure.
  std::string text;
};

/// Decides Q1 ⊆ Q2 exactly like Contained() and narrates the decision.
/// Preconditions match Contained(): well-formed terminal queries.
StatusOr<ContainmentExplanation> ExplainContainment(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, const ContainmentOptions& options = {});

}  // namespace oocq

#endif  // OOCQ_CORE_EXPLAIN_H_
