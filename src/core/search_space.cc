#include "core/search_space.h"

#include <set>

namespace oocq {

std::vector<ClassId> TermClass(const Schema& schema,
                               const ConjunctiveQuery& query, VarId x) {
  std::set<ClassId> terminals;
  const Atom* range = query.RangeAtomOf(x);
  if (range != nullptr) {
    for (ClassId c : range->classes()) {
      for (ClassId t : schema.TerminalDescendants(c)) terminals.insert(t);
    }
  }
  return std::vector<ClassId>(terminals.begin(), terminals.end());
}

SearchSpaceCost SearchSpaceCostOf(const Schema& schema,
                                  const ConjunctiveQuery& query) {
  SearchSpaceCost cost;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    for (ClassId c : TermClass(schema, query, v)) {
      ++cost.per_class[c];
      ++cost.total;
    }
  }
  return cost;
}

SearchSpaceCost SearchSpaceCostOf(const Schema& schema,
                                  const UnionQuery& query) {
  SearchSpaceCost cost;
  for (const ConjunctiveQuery& disjunct : query.disjuncts) {
    SearchSpaceCost part = SearchSpaceCostOf(schema, disjunct);
    cost.total += part.total;
    for (const auto& [cls, count] : part.per_class) {
      cost.per_class[cls] += count;
    }
  }
  return cost;
}

bool CostLeq(const SearchSpaceCost& a, const SearchSpaceCost& b) {
  for (const auto& [cls, count] : a.per_class) {
    auto it = b.per_class.find(cls);
    uint64_t other = it == b.per_class.end() ? 0 : it->second;
    if (count > other) return false;
  }
  return true;
}

}  // namespace oocq
