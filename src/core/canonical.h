#ifndef OOCQ_CORE_CANONICAL_H_
#define OOCQ_CORE_CANONICAL_H_

#include <string>

#include "query/query.h"

namespace oocq {

/// Computes a canonical form of a conjunctive query: variables are
/// renumbered into a deterministic order computed by color refinement
/// over (free-flag, range classes, incident atoms), with remaining ties
/// broken by searching the permutation that minimizes the encoded atom
/// list; atoms are deduplicated and sorted.
///
/// Two queries have the same canonical form iff they are syntactically
/// identical up to bound-variable renaming — a *sufficient* condition for
/// equivalence (NOT necessary; use EquivalentQueries for the semantic
/// relation). RemoveRedundantDisjuncts uses this as a cheap pre-pass.
///
/// When the tie-breaking search space exceeds `max_tie_permutations`, the
/// function falls back to the refinement order: the result is still a
/// deterministic function of the input, but two renamings of one query
/// may then canonicalize differently (safe for deduplication — only
/// false negatives).
ConjunctiveQuery CanonicalizeQuery(const ConjunctiveQuery& query,
                                   uint64_t max_tie_permutations = 10'000);

/// A byte encoding of CanonicalizeQuery(query): equal keys imply the
/// queries are renamings of each other (up to the permutation cap).
std::string CanonicalKey(const ConjunctiveQuery& query,
                         uint64_t max_tie_permutations = 10'000);

}  // namespace oocq

#endif  // OOCQ_CORE_CANONICAL_H_
