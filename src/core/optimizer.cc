#include "core/optimizer.h"

#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "core/containment.h"
#include "core/containment_cache.h"
#include "core/general_minimization.h"
#include "parser/parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq {

namespace {

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

uint64_t CounterOr0(const std::vector<std::pair<std::string, uint64_t>>& counters,
                    std::string_view name) {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

/// Builds the per-phase table of `out` from the run's registry plus the
/// report's work counts. Phases appear in pipeline order, only when their
/// ScopedPhaseTimer actually fired.
void FillRunMetrics(const MetricsRegistry& registry,
                    const MinimizationReport& details, RunMetrics* out) {
  out->enabled = true;
  MetricsRegistry::Snapshot snap = registry.Snap();
  out->counters.clear();
  out->counters.reserve(snap.counters.size());
  for (const MetricsRegistry::CounterSnapshot& counter : snap.counters) {
    out->counters.emplace_back(counter.name, counter.value);
  }

  auto work_for = [&](std::string_view phase) -> std::string {
    if (phase == "well_form") return "1 query normalized";
    if (phase == "expand") {
      return std::to_string(details.raw_disjuncts) + " raw disjunct(s)";
    }
    if (phase == "satisfiability_prune") {
      return std::to_string(details.satisfiable_disjuncts) +
             " satisfiable of " + std::to_string(details.raw_disjuncts) + " (" +
             std::to_string(CounterOr0(out->counters, "satisfiability/checks")) +
             " check(s) total this run)";
    }
    if (phase == "redundancy") {
      return std::to_string(details.nonredundant_disjuncts) + " kept, " +
             std::to_string(CounterOr0(out->counters, "redundancy/pairs")) +
             " pair test(s)";
    }
    if (phase == "minimize_vars" || phase == "fold_vars") {
      return std::to_string(details.variables_removed) + " variable(s) removed";
    }
    return "";
  };

  for (const char* phase :
       {"well_form", "expand", "satisfiability_prune", "redundancy",
        "minimize_vars", "fold_vars"}) {
    const std::string prefix = std::string("phase/") + phase;
    const uint64_t calls = CounterOr0(out->counters, prefix + ".calls");
    if (calls == 0) continue;
    PhaseMetrics row;
    row.name = phase;
    row.ns = CounterOr0(out->counters, prefix + ".ns");
    row.calls = calls;
    row.work = work_for(phase);
    out->phases.push_back(std::move(row));
  }
}

/// Human label for a phase key, with its paper anchor.
const char* PhaseLabel(const std::string& name) {
  if (name == "well_form") return "well-forming (§2)";
  if (name == "expand") return "expansion (Prop 2.1)";
  if (name == "satisfiability_prune") return "satisfiability pruning (Thm 2.2)";
  if (name == "redundancy") return "redundancy removal (Thm 4.1/4.2)";
  if (name == "minimize_vars") return "variable minimization (Thm 4.3)";
  if (name == "fold_vars") return "verified folding (§5)";
  return name.c_str();
}

/// Run-scoped budget wiring: when EngineOptions::limits is set, a budget
/// local to this run — chained under any budget the caller already
/// threaded into the options — replaces the options' budget pointers for
/// the duration of the run. Declare before the run's ContainmentCache so
/// the cache (which copies the containment options) dies first.
class RunBudget {
 public:
  explicit RunBudget(EngineOptions& opts) {
    if (!opts.limits.AnySet()) return;
    budget_.emplace(opts.limits, opts.containment.budget);
    opts.containment.budget = &*budget_;
    opts.expansion.budget = &*budget_;
  }

  void Report(OptimizeReport* report) const {
    if (!budget_.has_value()) return;
    report->budget_enforced = true;
    report->budget_disjuncts = budget_->disjuncts_charged();
    report->budget_work_units = budget_->work_units_charged();
  }

 private:
  std::optional<ResourceBudget> budget_;
};

}  // namespace

std::string OptimizeReport::Summary(const Schema& schema) const {
  std::string out;
  out += exact ? "exact minimization (positive conjunctive query)\n"
               : "equivalent reduced union (general conjunctive query; no "
                 "optimality guarantee)\n";
  out += "  expansion: " + std::to_string(details.raw_disjuncts) +
         " raw disjunct(s), " + std::to_string(details.satisfiable_disjuncts) +
         " satisfiable, " + std::to_string(details.nonredundant_disjuncts) +
         " nonredundant\n";
  out += "  variables removed by self-mappings: " +
         std::to_string(details.variables_removed) + "\n";
  out += "  containment work: " + std::to_string(containment.augmentations) +
         " augmentation(s), " + std::to_string(containment.membership_subsets) +
         " membership subset(s) tested, " +
         std::to_string(containment.membership_subsets_skipped) + " skipped, " +
         std::to_string(containment.mapping_searches) + " mapping search(es), " +
         std::to_string(containment.mapping_steps) + " step(s)\n";
  out += "  containment cache: " + std::to_string(cache_hits) + " hit(s), " +
         std::to_string(cache_misses) + " miss(es), " +
         std::to_string(cache_evictions) + " eviction(s)\n";
  if (budget_enforced) {
    out += "  resource budget: " + std::to_string(budget_disjuncts) +
           " disjunct(s), " + std::to_string(budget_work_units) +
           " subset work unit(s) charged\n";
  }
  out += "  search-space cost: " + std::to_string(original_cost.total) +
         " -> " + std::to_string(optimized_cost.total) + "\n";
  if (metrics.enabled) {
    out += "  phases:\n";
    for (const PhaseMetrics& phase : metrics.phases) {
      std::string label = PhaseLabel(phase.name);
      // Pad by display columns, not bytes: '§' is two UTF-8 bytes but one
      // column, and counting continuation bytes would skew the table.
      size_t columns = 0;
      for (char c : label) {
        if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++columns;
      }
      for (; columns < 34; ++columns) label += ' ';
      std::string time = FormatMs(phase.ns);
      if (time.size() < 12) time.resize(12, ' ');
      out += "    " + label + time + phase.work + "\n";
    }
  }
  out += "  optimized: " + UnionQueryToString(schema, optimized) + "\n";
  return out;
}

StatusOr<OptimizeReport> QueryOptimizer::Optimize(
    const ConjunctiveQuery& query) const {
  EngineOptions opts = WithPropagatedParallelism(options_);
  RunBudget run_budget(opts);

  // Observability sinks for this run. Tracing implies metrics (the trace
  // and the phase table describe the same run). When a caller already
  // installed a MetricsScope (e.g. the CLI around a whole command), the
  // engine collects into — and reports from — that registry instead of
  // installing a nested one.
  const bool collect_metrics =
      opts.observability.metrics || opts.observability.trace != nullptr;
  std::unique_ptr<MetricsRegistry> owned_registry;
  std::optional<MetricsScope> metrics_scope;
  MetricsRegistry* registry = nullptr;
  if (collect_metrics) {
    registry = ActiveMetrics();
    if (registry == nullptr) {
      owned_registry = std::make_unique<MetricsRegistry>();
      metrics_scope.emplace(owned_registry.get());
      registry = owned_registry.get();
    }
  }
  TraceSession trace_session(opts.observability.trace);
  OOCQ_TRACE_SPAN(span, "Optimize");

  ConjunctiveQuery well_formed;
  {
    OOCQ_TRACE_SPAN(wf_span, "NormalizeToWellFormed");
    ScopedPhaseTimer wf_timer("phase/well_form");
    OOCQ_ASSIGN_OR_RETURN(well_formed, NormalizeToWellFormed(schema_, query));
  }

  // One memo table per run: every containment the fan-out performs lands
  // in the same sharded cache, so repeated pairs (matrix symmetry,
  // re-checks after folding) are computed once.
  std::unique_ptr<ContainmentCache> cache;
  if (opts.cache.enabled) {
    ContainmentCache::Options cache_options;
    cache_options.containment = opts.containment;
    cache_options.max_entries = opts.cache.max_entries;
    cache_options.num_shards = opts.cache.num_shards;
    cache = std::make_unique<ContainmentCache>(&schema_, cache_options);
  }

  OptimizeReport report;
  report.original_cost = SearchSpaceCostOf(schema_, well_formed);

  if (well_formed.IsPositive()) {
    OOCQ_ASSIGN_OR_RETURN(
        report.details,
        MinimizePositiveQuery(schema_, well_formed, opts, cache.get()));
    report.optimized = report.details.minimized;
    report.containment = report.details.containment;
    report.exact = true;
  } else {
    // General conjunctive queries: the equivalent reduced union of
    // core/general_minimization.h — sound, but without the §4 optimality
    // guarantee.
    OOCQ_ASSIGN_OR_RETURN(
        GeneralMinimizationReport general,
        MinimizeConjunctiveQuery(schema_, well_formed, opts, cache.get()));
    report.optimized = std::move(general.minimized);
    report.details.raw_disjuncts = general.raw_disjuncts;
    report.details.satisfiable_disjuncts = general.satisfiable_disjuncts;
    report.details.nonredundant_disjuncts = general.nonredundant_disjuncts;
    report.details.variables_removed = general.variables_removed;
    report.details.containment = general.containment;
    report.containment = general.containment;
    report.exact = false;
  }
  if (cache != nullptr) {
    report.cache_hits = cache->hits();
    report.cache_misses = cache->misses();
    report.cache_evictions = cache->evictions();
  }
  report.optimized_cost = SearchSpaceCostOf(schema_, report.optimized);
  run_budget.Report(&report);
  span.Arg("exact", report.exact ? "true" : "false")
      .Arg("raw", report.details.raw_disjuncts)
      .Arg("optimized_disjuncts",
           static_cast<uint64_t>(report.optimized.disjuncts.size()));
  if (registry != nullptr) {
    FillRunMetrics(*registry, report.details, &report.metrics);
  }
  return report;
}

StatusOr<OptimizeReport> QueryOptimizer::OptimizeText(
    std::string_view text) const {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(schema_, text));
  return Optimize(query);
}

StatusOr<UnionQuery> QueryOptimizer::ExpandToUnion(
    const ConjunctiveQuery& query) const {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery well_formed,
                        NormalizeToWellFormed(schema_, query));
  const EngineOptions opts = WithPropagatedParallelism(options_);
  return ExpandToTerminalQueries(schema_, well_formed, opts.expansion);
}

namespace {

/// The per-call memo table of the IsContained/IsEquivalent entry points
/// (their disjunct fan-outs hit it for renamed duplicates, and
/// IsEquivalent's two directions share one). Null when caching is off.
std::unique_ptr<ContainmentCache> MakeCallCache(const Schema* schema,
                                                const EngineOptions& opts) {
  if (!opts.cache.enabled) return nullptr;
  ContainmentCache::Options cache_options;
  cache_options.containment = opts.containment;
  cache_options.max_entries = opts.cache.max_entries;
  cache_options.num_shards = opts.cache.num_shards;
  return std::make_unique<ContainmentCache>(schema, cache_options);
}

}  // namespace

StatusOr<bool> QueryOptimizer::IsContainedWithCache(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    ContainmentStats* stats, const EngineOptions& opts,
    ContainmentCache* cache) const {
  OOCQ_TRACE_SPAN(span, "IsContained");
  OOCQ_ASSIGN_OR_RETURN(UnionQuery m, ExpandToUnion(q1));
  OOCQ_ASSIGN_OR_RETURN(UnionQuery n, ExpandToUnion(q2));
  // When Q2 expands to a single disjunct, M ⊆ N iff every disjunct of M
  // is contained in it — exact for arbitrary atom kinds, so general
  // queries are decided here; Thm 4.1 handles multi-disjunct positive N.
  if (n.disjuncts.size() == 1) {
    for (const ConjunctiveQuery& qi : m.disjuncts) {
      OOCQ_ASSIGN_OR_RETURN(
          bool contained,
          cache != nullptr
              ? cache->Contained(qi, n.disjuncts[0], stats,
                                 opts.containment.cancel,
                                 opts.containment.budget)
              : Contained(schema_, qi, n.disjuncts[0], opts.containment,
                          stats));
      if (!contained) return false;
    }
    return true;
  }
  if (n.disjuncts.empty()) {
    // N is unsatisfiable: containment iff M is too.
    return m.disjuncts.empty();
  }
  return UnionContained(schema_, m, n, opts.containment, stats, cache);
}

StatusOr<bool> QueryOptimizer::IsContained(const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           ContainmentStats* stats) const {
  EngineOptions opts = WithPropagatedParallelism(options_);
  RunBudget run_budget(opts);
  TraceSession trace_session(opts.observability.trace);
  std::unique_ptr<ContainmentCache> cache = MakeCallCache(&schema_, opts);
  return IsContainedWithCache(q1, q2, stats, opts, cache.get());
}

StatusOr<bool> QueryOptimizer::IsEquivalent(const ConjunctiveQuery& q1,
                                            const ConjunctiveQuery& q2,
                                            ContainmentStats* stats) const {
  EngineOptions opts = WithPropagatedParallelism(options_);
  RunBudget run_budget(opts);
  TraceSession trace_session(opts.observability.trace);
  // One cache across both directions: the backward test reuses every
  // decision the forward test computed on shared disjunct pairs.
  std::unique_ptr<ContainmentCache> cache = MakeCallCache(&schema_, opts);
  OOCQ_ASSIGN_OR_RETURN(bool forward,
                        IsContainedWithCache(q1, q2, stats, opts, cache.get()));
  if (!forward) return false;
  return IsContainedWithCache(q2, q1, stats, opts, cache.get());
}

}  // namespace oocq
