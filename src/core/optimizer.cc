#include "core/optimizer.h"

#include <memory>
#include <utility>

#include "core/containment.h"
#include "core/containment_cache.h"
#include "core/general_minimization.h"
#include "parser/parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

std::string OptimizeReport::Summary(const Schema& schema) const {
  std::string out;
  out += exact ? "exact minimization (positive conjunctive query)\n"
               : "equivalent reduced union (general conjunctive query; no "
                 "optimality guarantee)\n";
  out += "  expansion: " + std::to_string(details.raw_disjuncts) +
         " raw disjunct(s), " + std::to_string(details.satisfiable_disjuncts) +
         " satisfiable, " + std::to_string(details.nonredundant_disjuncts) +
         " nonredundant\n";
  out += "  variables removed by self-mappings: " +
         std::to_string(details.variables_removed) + "\n";
  out += "  containment work: " + std::to_string(containment.augmentations) +
         " augmentation(s), " + std::to_string(containment.membership_subsets) +
         " membership subset(s), " +
         std::to_string(containment.mapping_searches) + " mapping search(es), " +
         std::to_string(containment.mapping_steps) + " step(s)\n";
  out += "  containment cache: " + std::to_string(cache_hits) + " hit(s), " +
         std::to_string(cache_misses) + " miss(es)\n";
  out += "  search-space cost: " + std::to_string(original_cost.total) +
         " -> " + std::to_string(optimized_cost.total) + "\n";
  out += "  optimized: " + UnionQueryToString(schema, optimized) + "\n";
  return out;
}

StatusOr<OptimizeReport> QueryOptimizer::Optimize(
    const ConjunctiveQuery& query) const {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery well_formed,
                        NormalizeToWellFormed(schema_, query));

  const EngineOptions opts = WithPropagatedParallelism(options_);

  // One memo table per run: every containment the fan-out performs lands
  // in the same sharded cache, so repeated pairs (matrix symmetry,
  // re-checks after folding) are computed once.
  std::unique_ptr<ContainmentCache> cache;
  if (opts.cache.enabled) {
    ContainmentCache::Options cache_options;
    cache_options.containment = opts.containment;
    cache_options.max_entries = opts.cache.max_entries;
    cache_options.num_shards = opts.cache.num_shards;
    cache = std::make_unique<ContainmentCache>(&schema_, cache_options);
  }

  OptimizeReport report;
  report.original_cost = SearchSpaceCostOf(schema_, well_formed);

  if (well_formed.IsPositive()) {
    OOCQ_ASSIGN_OR_RETURN(
        report.details,
        MinimizePositiveQuery(schema_, well_formed, opts, cache.get()));
    report.optimized = report.details.minimized;
    report.containment = report.details.containment;
    report.exact = true;
  } else {
    // General conjunctive queries: the equivalent reduced union of
    // core/general_minimization.h — sound, but without the §4 optimality
    // guarantee.
    OOCQ_ASSIGN_OR_RETURN(
        GeneralMinimizationReport general,
        MinimizeConjunctiveQuery(schema_, well_formed, opts, cache.get()));
    report.optimized = std::move(general.minimized);
    report.details.raw_disjuncts = general.raw_disjuncts;
    report.details.satisfiable_disjuncts = general.satisfiable_disjuncts;
    report.details.nonredundant_disjuncts = general.nonredundant_disjuncts;
    report.details.variables_removed = general.variables_removed;
    report.details.containment = general.containment;
    report.containment = general.containment;
    report.exact = false;
  }
  if (cache != nullptr) {
    report.cache_hits = cache->hits();
    report.cache_misses = cache->misses();
  }
  report.optimized_cost = SearchSpaceCostOf(schema_, report.optimized);
  return report;
}

StatusOr<OptimizeReport> QueryOptimizer::OptimizeText(
    std::string_view text) const {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(schema_, text));
  return Optimize(query);
}

StatusOr<UnionQuery> QueryOptimizer::ExpandToUnion(
    const ConjunctiveQuery& query) const {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery well_formed,
                        NormalizeToWellFormed(schema_, query));
  const EngineOptions opts = WithPropagatedParallelism(options_);
  return ExpandToTerminalQueries(schema_, well_formed, opts.expansion);
}

StatusOr<bool> QueryOptimizer::IsContained(const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           ContainmentStats* stats) const {
  OOCQ_ASSIGN_OR_RETURN(UnionQuery m, ExpandToUnion(q1));
  OOCQ_ASSIGN_OR_RETURN(UnionQuery n, ExpandToUnion(q2));
  const EngineOptions opts = WithPropagatedParallelism(options_);
  // When Q2 expands to a single disjunct, M ⊆ N iff every disjunct of M
  // is contained in it — exact for arbitrary atom kinds, so general
  // queries are decided here; Thm 4.1 handles multi-disjunct positive N.
  if (n.disjuncts.size() == 1) {
    for (const ConjunctiveQuery& qi : m.disjuncts) {
      OOCQ_ASSIGN_OR_RETURN(
          bool contained,
          Contained(schema_, qi, n.disjuncts[0], opts.containment, stats));
      if (!contained) return false;
    }
    return true;
  }
  if (n.disjuncts.empty()) {
    // N is unsatisfiable: containment iff M is too.
    return m.disjuncts.empty();
  }
  return UnionContained(schema_, m, n, opts.containment, stats);
}

StatusOr<bool> QueryOptimizer::IsEquivalent(const ConjunctiveQuery& q1,
                                            const ConjunctiveQuery& q2,
                                            ContainmentStats* stats) const {
  OOCQ_ASSIGN_OR_RETURN(bool forward, IsContained(q1, q2, stats));
  if (!forward) return false;
  return IsContained(q2, q1, stats);
}

}  // namespace oocq
