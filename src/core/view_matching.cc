#include "core/view_matching.h"

#include "core/containment.h"
#include "core/expansion.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

const char* ViewUsabilityToString(ViewUsability usability) {
  switch (usability) {
    case ViewUsability::kExact:
      return "EXACT";
    case ViewUsability::kSuperset:
      return "SUPERSET";
    case ViewUsability::kSubset:
      return "SUBSET";
    case ViewUsability::kUnrelated:
      return "UNRELATED";
  }
  return "?";
}

namespace {

StatusOr<UnionQuery> Expand(const Schema& schema, const ConjunctiveQuery& q,
                            const MinimizationOptions& options) {
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery well_formed,
                        NormalizeToWellFormed(schema, q));
  return ExpandToTerminalQueries(schema, well_formed, options.expansion);
}

}  // namespace

StatusOr<std::vector<ViewMatch>> MatchViews(
    const Schema& schema, const std::vector<ViewDefinition>& views,
    const ConjunctiveQuery& query, const MinimizationOptions& options) {
  const EngineOptions opts = WithPropagatedParallelism(options);
  OOCQ_ASSIGN_OR_RETURN(UnionQuery q, Expand(schema, query, opts));

  std::vector<ViewMatch> matches;
  matches.reserve(views.size());
  for (const ViewDefinition& view : views) {
    OOCQ_ASSIGN_OR_RETURN(UnionQuery v, Expand(schema, view.query, opts));
    OOCQ_ASSIGN_OR_RETURN(
        bool query_in_view,
        UnionContained(schema, q, v, opts.containment));
    OOCQ_ASSIGN_OR_RETURN(
        bool view_in_query,
        UnionContained(schema, v, q, opts.containment));
    ViewMatch match;
    match.view_name = view.name;
    if (query_in_view && view_in_query) {
      match.usability = ViewUsability::kExact;
    } else if (query_in_view) {
      match.usability = ViewUsability::kSuperset;
    } else if (view_in_query) {
      match.usability = ViewUsability::kSubset;
    } else {
      match.usability = ViewUsability::kUnrelated;
    }
    matches.push_back(std::move(match));
  }
  return matches;
}

StatusOr<std::string> BestViewFor(const Schema& schema,
                                  const std::vector<ViewDefinition>& views,
                                  const ConjunctiveQuery& query,
                                  const MinimizationOptions& options) {
  OOCQ_ASSIGN_OR_RETURN(std::vector<ViewMatch> matches,
                        MatchViews(schema, views, query, options));
  for (const ViewMatch& match : matches) {
    if (match.usability == ViewUsability::kExact) return match.view_name;
  }
  for (const ViewMatch& match : matches) {
    if (match.usability == ViewUsability::kSuperset) return match.view_name;
  }
  return std::string();
}

}  // namespace oocq
