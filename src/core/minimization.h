#ifndef OOCQ_CORE_MINIMIZATION_H_
#define OOCQ_CORE_MINIMIZATION_H_

#include "core/containment.h"
#include "core/engine_options.h"
#include "core/expansion.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

class ContainmentCache;

/// Historical name for the engine-wide option struct; kept as an alias so
/// existing call sites compile unchanged (core/engine_options.h).
using MinimizationOptions = EngineOptions;

/// Bookkeeping from one MinimizePositiveQuery run.
struct MinimizationReport {
  /// The search-space-optimal union of minimal terminal positive
  /// conjunctive queries equivalent to the input (Thms 4.2/4.5).
  UnionQuery minimized;
  uint64_t raw_disjuncts = 0;          // Prop 2.1 combinations
  uint64_t satisfiable_disjuncts = 0;  // after unsatisfiability pruning
  uint64_t nonredundant_disjuncts = 0; // after redundancy removal (Thm 4.1)
  uint64_t variables_removed = 0;      // folded by self-mappings (Thm 4.3)
  /// Aggregate work counters of every containment / self-mapping search
  /// the pipeline ran. Deterministic across thread counts for positive
  /// inputs (the containment matrix has no early exit and the shared
  /// cache computes each decision exactly once).
  ContainmentStats containment;
};

/// Exact minimization for positive conjunctive queries (§4): expands the
/// query into a union of terminal positive queries (Prop 2.1), drops
/// unsatisfiable disjuncts, removes redundant disjuncts (containment,
/// Thm 4.1), and minimizes the variables of each survivor with
/// non-contradictory self-mappings preserving the free variable (Thm 4.3,
/// Cor 4.4). The result is search-space-optimal among all unions of
/// positive conjunctive queries (Thms 4.2/4.5).
///
/// The per-disjunct stages (satisfiability pruning, the redundancy
/// containment matrix, variable minimization) fan out over
/// options.parallel; results are deterministic and identical to the
/// serial run. `cache` (optional) memoizes the containment matrix — pass
/// a ContainmentCache built over the same schema and containment options.
///
/// Precondition: `query` is well-formed and positive (returns
/// FailedPrecondition otherwise; run NormalizeToWellFormed first for raw
/// user queries).
StatusOr<MinimizationReport> MinimizePositiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {},
    ContainmentCache* cache = nullptr);

/// Minimizes one satisfiable terminal positive conjunctive query by
/// repeatedly applying non-bijective non-contradictory self-mappings that
/// preserve the free variable, until only bijective ones exist (Cor 4.4).
/// `removed` (optional) counts eliminated variables; `stats` (optional)
/// accumulates the self-mapping search work.
StatusOr<ConjunctiveQuery> MinimizeTerminalPositive(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {}, uint64_t* removed = nullptr,
    ContainmentStats* stats = nullptr);

/// Cor 4.4: true iff every non-contradictory self-mapping of `query` that
/// preserves the free variable is bijective.
StatusOr<bool> IsMinimalTerminalPositive(const Schema& schema,
                                         const ConjunctiveQuery& query,
                                         const MinimizationOptions& options = {});

/// Removes from the union every satisfiable disjunct that is contained in
/// another kept disjunct (unsatisfiable disjuncts are dropped outright);
/// of an equivalence group the first disjunct survives. The result is a
/// nonredundant union (§4). The O(n²) containment matrix consists of
/// independent tests and fans out over options.parallel; all pairs are
/// always decided (no early exit), so the kept set — and the aggregated
/// `stats` — are deterministic. `cache` (optional) memoizes decisions
/// across renamed-duplicate pairs; when given, its containment options
/// govern the cached tests.
StatusOr<UnionQuery> RemoveRedundantDisjuncts(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options = {},
    ContainmentCache* cache = nullptr, ContainmentStats* stats = nullptr);

/// Minimizes a union of positive conjunctive queries as a whole: each
/// disjunct is expanded (Prop 2.1), the combined expansion is made
/// nonredundant across disjunct boundaries, and each survivor's variables
/// are minimized. By Thms 4.1/4.2 the result is the same
/// search-space-optimal union the single-query pipeline produces.
StatusOr<MinimizationReport> MinimizePositiveUnion(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options = {},
    ContainmentCache* cache = nullptr);

}  // namespace oocq

#endif  // OOCQ_CORE_MINIMIZATION_H_
