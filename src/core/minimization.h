#ifndef OOCQ_CORE_MINIMIZATION_H_
#define OOCQ_CORE_MINIMIZATION_H_

#include "core/containment.h"
#include "core/expansion.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Options shared by the minimization pipeline.
struct MinimizationOptions {
  ContainmentOptions containment;
  ExpansionOptions expansion;
};

/// Bookkeeping from one MinimizePositiveQuery run.
struct MinimizationReport {
  /// The search-space-optimal union of minimal terminal positive
  /// conjunctive queries equivalent to the input (Thms 4.2/4.5).
  UnionQuery minimized;
  uint64_t raw_disjuncts = 0;          // Prop 2.1 combinations
  uint64_t satisfiable_disjuncts = 0;  // after unsatisfiability pruning
  uint64_t nonredundant_disjuncts = 0; // after redundancy removal (Thm 4.1)
  uint64_t variables_removed = 0;      // folded by self-mappings (Thm 4.3)
};

/// Exact minimization for positive conjunctive queries (§4): expands the
/// query into a union of terminal positive queries (Prop 2.1), drops
/// unsatisfiable disjuncts, removes redundant disjuncts (containment,
/// Thm 4.1), and minimizes the variables of each survivor with
/// non-contradictory self-mappings preserving the free variable (Thm 4.3,
/// Cor 4.4). The result is search-space-optimal among all unions of
/// positive conjunctive queries (Thms 4.2/4.5).
///
/// Precondition: `query` is well-formed and positive (returns
/// FailedPrecondition otherwise; run NormalizeToWellFormed first for raw
/// user queries).
StatusOr<MinimizationReport> MinimizePositiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {});

/// Minimizes one satisfiable terminal positive conjunctive query by
/// repeatedly applying non-bijective non-contradictory self-mappings that
/// preserve the free variable, until only bijective ones exist (Cor 4.4).
/// `removed` (optional) counts eliminated variables.
StatusOr<ConjunctiveQuery> MinimizeTerminalPositive(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options = {}, uint64_t* removed = nullptr);

/// Cor 4.4: true iff every non-contradictory self-mapping of `query` that
/// preserves the free variable is bijective.
StatusOr<bool> IsMinimalTerminalPositive(const Schema& schema,
                                         const ConjunctiveQuery& query,
                                         const MinimizationOptions& options = {});

/// Removes from the union every satisfiable disjunct that is contained in
/// another kept disjunct (unsatisfiable disjuncts are dropped outright);
/// of an equivalence group the first disjunct survives. The result is a
/// nonredundant union (§4).
StatusOr<UnionQuery> RemoveRedundantDisjuncts(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options = {});

/// Minimizes a union of positive conjunctive queries as a whole: each
/// disjunct is expanded (Prop 2.1), the combined expansion is made
/// nonredundant across disjunct boundaries, and each survivor's variables
/// are minimized. By Thms 4.1/4.2 the result is the same
/// search-space-optimal union the single-query pipeline produces.
StatusOr<MinimizationReport> MinimizePositiveUnion(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options = {});

}  // namespace oocq

#endif  // OOCQ_CORE_MINIMIZATION_H_
