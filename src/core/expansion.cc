#include "core/expansion.h"

#include <optional>
#include <set>
#include <vector>

#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace oocq {

StatusOr<UnionQuery> ExpandToTerminalQueries(const Schema& schema,
                                             const ConjunctiveQuery& query,
                                             const ExpansionOptions& options,
                                             ExpansionStats* stats) {
  // Prop 2.1: the query is equivalent to the union of its terminal
  // instantiations — the expansion phase of every pipeline run.
  OOCQ_TRACE_SPAN(span, "Expand");
  ScopedPhaseTimer timer("phase/expand");
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));

  // Per-variable terminal choices: the terminal descendants of any class
  // in the variable's range disjunction.
  std::vector<std::vector<ClassId>> choices(query.num_vars());
  uint64_t product = 1;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    const Atom* range = query.RangeAtomOf(v);
    std::set<ClassId> terminals;
    for (ClassId c : range->classes()) {
      for (ClassId t : schema.TerminalDescendants(c)) terminals.insert(t);
    }
    if (terminals.empty()) {
      // A class with no terminal descendant cannot exist in our model
      // (every class is its own terminal descendant when terminal), but
      // guard against future hierarchy variants.
      return Status::Internal("class without terminal descendants");
    }
    choices[v].assign(terminals.begin(), terminals.end());
    if (product > options.max_disjuncts / choices[v].size()) {
      return Status::ResourceExhausted(
          "terminal expansion exceeds " +
          std::to_string(options.max_disjuncts) +
          " disjuncts; raise ExpansionOptions::max_disjuncts");
    }
    product *= choices[v].size();
  }
  if (stats != nullptr) stats->raw_disjuncts = product;
  if (options.budget != nullptr) {
    // Charge the whole product up front: the budget refuses before any
    // disjunct is materialized, keeping peak memory bounded.
    OOCQ_RETURN_IF_ERROR(options.budget->ChargeDisjuncts(product));
  }

  // Combination `c` in mixed-radix (variable 0 least significant — the
  // order the serial counter enumerated).
  auto build_combination = [&](uint64_t c) {
    ConjunctiveQuery disjunct;
    for (VarId v = 0; v < query.num_vars(); ++v) {
      disjunct.AddVariable(query.var_name(v));
    }
    disjunct.set_free_var(query.free_var());
    std::vector<size_t> pick(query.num_vars());
    uint64_t rest = c;
    for (VarId v = 0; v < query.num_vars(); ++v) {
      pick[v] = static_cast<size_t>(rest % choices[v].size());
      rest /= choices[v].size();
    }
    for (const Atom& atom : query.atoms()) {
      if (atom.kind() == AtomKind::kRange) {
        disjunct.AddAtom(
            Atom::Range(atom.var(), {choices[atom.var()][pick[atom.var()]]}));
      } else {
        disjunct.AddAtom(atom);
      }
    }
    return disjunct;
  };

  UnionQuery result;
  if (!options.prune_unsatisfiable) {
    for (uint64_t c = 0; c < product; ++c) {
      result.disjuncts.push_back(build_combination(c));
    }
  } else {
    // Each combination's satisfiability check + normalization is
    // independent: fan out, keep survivors in enumeration order.
    OOCQ_TRACE_SPAN(prune_span, "SatisfiabilityPrune");
    prune_span.Arg("raw", product);
    ScopedPhaseTimer prune_timer("phase/satisfiability_prune");
    OOCQ_ASSIGN_OR_RETURN(
        std::vector<std::optional<ConjunctiveQuery>> pruned,
        (ParallelMap<std::optional<ConjunctiveQuery>>(
            options.parallel, static_cast<size_t>(product),
            [&](size_t c) -> StatusOr<std::optional<ConjunctiveQuery>> {
              ConjunctiveQuery disjunct = build_combination(c);
              if (!CheckSatisfiable(schema, disjunct).satisfiable) {
                return std::optional<ConjunctiveQuery>();
              }
              OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery normalized,
                                    NormalizeTerminalQuery(schema, disjunct));
              return std::optional<ConjunctiveQuery>(std::move(normalized));
            })));
    for (std::optional<ConjunctiveQuery>& disjunct : pruned) {
      if (disjunct.has_value()) {
        result.disjuncts.push_back(*std::move(disjunct));
      }
    }
  }

  if (stats != nullptr) stats->satisfiable_disjuncts = result.disjuncts.size();
  span.Arg("raw", product)
      .Arg("satisfiable", static_cast<uint64_t>(result.disjuncts.size()));
  OOCQ_METRIC_ADD("expand/raw_disjuncts", product);
  OOCQ_METRIC_ADD("expand/satisfiable_disjuncts", result.disjuncts.size());
  return result;
}

}  // namespace oocq
