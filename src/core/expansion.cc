#include "core/expansion.h"

#include <set>
#include <vector>

#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

StatusOr<UnionQuery> ExpandToTerminalQueries(const Schema& schema,
                                             const ConjunctiveQuery& query,
                                             const ExpansionOptions& options,
                                             ExpansionStats* stats) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));

  // Per-variable terminal choices: the terminal descendants of any class
  // in the variable's range disjunction.
  std::vector<std::vector<ClassId>> choices(query.num_vars());
  uint64_t product = 1;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    const Atom* range = query.RangeAtomOf(v);
    std::set<ClassId> terminals;
    for (ClassId c : range->classes()) {
      for (ClassId t : schema.TerminalDescendants(c)) terminals.insert(t);
    }
    if (terminals.empty()) {
      // A class with no terminal descendant cannot exist in our model
      // (every class is its own terminal descendant when terminal), but
      // guard against future hierarchy variants.
      return Status::Internal("class without terminal descendants");
    }
    choices[v].assign(terminals.begin(), terminals.end());
    if (product > options.max_disjuncts / choices[v].size()) {
      return Status::ResourceExhausted(
          "terminal expansion exceeds " +
          std::to_string(options.max_disjuncts) +
          " disjuncts; raise ExpansionOptions::max_disjuncts");
    }
    product *= choices[v].size();
  }
  if (stats != nullptr) stats->raw_disjuncts = product;

  UnionQuery result;
  std::vector<size_t> pick(query.num_vars(), 0);
  while (true) {
    // Build the disjunct for the current combination.
    ConjunctiveQuery disjunct;
    for (VarId v = 0; v < query.num_vars(); ++v) {
      disjunct.AddVariable(query.var_name(v));
    }
    disjunct.set_free_var(query.free_var());
    for (const Atom& atom : query.atoms()) {
      if (atom.kind() == AtomKind::kRange) {
        disjunct.AddAtom(Atom::Range(atom.var(), {choices[atom.var()][pick[atom.var()]]}));
      } else {
        disjunct.AddAtom(atom);
      }
    }

    if (options.prune_unsatisfiable) {
      if (CheckSatisfiable(schema, disjunct).satisfiable) {
        OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery normalized,
                              NormalizeTerminalQuery(schema, disjunct));
        result.disjuncts.push_back(std::move(normalized));
      }
    } else {
      result.disjuncts.push_back(std::move(disjunct));
    }

    // Advance the mixed-radix counter.
    VarId v = 0;
    for (; v < query.num_vars(); ++v) {
      if (++pick[v] < choices[v].size()) break;
      pick[v] = 0;
    }
    if (v == query.num_vars()) break;
  }

  if (stats != nullptr) stats->satisfiable_disjuncts = result.disjuncts.size();
  return result;
}

}  // namespace oocq
