#include "core/explain.h"

#include "core/augmentation.h"
#include "core/derivability.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

std::string DescribeMapping(const Schema& schema, const ConjunctiveQuery& from,
                            const ConjunctiveQuery& to,
                            const std::vector<VarId>& image) {
  (void)schema;
  std::string out = "  witness mapping: ";
  for (VarId v = 0; v < from.num_vars(); ++v) {
    if (v > 0) out += ", ";
    out += from.var_name(v) + " -> " + to.var_name(image[v]);
  }
  out += "\n";
  return out;
}

std::string DescribeAddedAtoms(const Schema& schema,
                               const ConjunctiveQuery& base,
                               size_t original_atom_count,
                               const char* label) {
  if (base.atoms().size() <= original_atom_count) {
    return std::string("  ") + label + ": (none)\n";
  }
  std::string out = std::string("  ") + label + ":";
  for (size_t i = original_atom_count; i < base.atoms().size(); ++i) {
    out += " " + AtomToString(schema, base, base.atoms()[i]) + ";";
  }
  out += "\n";
  return out;
}

}  // namespace

StatusOr<ContainmentExplanation> ExplainContainment(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, const ContainmentOptions& options) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q1));
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, q2));
  if (!q1.IsTerminal(schema) || !q2.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "ExplainContainment requires terminal conjunctive queries");
  }

  ContainmentExplanation result;
  result.text = "Q1 = " + QueryToString(schema, q1) + "\nQ2 = " +
                QueryToString(schema, q2) + "\n";

  SatisfiabilityResult sat1 = CheckSatisfiable(schema, q1);
  if (!sat1.satisfiable) {
    result.contained = true;
    result.text += "CONTAINED: Q1 is unsatisfiable (" + sat1.reason +
                   "), so Q1(s) is empty on every state.\n";
    return result;
  }
  SatisfiabilityResult sat2 = CheckSatisfiable(schema, q2);
  if (!sat2.satisfiable) {
    result.contained = false;
    result.text += "NOT CONTAINED: Q2 is unsatisfiable (" + sat2.reason +
                   ") while Q1 is satisfiable.\n";
    return result;
  }

  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n1, NormalizeTerminalQuery(schema, q1));
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery n2, NormalizeTerminalQuery(schema, q2));

  bool has_inequality = false;
  bool has_non_membership = false;
  for (const Atom& atom : n2.atoms()) {
    has_inequality |= atom.kind() == AtomKind::kInequality;
    has_non_membership |= atom.kind() == AtomKind::kNonMembership;
  }
  if (has_inequality && has_non_membership) {
    result.text += "dispatch: full Theorem 3.1 (Q2 has inequality and "
                   "non-membership atoms)\n";
  } else if (has_inequality) {
    result.text += "dispatch: Corollary 3.3 (Q2 has inequality atoms; "
                   "enumerating consistent augmentations of Q1)\n";
  } else if (has_non_membership) {
    result.text += "dispatch: Corollary 3.2 (Q2 has non-membership atoms; "
                   "enumerating membership subsets W)\n";
  } else {
    result.text += "dispatch: Corollary 3.4 (Q2 positive; single "
                   "non-contradictory mapping search)\n";
  }

  MappingConstraints constraints;
  constraints.free_target = n1.free_var();
  constraints.max_steps = options.max_mapping_steps;

  const size_t base_atoms = n1.atoms().size();
  bool witness_reported = false;

  // Returns true if this augmentation passes; fills result.text on the
  // first success (witness) or on the refuting case.
  auto check_augmentation =
      [&](const ConjunctiveQuery& augmented) -> StatusOr<bool> {
    std::vector<Atom> pool;
    if (has_non_membership) {
      OOCQ_ASSIGN_OR_RETURN(pool,
                            MembershipCandidatePool(schema, augmented, options));
    }
    for (uint64_t mask = 0; mask < (uint64_t{1} << pool.size()); ++mask) {
      ConjunctiveQuery target = augmented;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (mask & (uint64_t{1} << i)) target.AddAtom(pool[i]);
      }
      if (!CheckSatisfiable(schema, target).satisfiable) continue;
      OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                            QueryAnalysis::Create(schema, target));
      MappingResult mapping =
          FindNonContradictoryMapping(schema, n2, analysis, constraints);
      if (mapping.exhausted) {
        return Status::ResourceExhausted("mapping search exceeded budget");
      }
      if (!mapping.found()) {
        result.text += "refuted on this adversarial configuration of Q1:\n";
        result.text += DescribeAddedAtoms(schema, augmented, base_atoms,
                                          "augmentation S (added equalities)");
        result.text += DescribeAddedAtoms(schema, target,
                                          augmented.atoms().size(),
                                          "membership subset W (added atoms)");
        result.text +=
            "  no non-contradictory mapping from Q2 into Q1&S&W exists; a "
            "state realizing exactly this configuration answers Q1 but not "
            "Q2.\n";
        return false;
      }
      if (!witness_reported) {
        witness_reported = true;
        result.text += DescribeMapping(schema, n2, target, *mapping.image);
      }
    }
    return true;
  };

  StatusOr<bool> outcome = true;
  if (!has_inequality) {
    outcome = check_augmentation(n1);
  } else {
    AugmentationOptions augmentation_options;
    augmentation_options.max_augmentations = options.max_augmentations;
    Status inner = Status::Ok();
    outcome = ForEachConsistentAugmentation(
        schema, n1, augmentation_options,
        [&](const ConjunctiveQuery& augmented) -> bool {
          StatusOr<bool> ok = check_augmentation(augmented);
          if (!ok.ok()) {
            inner = ok.status();
            return false;
          }
          return *ok;
        });
    if (!inner.ok()) return inner;
  }
  if (!outcome.ok()) return outcome.status();

  result.contained = *outcome;
  result.text += result.contained
                     ? "CONTAINED: every adversarial configuration admits a "
                       "non-contradictory mapping (Thm 3.1).\n"
                     : "NOT CONTAINED.\n";
  return result;
}

}  // namespace oocq
