#include "core/satisfiability.h"

#include <map>
#include <set>
#include <tuple>

#include "query/equality_graph.h"
#include "query/well_formed.h"
#include "query/printer.h"
#include "support/metrics.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

SatisfiabilityResult Unsat(std::string reason) {
  return SatisfiabilityResult{false, std::move(reason)};
}

/// The terminal class shared by the variables of t's equivalence class;
/// kInvalidClassId when the class has no variable (cannot happen for
/// object terms of well-formed queries) or the variables disagree.
ClassId ClassOfEquivalenceClass(const ConjunctiveQuery& query,
                                const EqualityGraph& graph, TermId t) {
  ClassId result = kInvalidClassId;
  for (VarId v : graph.ClassVariables(t)) {
    ClassId c = query.RangeClassOf(v);
    if (result == kInvalidClassId) {
      result = c;
    } else if (result != c) {
      return kInvalidClassId;
    }
  }
  return result;
}

}  // namespace

SatisfiabilityResult CheckSatisfiable(const Schema& schema,
                                      const ConjunctiveQuery& query) {
  // Counter only — this (Thm 2.2) is the hottest engine entry point, one
  // call per expanded disjunct, so a span per check would swamp traces.
  OOCQ_METRIC_ADD("satisfiability/checks", 1);
  EqualityGraph graph = EqualityGraph::Build(query);

  // (a) variables equated across distinct terminal classes.
  for (TermId rep : graph.ClassRepresentatives()) {
    ClassId cls = kInvalidClassId;
    for (VarId v : graph.ClassVariables(rep)) {
      ClassId c = query.RangeClassOf(v);
      if (cls == kInvalidClassId) {
        cls = c;
      } else if (cls != c) {
        return Unsat("variables '" + query.var_name(v) +
                     "' and another variable of a different terminal class "
                     "are required to be equal");
      }
    }
  }

  // (b)/(c) attribute applicability and kind/type compatibility.
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    const Term& term = graph.term(t);
    if (!term.is_attribute()) continue;
    ClassId owner = query.RangeClassOf(term.var);
    const TypeExpr* type = schema.FindAttribute(owner, term.attr);
    if (type == nullptr) {
      return Unsat("'" + term.attr + "' is not an attribute of class '" +
                   schema.class_name(owner) + "'");
    }
    if (graph.IsObjectTerm(t)) {
      if (type->is_set()) {
        return Unsat("set-typed attribute term '" + query.var_name(term.var) +
                     "." + term.attr + "' used as an object");
      }
      ClassId term_cls = ClassOfEquivalenceClass(query, graph, t);
      if (term_cls == kInvalidClassId ||
          !schema.IsSubclassOf(term_cls, type->cls())) {
        return Unsat("object term '" + query.var_name(term.var) + "." +
                     term.attr + "' is equated to an object outside its "
                     "type '" + schema.class_name(type->cls()) + "'");
      }
    }
    if (graph.IsSetTerm(t) && !type->is_set()) {
      return Unsat("object-typed attribute term '" + query.var_name(term.var) +
                   "." + term.attr + "' used as a set");
    }
  }

  // Constants extension: (h) at most one distinct constant per
  // equivalence class, (i) the constant's primitive class must be the
  // variables' range class.
  std::map<TermId, ConstantValue> constants;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() != AtomKind::kConstant) continue;
    if (query.RangeClassOf(atom.var()) != ConstantClassOf(atom.constant())) {
      return Unsat("variable '" + query.var_name(atom.var()) +
                   "' is bound to the literal " +
                   ConstantToString(atom.constant()) +
                   " outside its range class");
    }
    TermId rep = graph.Find(graph.VarNode(atom.var()));
    auto [it, inserted] = constants.emplace(rep, atom.constant());
    if (!inserted && !(it->second == atom.constant())) {
      return Unsat("variable '" + query.var_name(atom.var()) +
                   "' is bound to two distinct literals");
    }
  }

  // Membership triple index for (f): (rep(element), rep(set var), attr).
  std::set<std::tuple<TermId, TermId, std::string>> memberships;

  for (const Atom& atom : query.atoms()) {
    switch (atom.kind()) {
      case AtomKind::kMembership: {
        // (d) element class compatible with the set's element type.
        ClassId element_cls = query.RangeClassOf(atom.var());
        ClassId owner = query.RangeClassOf(atom.set_term().var);
        const TypeExpr* type = schema.FindAttribute(owner, atom.set_term().attr);
        // Attribute presence/kind already verified in (b)/(c).
        if (type != nullptr && type->is_set() &&
            !schema.IsSubclassOf(element_cls, type->cls())) {
          return Unsat("membership '" + query.var_name(atom.var()) + " in " +
                       query.var_name(atom.set_term().var) + "." +
                       atom.set_term().attr + "' is type-incompatible: '" +
                       schema.class_name(element_cls) +
                       "' is not a descendant of '" +
                       schema.class_name(type->cls()) + "'");
        }
        memberships.emplace(graph.Find(graph.VarNode(atom.var())),
                            graph.Find(graph.VarNode(atom.set_term().var)),
                            atom.set_term().attr);
        break;
      }
      case AtomKind::kInequality: {
        // (e) both sides forced equal.
        if (graph.Equivalent(atom.lhs(), atom.rhs())) {
          return Unsat("inequality between terms that are required to be "
                       "equal");
        }
        // (e2) both sides' classes bound to the same literal.
        TermId lhs_node = graph.FindTermId(atom.lhs());
        TermId rhs_node = graph.FindTermId(atom.rhs());
        if (lhs_node != kInvalidTermId && rhs_node != kInvalidTermId) {
          auto l = constants.find(graph.Find(lhs_node));
          auto r = constants.find(graph.Find(rhs_node));
          if (l != constants.end() && r != constants.end() &&
              l->second == r->second) {
            return Unsat("inequality between terms both bound to the "
                         "literal " + ConstantToString(l->second));
          }
        }
        break;
      }
      case AtomKind::kNonRange:
        // (g) the terminal range class falls under an excluded class.
        for (ClassId excluded : atom.classes()) {
          if (schema.IsSubclassOf(query.RangeClassOf(atom.var()), excluded)) {
            return Unsat("variable '" + query.var_name(atom.var()) +
                         "' ranges over a descendant of excluded class '" +
                         schema.class_name(excluded) + "'");
          }
        }
        break;
      default:
        break;
    }
  }

  // (f) non-membership contradicted by a derivable membership.
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() != AtomKind::kNonMembership) continue;
    auto key = std::make_tuple(graph.Find(graph.VarNode(atom.var())),
                               graph.Find(graph.VarNode(atom.set_term().var)),
                               atom.set_term().attr);
    if (memberships.count(key) > 0) {
      return Unsat("non-membership '" + query.var_name(atom.var()) +
                   " notin " + query.var_name(atom.set_term().var) + "." +
                   atom.set_term().attr + "' contradicts a derivable "
                   "membership");
    }
  }

  return SatisfiabilityResult{true, ""};
}

StatusOr<bool> CheckSatisfiableGeneral(const Schema& schema,
                                       const ConjunctiveQuery& query,
                                       size_t* witness_disjunct) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));

  // Enumerate the Prop 2.1 terminal combinations lazily, stopping at the
  // first satisfiable one.
  std::vector<std::vector<ClassId>> choices(query.num_vars());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    std::set<ClassId> terminals;
    for (ClassId c : query.RangeAtomOf(v)->classes()) {
      for (ClassId t : schema.TerminalDescendants(c)) terminals.insert(t);
    }
    choices[v].assign(terminals.begin(), terminals.end());
  }

  std::vector<size_t> pick(query.num_vars(), 0);
  size_t index = 0;
  while (true) {
    ConjunctiveQuery disjunct;
    for (VarId v = 0; v < query.num_vars(); ++v) {
      disjunct.AddVariable(query.var_name(v));
    }
    disjunct.set_free_var(query.free_var());
    for (const Atom& atom : query.atoms()) {
      if (atom.kind() == AtomKind::kRange) {
        disjunct.AddAtom(
            Atom::Range(atom.var(), {choices[atom.var()][pick[atom.var()]]}));
      } else {
        disjunct.AddAtom(atom);
      }
    }
    if (CheckSatisfiable(schema, disjunct).satisfiable) {
      if (witness_disjunct != nullptr) *witness_disjunct = index;
      return true;
    }
    VarId v = 0;
    for (; v < query.num_vars(); ++v) {
      if (++pick[v] < choices[v].size()) break;
      pick[v] = 0;
    }
    if (v == query.num_vars()) return false;
    ++index;
  }
}

StatusOr<ConjunctiveQuery> NormalizeTerminalQuery(const Schema& schema,
                                                  const ConjunctiveQuery& query) {
  SatisfiabilityResult sat = CheckSatisfiable(schema, query);
  if (!sat.satisfiable) {
    return Status::FailedPrecondition(
        "cannot normalize an unsatisfiable query: " + sat.reason);
  }

  EqualityGraph graph = EqualityGraph::Build(query);
  // The terminal class of the objects a term denotes.
  auto term_class = [&](const Term& term) -> ClassId {
    if (!term.is_attribute()) return query.RangeClassOf(term.var);
    TermId t = graph.FindTermId(term);
    if (t == kInvalidTermId) return kInvalidClassId;
    for (VarId v : graph.ClassVariables(t)) return query.RangeClassOf(v);
    return kInvalidClassId;
  };

  ConjunctiveQuery result;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    result.AddVariable(query.var_name(v));
  }
  result.set_free_var(query.free_var());

  for (const Atom& atom : query.atoms()) {
    switch (atom.kind()) {
      case AtomKind::kNonRange:
        continue;  // Implied true by the satisfiability check (g).
      case AtomKind::kInequality: {
        ClassId lhs_cls = term_class(atom.lhs());
        ClassId rhs_cls = term_class(atom.rhs());
        // Distinct terminal classes have disjoint extents, and both sides
        // are non-null under any satisfying assignment (each object term is
        // equated to a ranged variable), so the atom is implied true.
        if (lhs_cls != kInvalidClassId && rhs_cls != kInvalidClassId &&
            lhs_cls != rhs_cls) {
          continue;
        }
        break;
      }
      default:
        // Non-membership atoms are never removed even when their element
        // class is disjoint from the set's element type: under 3-valued
        // logic the atom still forces y.A to be non-null (Ex 3.3), so the
        // removal would weaken the query.
        break;
    }
    result.AddAtom(atom);
  }

  // Constants extension: equivalence classes bound to the same literal
  // denote one object in every state; make the forced equalities explicit
  // so derivability (§3.1) sees them.
  std::map<std::string, VarId> constant_reps;
  std::set<TermId> merged;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() != AtomKind::kConstant) continue;
    TermId rep = graph.Find(graph.VarNode(atom.var()));
    if (!merged.insert(rep).second) continue;  // One merge per class.
    std::string key = ConstantToString(atom.constant());
    auto [it, inserted] = constant_reps.emplace(key, atom.var());
    if (!inserted && !graph.Equivalent(graph.VarNode(it->second),
                                       graph.VarNode(atom.var()))) {
      result.AddAtom(
          Atom::Equality(Term::Var(it->second), Term::Var(atom.var())));
    }
  }
  result.DeduplicateAtoms();
  return result;
}

}  // namespace oocq
