#ifndef OOCQ_CORE_CONTAINMENT_CACHE_H_
#define OOCQ_CORE_CONTAINMENT_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/containment.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Memoizes Contained() decisions keyed by the *canonical forms* of both
/// queries: containment is invariant under bound-variable renaming, so
/// (CanonicalKey(Q1), CanonicalKey(Q2)) identifies the decision. Workload
/// code deciding many overlapping pairs (redundancy removal,
/// view-selection matrices) hits the cache for every renamed duplicate.
///
/// Thread-safe: the table is split into independently mutex-guarded
/// shards, so the engine's parallel fan-outs share one memo table instead
/// of one engine per thread. Each decision is computed exactly once — a
/// thread requesting a key another thread is already computing blocks on
/// that shard until the value lands and then counts a hit. This keeps
/// hit/miss counters and the aggregated work statistics deterministic
/// across thread counts (misses == distinct keys decided).
///
/// The table is capped: when a shard reaches its share of
/// `Options::max_entries`, its oldest finished entry is evicted (FIFO).
/// The cache is tied to one schema.
class ContainmentCache {
 public:
  struct Options {
    /// Limits forwarded to every underlying Contained() call.
    ContainmentOptions containment;
    /// Total entry cap across all shards (0 = unlimited).
    size_t max_entries = 1 << 20;
    /// Number of independently locked shards (values < 1 act as 1).
    uint32_t num_shards = 16;
  };

  explicit ContainmentCache(const Schema* schema)
      : ContainmentCache(schema, Options()) {}
  ContainmentCache(const Schema* schema, Options options);
  /// Back-compat constructor: containment limits only, default sharding.
  ContainmentCache(const Schema* schema, ContainmentOptions containment);

  ContainmentCache(const ContainmentCache&) = delete;
  ContainmentCache& operator=(const ContainmentCache&) = delete;

  /// Contained(q1, q2), answered from the cache when a renaming of the
  /// pair was decided before (or is being decided concurrently — the call
  /// then waits instead of recomputing). `stats` (optional) accumulates
  /// the work counters of decisions this call actually computed.
  /// `cancel` (optional) is polled by a decision this call computes; a
  /// tripped token surfaces its retryable status. `budget` (optional) is
  /// charged by a decision this call computes — cached hits are free.
  /// Retryable errors (IsRetryable: deadline, cancellation, budget) are
  /// delivered to current waiters but never memoized, so a retry with a
  /// fresh deadline or budget recomputes; deterministic errors stay
  /// memoized to fail identical requests fast (Export() still never
  /// persists them).
  StatusOr<bool> Contained(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           ContainmentStats* stats = nullptr,
                           const CancellationToken* cancel = nullptr,
                           ResourceBudget* budget = nullptr);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Finished entries currently resident (sums shard sizes under locks).
  size_t size() const;

  /// Finished (key, verdict) pairs, oldest-first within each shard, for
  /// persistence (docs/persistence.md). At most `max_entries` pairs
  /// (0 = all). In-flight and errored entries are never exported.
  std::vector<std::pair<std::string, bool>> Export(size_t max_entries) const;

  /// Seeds one decided verdict under its canonical-pair key, as produced
  /// by Export(). Counts toward the entry cap (evicting as usual) but not
  /// toward hits/misses; an existing entry for the key wins.
  void Preload(const std::string& key, bool value);

 private:
  /// One memo slot. `done` flips under the shard mutex once the decision
  /// (or its error) is available; waiters sleep on the shard's condvar.
  struct Entry {
    bool done = false;
    bool value = false;
    Status error = Status::Ok();
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
    std::deque<std::string> fifo;  // insertion order, for eviction
  };

  Shard& ShardFor(const std::string& key);
  /// FIFO-evicts oldest finished entries until `shard` is within its cap.
  /// Caller holds shard.mu.
  void EvictIfOver(Shard& shard);

  const Schema* schema_;
  Options options_;
  size_t max_entries_per_shard_;  // 0 = unlimited
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace oocq

#endif  // OOCQ_CORE_CONTAINMENT_CACHE_H_
