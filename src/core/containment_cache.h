#ifndef OOCQ_CORE_CONTAINMENT_CACHE_H_
#define OOCQ_CORE_CONTAINMENT_CACHE_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/containment.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Memoizes Contained() decisions keyed by the *canonical forms* of both
/// queries: containment is invariant under bound-variable renaming, so
/// (CanonicalKey(Q1), CanonicalKey(Q2)) identifies the decision. Workload
/// code deciding many overlapping pairs (redundancy removal,
/// view-selection matrices) hits the cache for every renamed duplicate.
///
/// The cache is tied to one schema; not thread-safe (like the rest of the
/// library, one engine per thread).
class ContainmentCache {
 public:
  explicit ContainmentCache(const Schema* schema,
                            ContainmentOptions options = {})
      : schema_(schema), options_(options) {}

  /// Contained(q1, q2), answered from the cache when a renaming of the
  /// pair was decided before.
  StatusOr<bool> Contained(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  const Schema* schema_;
  ContainmentOptions options_;
  std::map<std::pair<std::string, std::string>, bool> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace oocq

#endif  // OOCQ_CORE_CONTAINMENT_CACHE_H_
