#ifndef OOCQ_CORE_VIEW_MATCHING_H_
#define OOCQ_CORE_VIEW_MATCHING_H_

#include <string>
#include <vector>

#include "core/minimization.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// How a materialized view relates to a user query — the classic
/// "answering queries using views" triage, decided exactly with the
/// paper's containment machinery.
enum class ViewUsability {
  /// View ≡ query: answer the query by reading the view verbatim.
  kExact,
  /// query ⊆ view: the view is a superset — scan the view and re-apply
  /// the query's conditions instead of scanning base extents.
  kSuperset,
  /// view ⊆ query (strictly): the view contributes answers but cannot
  /// answer the query alone.
  kSubset,
  /// Neither containment holds.
  kUnrelated,
};

const char* ViewUsabilityToString(ViewUsability usability);

/// A named materialized view.
struct ViewDefinition {
  std::string name;
  ConjunctiveQuery query;
};

/// One view's verdict for a user query.
struct ViewMatch {
  std::string view_name;
  ViewUsability usability = ViewUsability::kUnrelated;
};

/// Classifies every view against `query`. Queries and views may be
/// arbitrary positive conjunctive queries (they are normalized and
/// expanded internally); results are ordered as given, exact matches
/// first within equal usability is NOT reshuffled — callers rank.
StatusOr<std::vector<ViewMatch>> MatchViews(
    const Schema& schema, const std::vector<ViewDefinition>& views,
    const ConjunctiveQuery& query, const MinimizationOptions& options = {});

/// Convenience: the name of an exact-match view if any, else the first
/// superset view, else nullopt-like empty string.
StatusOr<std::string> BestViewFor(const Schema& schema,
                                  const std::vector<ViewDefinition>& views,
                                  const ConjunctiveQuery& query,
                                  const MinimizationOptions& options = {});

}  // namespace oocq

#endif  // OOCQ_CORE_VIEW_MATCHING_H_
