#ifndef OOCQ_CORE_MAPPING_H_
#define OOCQ_CORE_MAPPING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/derivability.h"
#include "query/query.h"
#include "schema/schema.h"

namespace oocq {

/// Constraints on the non-contradictory variable mapping search.
struct MappingConstraints {
  /// A target variable the image must avoid (used by minimization to force
  /// a non-bijective self-mapping). kInvalidVarId means unconstrained.
  VarId forbidden_target = kInvalidVarId;
  /// The image of the source free variable must be equivalent (in the
  /// target's E(Q)) to this target variable — this realizes condition (i)
  /// of Thm 3.1, τ(μ(t2)) = τ(t1) for every standardization function τ.
  /// kInvalidVarId defaults to the target query's free variable.
  VarId free_target = kInvalidVarId;
  /// Backtracking-step budget; exceeded searches report `exhausted`.
  uint64_t max_steps = 10'000'000;
};

/// Result of a mapping search.
struct MappingResult {
  /// The witness image (source VarId -> target VarId) when found.
  std::optional<std::vector<VarId>> image;
  /// True when the search hit max_steps before deciding; `image` empty
  /// then means "unknown", not "none exists".
  bool exhausted = false;
  /// Backtracking steps actually used (for the complexity benches).
  uint64_t steps = 0;

  bool found() const { return image.has_value(); }
};

/// Searches for a non-contradictory variable mapping μ from `from` to the
/// analyzed target query (§3.1): for every positive atom A of `from`,
/// target ⊢ μ(A); for every inequality or non-membership atom A, the
/// target does not contradict μ(A); and μ satisfies condition (i) through
/// MappingConstraints::free_target.
///
/// `from` must be a well-formed terminal conjunctive query; candidates for
/// each source variable are the target variables with the identical range
/// class (derivability of range atoms is syntactic presence). Non-range
/// atoms of `from` are checked statically against the image classes.
MappingResult FindNonContradictoryMapping(const Schema& schema,
                                          const ConjunctiveQuery& from,
                                          const QueryAnalysis& target,
                                          const MappingConstraints& constraints);

}  // namespace oocq

#endif  // OOCQ_CORE_MAPPING_H_
