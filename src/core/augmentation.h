#ifndef OOCQ_CORE_AUGMENTATION_H_
#define OOCQ_CORE_AUGMENTATION_H_

#include <cstdint>
#include <functional>

#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Limits for the augmentation enumeration of Thm 3.1. The number of
/// variable partitions grows like a product of Bell numbers per range
/// class; the cap turns a runaway enumeration into ResourceExhausted.
struct AugmentationOptions {
  uint64_t max_augmentations = 1'000'000;
};

/// Enumerates, up to closure, every *consistent augmentation* Q&S of a
/// satisfiable terminal conjunctive query (Thm 3.1): S ranges over sets of
/// equalities of Q's variables, and Q&S must stay satisfiable. Two S with
/// the same transitive closure produce equivalent augmented queries, so
/// the enumeration walks the partitions of Q's variables that merge only
/// same-range-class variables (a cross-class merge is always
/// unsatisfiable), skipping partitions whose augmented query is
/// unsatisfiable. S = ∅ (the discrete partition) is included.
///
/// `fn` receives each augmented query (same variable ids as `query`, with
/// the S equalities appended as atoms); returning false stops the
/// enumeration. The function result is true iff every fn call returned
/// true. Returns ResourceExhausted when the cap is hit.
StatusOr<bool> ForEachConsistentAugmentation(
    const Schema& schema, const ConjunctiveQuery& query,
    const AugmentationOptions& options,
    const std::function<bool(const ConjunctiveQuery&)>& fn);

/// The number of consistent augmentations (closures) of `query`, counted
/// with the same enumeration (used by benches and tests).
StatusOr<uint64_t> CountConsistentAugmentations(
    const Schema& schema, const ConjunctiveQuery& query,
    const AugmentationOptions& options);

}  // namespace oocq

#endif  // OOCQ_CORE_AUGMENTATION_H_
