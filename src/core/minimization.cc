#include "core/minimization.h"

#include <set>
#include <string>
#include <vector>

#include "core/canonical.h"
#include "core/derivability.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

/// Searches for a non-contradictory self-mapping of `query` that preserves
/// the free variable and avoids `eliminate` in its image. Returns the
/// image when found.
StatusOr<MappingResult> FindEliminatingSelfMapping(
    const Schema& schema, const ConjunctiveQuery& query, VarId eliminate,
    const MinimizationOptions& options) {
  OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                        QueryAnalysis::Create(schema, query));
  MappingConstraints constraints;
  constraints.forbidden_target = eliminate;
  constraints.free_target = query.free_var();
  constraints.max_steps = options.containment.max_mapping_steps;
  return FindNonContradictoryMapping(schema, query, analysis, constraints);
}

}  // namespace

StatusOr<ConjunctiveQuery> MinimizeTerminalPositive(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema) || !query.IsPositive()) {
    return Status::FailedPrecondition(
        "MinimizeTerminalPositive requires a terminal positive query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));

  bool progress = true;
  while (progress) {
    progress = false;
    for (VarId v = 0; v < current.num_vars(); ++v) {
      OOCQ_ASSIGN_OR_RETURN(
          MappingResult mapping,
          FindEliminatingSelfMapping(schema, current, v, options));
      if (mapping.exhausted) {
        return Status::ResourceExhausted(
            "self-mapping search exceeded max_mapping_steps");
      }
      if (!mapping.found()) continue;
      // Thm 4.3: μ(Q) ≡ Q; v is outside the image so at least one
      // variable disappears.
      ConjunctiveQuery folded = ApplyVariableMapping(current, *mapping.image);
      if (removed != nullptr) {
        *removed += current.num_vars() - folded.num_vars();
      }
      current = std::move(folded);
      progress = true;
      break;
    }
  }
  return current;
}

StatusOr<bool> IsMinimalTerminalPositive(const Schema& schema,
                                         const ConjunctiveQuery& query,
                                         const MinimizationOptions& options) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema) || !query.IsPositive()) {
    return Status::FailedPrecondition(
        "IsMinimalTerminalPositive requires a terminal positive query");
  }
  // A non-bijective self-mapping on a finite variable set misses some
  // variable, so trying every variable as the missing one is exhaustive.
  for (VarId v = 0; v < query.num_vars(); ++v) {
    OOCQ_ASSIGN_OR_RETURN(MappingResult mapping,
                          FindEliminatingSelfMapping(schema, query, v, options));
    if (mapping.exhausted) {
      return Status::ResourceExhausted(
          "self-mapping search exceeded max_mapping_steps");
    }
    if (mapping.found()) return false;
  }
  return true;
}

StatusOr<UnionQuery> RemoveRedundantDisjuncts(const Schema& schema,
                                              const UnionQuery& query,
                                              const MinimizationOptions& options) {
  // Drop unsatisfiable disjuncts, and collapse disjuncts that are
  // syntactic renamings of an earlier one (canonical-key pre-pass) before
  // paying for pairwise containment tests.
  std::vector<ConjunctiveQuery> live;
  std::set<std::string> seen_keys;
  for (const ConjunctiveQuery& q : query.disjuncts) {
    if (!CheckSatisfiable(schema, q).satisfiable) continue;
    if (!seen_keys.insert(CanonicalKey(q)).second) continue;
    live.push_back(q);
  }

  const size_t n = live.size();
  // contained[i][j] == live[i] ⊆ live[j].
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      OOCQ_ASSIGN_OR_RETURN(
          bool c, Contained(schema, live[i], live[j], options.containment));
      contained[i][j] = c;
    }
  }

  // Keep the first member of each equivalence group; drop anything
  // contained in a surviving disjunct.
  std::vector<bool> kept(n, true);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n && kept[i]; ++j) {
      if (i == j || !kept[j] || !contained[i][j]) continue;
      if (!contained[j][i] || j < i) kept[i] = false;
    }
  }

  UnionQuery result;
  for (size_t i = 0; i < n; ++i) {
    if (kept[i]) result.disjuncts.push_back(std::move(live[i]));
  }
  return result;
}

StatusOr<MinimizationReport> MinimizePositiveUnion(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options) {
  MinimizationReport report;

  UnionQuery expanded;
  for (const ConjunctiveQuery& disjunct : query.disjuncts) {
    OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, disjunct));
    if (!disjunct.IsPositive()) {
      return Status::FailedPrecondition(
          "MinimizePositiveUnion requires positive disjuncts");
    }
    ExpansionStats stats;
    OOCQ_ASSIGN_OR_RETURN(
        UnionQuery part,
        ExpandToTerminalQueries(schema, disjunct, options.expansion, &stats));
    report.raw_disjuncts += stats.raw_disjuncts;
    report.satisfiable_disjuncts += stats.satisfiable_disjuncts;
    for (ConjunctiveQuery& q : part.disjuncts) {
      expanded.disjuncts.push_back(std::move(q));
    }
  }

  OOCQ_ASSIGN_OR_RETURN(UnionQuery nonredundant,
                        RemoveRedundantDisjuncts(schema, expanded, options));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  for (ConjunctiveQuery& disjunct : nonredundant.disjuncts) {
    OOCQ_ASSIGN_OR_RETURN(
        ConjunctiveQuery minimal,
        MinimizeTerminalPositive(schema, disjunct, options,
                                 &report.variables_removed));
    report.minimized.disjuncts.push_back(std::move(minimal));
  }
  return report;
}

StatusOr<MinimizationReport> MinimizePositiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsPositive()) {
    return Status::FailedPrecondition(
        "MinimizePositiveQuery requires a positive conjunctive query");
  }

  MinimizationReport report;

  ExpansionStats expansion_stats;
  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery expanded,
      ExpandToTerminalQueries(schema, query, options.expansion,
                              &expansion_stats));
  report.raw_disjuncts = expansion_stats.raw_disjuncts;
  report.satisfiable_disjuncts = expansion_stats.satisfiable_disjuncts;

  OOCQ_ASSIGN_OR_RETURN(UnionQuery nonredundant,
                        RemoveRedundantDisjuncts(schema, expanded, options));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  for (ConjunctiveQuery& disjunct : nonredundant.disjuncts) {
    OOCQ_ASSIGN_OR_RETURN(
        ConjunctiveQuery minimal,
        MinimizeTerminalPositive(schema, disjunct, options,
                                 &report.variables_removed));
    report.minimized.disjuncts.push_back(std::move(minimal));
  }
  return report;
}

}  // namespace oocq
