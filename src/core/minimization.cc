#include "core/minimization.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/canonical.h"
#include "core/containment_cache.h"
#include "core/derivability.h"
#include "core/mapping.h"
#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace oocq {

namespace {

/// Searches for a non-contradictory self-mapping of `query` that preserves
/// the free variable and avoids `eliminate` in its image. Returns the
/// image when found.
StatusOr<MappingResult> FindEliminatingSelfMapping(
    const Schema& schema, const ConjunctiveQuery& query, VarId eliminate,
    const MinimizationOptions& options, ContainmentStats* stats) {
  OOCQ_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                        QueryAnalysis::Create(schema, query));
  MappingConstraints constraints;
  constraints.forbidden_target = eliminate;
  constraints.free_target = query.free_var();
  constraints.max_steps = options.containment.max_mapping_steps;
  MappingResult mapping =
      FindNonContradictoryMapping(schema, query, analysis, constraints);
  if (stats != nullptr) {
    ++stats->mapping_searches;
    stats->mapping_steps += mapping.steps;
  }
  return mapping;
}

/// Fans the variable minimization of each disjunct out over
/// options.parallel and appends the results (and their work counters) to
/// `report` in input order.
Status MinimizeDisjunctsInto(const Schema& schema,
                             const UnionQuery& nonredundant,
                             const EngineOptions& options,
                             MinimizationReport& report) {
  // §4 variable minimization (Thm 4.3 / Cor 4.4) of every surviving
  // disjunct.
  OOCQ_TRACE_SPAN(span, "MinimizeVariables");
  span.Arg("disjuncts", static_cast<uint64_t>(nonredundant.disjuncts.size()));
  ScopedPhaseTimer timer("phase/minimize_vars");
  struct DisjunctOutcome {
    ConjunctiveQuery minimal;
    uint64_t removed = 0;
    ContainmentStats stats;
  };
  OOCQ_ASSIGN_OR_RETURN(
      std::vector<DisjunctOutcome> outcomes,
      (ParallelMap<DisjunctOutcome>(
          options.parallel, nonredundant.disjuncts.size(),
          [&](size_t i) -> StatusOr<DisjunctOutcome> {
            DisjunctOutcome outcome;
            OOCQ_ASSIGN_OR_RETURN(
                outcome.minimal,
                MinimizeTerminalPositive(schema, nonredundant.disjuncts[i],
                                         options, &outcome.removed,
                                         &outcome.stats));
            return outcome;
          })));
  for (DisjunctOutcome& outcome : outcomes) {
    report.variables_removed += outcome.removed;
    report.containment.Add(outcome.stats);
    report.minimized.disjuncts.push_back(std::move(outcome.minimal));
  }
  span.Arg("vars_removed", report.variables_removed);
  OOCQ_METRIC_ADD("minimize/vars_removed", report.variables_removed);
  return Status::Ok();
}

}  // namespace

StatusOr<ConjunctiveQuery> MinimizeTerminalPositive(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, uint64_t* removed,
    ContainmentStats* stats) {
  OOCQ_TRACE_SPAN(span, "MinimizeTerminalPositive");
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema) || !query.IsPositive()) {
    return Status::FailedPrecondition(
        "MinimizeTerminalPositive requires a terminal positive query");
  }
  OOCQ_ASSIGN_OR_RETURN(ConjunctiveQuery current,
                        NormalizeTerminalQuery(schema, query));
  span.Arg("vars_in", static_cast<uint64_t>(current.num_vars()));

  bool progress = true;
  while (progress) {
    progress = false;
    for (VarId v = 0; v < current.num_vars(); ++v) {
      // One poll per candidate variable: each self-mapping search is an
      // independent work item, the granularity the cancellation contract
      // promises (support/cancellation.h).
      if (options.containment.cancel != nullptr) {
        OOCQ_RETURN_IF_ERROR(options.containment.cancel->Check());
      }
      OOCQ_ASSIGN_OR_RETURN(
          MappingResult mapping,
          FindEliminatingSelfMapping(schema, current, v, options, stats));
      if (mapping.exhausted) {
        return Status::ResourceExhausted(
            "self-mapping search exceeded max_mapping_steps");
      }
      if (!mapping.found()) continue;
      // Thm 4.3: μ(Q) ≡ Q; v is outside the image so at least one
      // variable disappears.
      ConjunctiveQuery folded = ApplyVariableMapping(current, *mapping.image);
      if (removed != nullptr) {
        *removed += current.num_vars() - folded.num_vars();
      }
      current = std::move(folded);
      progress = true;
      break;
    }
  }
  span.Arg("vars_out", static_cast<uint64_t>(current.num_vars()));
  return current;
}

StatusOr<bool> IsMinimalTerminalPositive(const Schema& schema,
                                         const ConjunctiveQuery& query,
                                         const MinimizationOptions& options) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema) || !query.IsPositive()) {
    return Status::FailedPrecondition(
        "IsMinimalTerminalPositive requires a terminal positive query");
  }
  // A non-bijective self-mapping on a finite variable set misses some
  // variable, so trying every variable as the missing one is exhaustive.
  for (VarId v = 0; v < query.num_vars(); ++v) {
    OOCQ_ASSIGN_OR_RETURN(
        MappingResult mapping,
        FindEliminatingSelfMapping(schema, query, v, options, nullptr));
    if (mapping.exhausted) {
      return Status::ResourceExhausted(
          "self-mapping search exceeded max_mapping_steps");
    }
    if (mapping.found()) return false;
  }
  return true;
}

StatusOr<UnionQuery> RemoveRedundantDisjuncts(const Schema& schema,
                                              const UnionQuery& query,
                                              const MinimizationOptions& options,
                                              ContainmentCache* cache,
                                              ContainmentStats* stats) {
  // Thm 4.2: the nonredundant union is unique up to equivalence — this
  // phase finds it via the pairwise containment matrix.
  OOCQ_TRACE_SPAN(span, "RemoveRedundantDisjuncts");
  span.Arg("disjuncts_in", static_cast<uint64_t>(query.disjuncts.size()));
  ScopedPhaseTimer timer("phase/redundancy");
  const EngineOptions opts = WithPropagatedParallelism(options);

  // Drop unsatisfiable disjuncts, and collapse disjuncts that are
  // syntactic renamings of an earlier one (canonical-key pre-pass) before
  // paying for pairwise containment tests. Screening each disjunct is
  // independent work and fans out; the ordered dedup stays serial.
  struct Screened {
    bool satisfiable = false;
    std::string key;
  };
  std::vector<ConjunctiveQuery> live;
  {
    OOCQ_TRACE_SPAN(screen_span, "ScreenDisjuncts");
    screen_span.Arg("disjuncts", static_cast<uint64_t>(query.disjuncts.size()));
    OOCQ_ASSIGN_OR_RETURN(
        std::vector<Screened> screened,
        (ParallelMap<Screened>(
            opts.parallel, query.disjuncts.size(),
            [&](size_t i) -> StatusOr<Screened> {
              Screened s;
              s.satisfiable =
                  CheckSatisfiable(schema, query.disjuncts[i]).satisfiable;
              if (s.satisfiable) s.key = CanonicalKey(query.disjuncts[i]);
              return s;
            })));
    std::set<std::string> seen_keys;
    for (size_t i = 0; i < query.disjuncts.size(); ++i) {
      if (!screened[i].satisfiable) continue;
      if (!seen_keys.insert(std::move(screened[i].key)).second) continue;
      live.push_back(query.disjuncts[i]);
    }
    screen_span.Arg("live", static_cast<uint64_t>(live.size()));
  }

  const size_t n = live.size();
  // contained[i][j] == live[i] ⊆ live[j]. The n·(n-1) tests are
  // independent; every pair is decided (no early exit), so the matrix —
  // and therefore the kept set and `stats` — is deterministic under any
  // schedule.
  struct PairOutcome {
    bool contained = false;
    ContainmentStats stats;
  };
  const size_t num_pairs = n < 2 ? 0 : n * (n - 1);
  OOCQ_TRACE_SPAN(matrix_span, "ContainmentMatrix");
  matrix_span.Arg("pairs", static_cast<uint64_t>(num_pairs));
  OOCQ_METRIC_ADD("redundancy/pairs", num_pairs);
  OOCQ_ASSIGN_OR_RETURN(
      std::vector<PairOutcome> pairs,
      (ParallelMap<PairOutcome>(
          opts.parallel, num_pairs,
          [&](size_t p) -> StatusOr<PairOutcome> {
            const size_t i = p / (n - 1);
            const size_t off = p % (n - 1);
            const size_t j = off < i ? off : off + 1;
            PairOutcome outcome;
            // Poll per matrix cell so an n² scan aborts within one test
            // of a tripped token (ParallelMap then drains cooperatively).
            if (opts.containment.cancel != nullptr) {
              OOCQ_RETURN_IF_ERROR(opts.containment.cancel->Check());
            }
            StatusOr<bool> contained =
                cache != nullptr
                    ? cache->Contained(live[i], live[j], &outcome.stats,
                                       opts.containment.cancel,
                                       opts.containment.budget)
                    : Contained(schema, live[i], live[j], opts.containment,
                                &outcome.stats);
            if (!contained.ok()) return contained.status();
            outcome.contained = *contained;
            return outcome;
          })));
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
  for (size_t p = 0; p < num_pairs; ++p) {
    const size_t i = p / (n - 1);
    const size_t off = p % (n - 1);
    const size_t j = off < i ? off : off + 1;
    contained[i][j] = pairs[p].contained;
    if (stats != nullptr) stats->Add(pairs[p].stats);
  }

  // Keep the first member of each equivalence group; drop anything
  // contained in a surviving disjunct.
  std::vector<bool> kept(n, true);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n && kept[i]; ++j) {
      if (i == j || !kept[j] || !contained[i][j]) continue;
      if (!contained[j][i] || j < i) kept[i] = false;
    }
  }

  UnionQuery result;
  for (size_t i = 0; i < n; ++i) {
    if (kept[i]) result.disjuncts.push_back(std::move(live[i]));
  }
  span.Arg("kept", static_cast<uint64_t>(result.disjuncts.size()));
  return result;
}

StatusOr<MinimizationReport> MinimizePositiveUnion(
    const Schema& schema, const UnionQuery& query,
    const MinimizationOptions& options, ContainmentCache* cache) {
  const EngineOptions opts = WithPropagatedParallelism(options);
  MinimizationReport report;

  // Each input disjunct expands (and prunes) independently.
  struct ExpandedPart {
    UnionQuery part;
    ExpansionStats stats;
  };
  OOCQ_ASSIGN_OR_RETURN(
      std::vector<ExpandedPart> parts,
      (ParallelMap<ExpandedPart>(
          opts.parallel, query.disjuncts.size(),
          [&](size_t i) -> StatusOr<ExpandedPart> {
            const ConjunctiveQuery& disjunct = query.disjuncts[i];
            OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, disjunct));
            if (!disjunct.IsPositive()) {
              return Status::FailedPrecondition(
                  "MinimizePositiveUnion requires positive disjuncts");
            }
            ExpandedPart expanded;
            OOCQ_ASSIGN_OR_RETURN(
                expanded.part,
                ExpandToTerminalQueries(schema, disjunct, opts.expansion,
                                        &expanded.stats));
            return expanded;
          })));
  UnionQuery expanded;
  for (ExpandedPart& part : parts) {
    report.raw_disjuncts += part.stats.raw_disjuncts;
    report.satisfiable_disjuncts += part.stats.satisfiable_disjuncts;
    for (ConjunctiveQuery& q : part.part.disjuncts) {
      expanded.disjuncts.push_back(std::move(q));
    }
  }

  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery nonredundant,
      RemoveRedundantDisjuncts(schema, expanded, opts, cache,
                               &report.containment));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  OOCQ_RETURN_IF_ERROR(
      MinimizeDisjunctsInto(schema, nonredundant, opts, report));
  return report;
}

StatusOr<MinimizationReport> MinimizePositiveQuery(
    const Schema& schema, const ConjunctiveQuery& query,
    const MinimizationOptions& options, ContainmentCache* cache) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsPositive()) {
    return Status::FailedPrecondition(
        "MinimizePositiveQuery requires a positive conjunctive query");
  }
  const EngineOptions opts = WithPropagatedParallelism(options);

  MinimizationReport report;

  ExpansionStats expansion_stats;
  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery expanded,
      ExpandToTerminalQueries(schema, query, opts.expansion,
                              &expansion_stats));
  report.raw_disjuncts = expansion_stats.raw_disjuncts;
  report.satisfiable_disjuncts = expansion_stats.satisfiable_disjuncts;

  OOCQ_ASSIGN_OR_RETURN(
      UnionQuery nonredundant,
      RemoveRedundantDisjuncts(schema, expanded, opts, cache,
                               &report.containment));
  report.nonredundant_disjuncts = nonredundant.disjuncts.size();

  OOCQ_RETURN_IF_ERROR(
      MinimizeDisjunctsInto(schema, nonredundant, opts, report));
  return report;
}

}  // namespace oocq
