#include "persist/codec.h"

#include <array>

#include "core/canonical.h"
#include "parser/parser.h"
#include "query/query.h"
#include "schema/schema.h"

namespace oocq::persist {

namespace {

constexpr char kMagic[8] = {'O', 'O', 'C', 'Q', 'P', 'R', 'S', '1'};

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
    }
    table[i] = crc;
  }
  return table;
}

void PutU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool GetU32(std::string_view buffer, size_t* offset, uint32_t* value) {
  if (buffer.size() - *offset < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(
             static_cast<unsigned char>(buffer[*offset + static_cast<size_t>(i)]))
         << (8 * i);
  }
  *offset += 4;
  *value = v;
  return true;
}

void PutString(std::string_view value, std::string* out) {
  PutU32(static_cast<uint32_t>(value.size()), out);
  out->append(value);
}

bool GetString(std::string_view buffer, size_t* offset, std::string* value) {
  uint32_t len = 0;
  if (!GetU32(buffer, offset, &len)) return false;
  if (buffer.size() - *offset < len) return false;
  value->assign(buffer.substr(*offset, len));
  *offset += len;
  return true;
}

uint64_t Fnv1a64(std::string_view data, uint64_t hash = 0xcbf29ce484222325ull) {
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexU64(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Computes the fingerprint by running the actual canonicalization on
/// probe queries that exercise its interesting axes (subclassing, set
/// attributes, bound variables, negative atoms) — any behavioral drift
/// in CanonicalKey shows up in these outputs.
std::string ComputeFingerprint() {
  StatusOr<Schema> schema = ParseSchema(R"(
schema Fingerprint {
  class A { S: {A}; N: Int; }
  class B under A { T: {B}; }
}
)");
  std::string material = "oocq-persist-v" + std::to_string(kFormatVersion);
  if (schema.ok()) {
    const char* kProbes[] = {
        "{ x | exists y (x in B & y in A & x in y.S) }",
        "{ x | exists y exists z (x in A & y in B & z in B & x in y.T & "
        "y in z.S & x notin z.T) }",
        "{ x | x in A & x.N = 7 }",
    };
    for (const char* probe : kProbes) {
      StatusOr<ConjunctiveQuery> query = ParseQuery(*schema, probe);
      if (query.ok()) {
        material += '|';
        material += CanonicalKey(*query);
      }
    }
  }
  return HexU64(Fnv1a64(material));
}

}  // namespace

const std::string& EngineFingerprint() {
  static const std::string fingerprint = ComputeFingerprint();
  return fingerprint;
}

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kCreateSession:
      return "create_session";
    case RecordType::kDefineQuery:
      return "define_query";
    case RecordType::kSetState:
      return "set_state";
    case RecordType::kDropSession:
      return "drop_session";
    case RecordType::kCacheEntry:
      return "cache_entry";
  }
  return "unknown";
}

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeRecord(const Record& record, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  payload.push_back(record.verdict ? 1 : 0);
  PutString(record.session_id, &payload);
  PutString(record.name, &payload);
  PutString(record.text, &payload);

  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32(payload), out);
  out->append(payload);
}

void EncodeFileHeader(std::string* out, std::string_view fingerprint) {
  out->append(kMagic, sizeof(kMagic));
  PutU32(kFormatVersion, out);
  PutString(fingerprint, out);
}

size_t EncodedHeaderSize(std::string_view fingerprint) {
  return sizeof(kMagic) + 4 + 4 + fingerprint.size();
}

Status DecodeFileHeader(std::string_view buffer, size_t* offset) {
  if (buffer.size() - *offset < sizeof(kMagic) + 4) {
    return Status::InvalidArgument("catalog file shorter than its header");
  }
  if (buffer.compare(*offset, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::FailedPrecondition("bad magic: not a catalog file");
  }
  *offset += sizeof(kMagic);
  uint32_t version = 0;
  if (!GetU32(buffer, offset, &version)) {
    return Status::InvalidArgument("catalog header truncated");
  }
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        "format version " + std::to_string(version) + " != " +
        std::to_string(kFormatVersion));
  }
  std::string fingerprint;
  if (!GetString(buffer, offset, &fingerprint)) {
    return Status::InvalidArgument("catalog header truncated");
  }
  if (fingerprint != EngineFingerprint()) {
    return Status::FailedPrecondition("engine fingerprint '" + fingerprint +
                                      "' != '" + EngineFingerprint() + "'");
  }
  return Status::Ok();
}

DecodeResult DecodeRecord(std::string_view buffer, size_t* offset,
                          Record* out) {
  size_t cursor = *offset;
  uint32_t payload_len = 0, crc = 0;
  if (!GetU32(buffer, &cursor, &payload_len)) return DecodeResult::kNeedMore;
  if (payload_len > kMaxPayloadBytes) return DecodeResult::kCorrupt;
  if (!GetU32(buffer, &cursor, &crc)) return DecodeResult::kNeedMore;
  if (buffer.size() - cursor < payload_len) return DecodeResult::kNeedMore;
  std::string_view payload = buffer.substr(cursor, payload_len);
  if (Crc32(payload) != crc) return DecodeResult::kCorrupt;

  // The payload checksummed clean; structural violations below are real
  // corruption (or an encoder bug), not a torn tail.
  if (payload.size() < 2) return DecodeResult::kCorrupt;
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type < static_cast<uint8_t>(RecordType::kCreateSession) ||
      type > static_cast<uint8_t>(RecordType::kCacheEntry)) {
    return DecodeResult::kCorrupt;
  }
  Record record;
  record.type = static_cast<RecordType>(type);
  record.verdict = payload[1] != 0;
  size_t field_offset = 2;
  if (!GetString(payload, &field_offset, &record.session_id) ||
      !GetString(payload, &field_offset, &record.name) ||
      !GetString(payload, &field_offset, &record.text) ||
      field_offset != payload.size()) {
    return DecodeResult::kCorrupt;
  }
  *out = std::move(record);
  *offset = cursor + payload_len;
  return DecodeResult::kOk;
}

}  // namespace oocq::persist
