#ifndef OOCQ_PERSIST_CATALOG_H_
#define OOCQ_PERSIST_CATALOG_H_

/// DurableCatalog — the persistence facade between the engine and the
/// server (docs/persistence.md). One catalog owns one data directory:
///
///   <data_dir>/wal.log          append-only mutation log (persist/wal.h)
///   <data_dir>/snapshot.NNNNNN  full-registry snapshots (persist/snapshot.h)
///   <data_dir>/TERM             replication term (decimal, fsynced rename)
///
/// Open() performs recovery: load the newest readable snapshot, replay
/// the WAL on top (truncating a torn tail), and expose the combined
/// record stream through recovered() for the service to apply. Stale
/// bytes never become state: a WAL or snapshot written by a different
/// format version or engine fingerprint is set aside and recovery
/// degrades to a logged cold start — never a crash, never a wrong
/// verdict.
///
/// At runtime the service logs every session mutation through Log()
/// while holding MutationGuard() in shared mode; SnapshotNow() (and the
/// background snapshotter thread) takes the same gate exclusively, so
/// the registry dump, the snapshot file and the WAL reset form one
/// atomic cut — no acked mutation can fall between a snapshot and the
/// log that survives it. Replay is idempotent (create-if-absent,
/// last-write-wins), so a crash after the snapshot rename but before
/// the WAL reset merely replays records the snapshot already contains.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/codec.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "support/status.h"

namespace oocq::persist {

struct DurableCatalogOptions {
  /// Directory holding the WAL and snapshots; created if missing.
  std::string data_dir;
  /// Background snapshot cadence in seconds; 0 disables the thread
  /// (snapshots then happen only via SnapshotNow(), e.g. on shutdown).
  uint32_t snapshot_interval_s = 60;
  /// WAL group-commit window (persist/wal.h).
  uint32_t group_commit_window_us = 200;
  /// Cap on containment-cache entries persisted per snapshot, across all
  /// sessions (0 = unlimited). Oldest-first within each session's cache.
  size_t max_cache_entries = 1 << 16;
  /// Test-only: forwarded to WalOptions::fail_after_bytes.
  uint64_t wal_fail_after_bytes = 0;
};

class DurableCatalog {
 public:
  struct Recovery {
    /// True when on-disk state existed but was rejected wholesale
    /// (version/fingerprint mismatch) — the catalog starts cold.
    bool cold_start = false;
    /// Human-readable recovery summary for the operator log.
    std::string note;
    uint64_t snapshot_seq = 0;
    uint64_t snapshot_records = 0;
    uint64_t wal_records = 0;
    uint64_t wal_truncated_bytes = 0;
  };

  /// Creates the data directory if needed and runs recovery. Fails only
  /// on environmental errors (unwritable directory); corruption and
  /// incompatibility degrade to a cold start recorded in recovery().
  static StatusOr<std::unique_ptr<DurableCatalog>> Open(
      DurableCatalogOptions options);

  /// Stops the snapshotter. Does NOT snapshot — callers that want a
  /// final compaction call SnapshotNow() first (OocqService does).
  ~DurableCatalog();

  DurableCatalog(const DurableCatalog&) = delete;
  DurableCatalog& operator=(const DurableCatalog&) = delete;

  /// The snapshot + WAL record stream in replay order. Valid until the
  /// first Log()/SnapshotNow(); the service applies it on construction.
  const std::vector<Record>& recovered() const { return recovered_; }
  const Recovery& recovery() const { return recovery_; }

  /// The gate every mutation must hold (shared) across its in-memory
  /// commit *and* its Log() call; see the header comment.
  std::shared_lock<std::shared_mutex> MutationGuard() {
    return std::shared_lock<std::shared_mutex>(gate_);
  }

  /// Appends one mutation to the WAL and waits for its group commit.
  /// Call with MutationGuard() held.
  Status Log(const Record& record);

  /// Dump + snapshot + WAL reset under the exclusive gate. No-op (Ok)
  /// when no dump function was registered yet.
  Status SnapshotNow();

  /// A full registry dump cut at an exact WAL position — the payload of
  /// a replication resync (docs/replication.md). Taken under the
  /// exclusive gate, so the dump plus every WAL record past `offset` in
  /// `epoch` reconstructs the primary exactly; nothing lands between.
  struct PositionedDump {
    std::vector<Record> records;
    uint64_t epoch = 0;
    uint64_t offset = 0;  // WAL byte offset of the cut
    uint64_t seq = 0;     // WAL records durable at the cut (this epoch)
  };

  /// Requires a registered dump (kFailedPrecondition otherwise — the
  /// service registers one on construction via StartSnapshotter).
  StatusOr<PositionedDump> DumpWithPosition();

  /// Registers the registry dump and starts the cadence thread
  /// (options.snapshot_interval_s; 0 registers the dump only). `dump`
  /// is called with mutations blocked and must not call back into the
  /// catalog. Idempotent.
  void StartSnapshotter(std::function<std::vector<Record>()> dump);
  /// Joins the cadence thread; further snapshots only via SnapshotNow().
  void StopSnapshotter();

  uint64_t snapshots_taken() const {
    return snapshots_taken_.load(std::memory_order_relaxed);
  }
  const DurableCatalogOptions& options() const { return options_; }
  WriteAheadLog* wal() { return wal_.get(); }

  /// The replication *term* — the write-authority generation, distinct
  /// from the WAL compaction epoch (docs/replication.md). Loaded from
  /// <data_dir>/TERM at Open() (1 when absent), bumped by promotion and
  /// adopted from higher-term peers; must only ever move forward.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }

  /// Persists `term` durably (atomic tmp+rename+fsync) and publishes it.
  /// kInvalidArgument when `term` would move the persisted term backwards.
  Status SetTerm(uint64_t term);

 private:
  explicit DurableCatalog(DurableCatalogOptions options)
      : options_(std::move(options)) {}

  void SnapshotLoop();

  DurableCatalogOptions options_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::vector<Record> recovered_;
  Recovery recovery_;
  uint64_t next_snapshot_seq_ = 1;

  /// Mutations shared, snapshots exclusive (see MutationGuard()).
  std::shared_mutex gate_;

  std::mutex dump_mu_;
  std::function<std::vector<Record>()> dump_;
  /// WAL appends at the time of the last snapshot — a cadence tick with
  /// nothing new appended skips the snapshot.
  uint64_t appends_at_last_snapshot_ = 0;

  std::mutex snapshotter_mu_;
  std::condition_variable snapshotter_cv_;
  std::thread snapshotter_;
  bool stop_snapshotter_ = false;

  std::atomic<uint64_t> snapshots_taken_{0};

  /// Serializes SetTerm() writers; readers use the atomic.
  std::mutex term_mu_;
  std::atomic<uint64_t> term_{1};
};

}  // namespace oocq::persist

#endif  // OOCQ_PERSIST_CATALOG_H_
