#ifndef OOCQ_PERSIST_WAL_H_
#define OOCQ_PERSIST_WAL_H_

/// The durable catalog's write-ahead log: session mutations are appended
/// as codec frames (persist/codec.h) and fsynced before the mutation is
/// acknowledged, so a restart replays every acked mutation since the
/// last snapshot. Snapshots compact the log by resetting it to a bare
/// header (DurableCatalog holds its mutation gate across both steps).
///
/// fsync batching: with `group_commit_window_us` > 0 an Append first
/// publishes its frame under the log mutex, then joins a *group commit* —
/// one appender becomes the sync leader, sleeps the window so concurrent
/// appends pile in behind it, and issues a single fsync covering all of
/// them; the rest just wait for the leader's sync to cover their
/// sequence number. Window 0 degenerates to fsync-per-append.
///
/// Replay tolerates exactly the failure a torn append leaves behind: the
/// first frame that is short or fails its CRC ends the replay and the
/// file is truncated back to the last good frame ("corrupt-tail
/// truncation") — acked history is never dropped, unacked bytes never
/// replayed. A header from a different format version or engine
/// fingerprint rejects the whole file with kFailedPrecondition; the
/// catalog degrades that to a logged cold start.
///
/// Tail reading (docs/replication.md): a subscriber addresses the log by
/// (epoch, byte offset). The epoch starts at 1 and bumps on every
/// Reset(), so an offset is only meaningful within one epoch — after a
/// compaction the subscriber must resync from a snapshot. WaitDurable()
/// parks until the fsync-covered tip moves past an offset (waking on
/// every completed group commit, so batches ship as they fsync), and
/// ReadDurableRange() hands back the raw frames — CRC intact — between
/// an offset and the durable tip.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "support/status.h"

namespace oocq::persist {

struct WalOptions {
  /// How long a sync leader waits for concurrent appends to share its
  /// fsync. 0 = every append fsyncs immediately.
  uint32_t group_commit_window_us = 200;
  /// Test-only fault injection: after this many total bytes the file
  /// "dies" — a frame crossing the limit is written only up to it (a
  /// torn append, as a SIGKILL mid-write would leave) and the append
  /// fails with kInternal. 0 disables.
  uint64_t fail_after_bytes = 0;
};

class WriteAheadLog {
 public:
  /// Opens `path` for appending, writing a fresh header when the file is
  /// new or empty. Open() does NOT validate existing contents — replay
  /// first (Replay()), then open.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalOptions options = {});

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and returns once an fsync covers it (see the
  /// group-commit comment above). Thread-safe.
  Status Append(const Record& record);

  /// Truncates the log back to a bare header — run by the snapshotter
  /// after the snapshot that subsumes the log's records is durable.
  Status Reset();

  /// Records appended through this handle (not counting replayed ones).
  uint64_t appended() const;
  /// fsync(2) calls issued; with batching, less than appended().
  uint64_t syncs() const;
  const std::string& path() const { return path_; }

  /// One encoded frame handed to a tail reader, with the byte offset it
  /// starts at. The frame bytes are exactly what Append() wrote — the
  /// CRC travels with them, so a shipped record is verifiable end to end.
  struct TailRecord {
    uint64_t offset = 0;
    std::string frame;
  };

  struct TailBatch {
    std::vector<TailRecord> records;
    /// Where the next read should start (== the durable tip when the
    /// batch drained everything available).
    uint64_t next_offset = 0;
    /// fsync-covered file size / record count / epoch at read time.
    uint64_t durable_bytes = 0;
    uint64_t durable_seq = 0;
    uint64_t epoch = 0;
  };

  /// Compaction epoch: 1 for a fresh log, bumped by every Reset().
  uint64_t epoch() const;
  /// File bytes (header included) covered by a completed fsync.
  uint64_t synced_bytes() const;
  /// Records covered by a completed fsync this epoch — includes records
  /// already in the file at open once NoteExistingRecords() seeded them.
  uint64_t synced_seq() const;

  /// Seeds the epoch-relative sequence counter with records already in
  /// the file. The catalog calls this right after replay, so sequence
  /// numbers shipped to subscribers count from the epoch start rather
  /// than from this handle's open.
  void NoteExistingRecords(uint64_t count);

  /// Blocks until the durable tip moves past `offset`, the epoch
  /// changes, or `timeout_ms` elapses. Returns true when there is
  /// something new for the caller (tip beyond `offset`, or a new epoch).
  bool WaitDurable(uint64_t offset, uint32_t timeout_ms) const;

  /// Reads fsync-covered frames starting at byte `from_offset`, up to
  /// roughly `max_bytes` (0 = a default batch; always at least one frame
  /// when one is durable, so a reader never stalls on a large record).
  /// An offset outside [header, durable tip], a mid-frame offset, or a
  /// Reset() racing the read returns kFailedPrecondition — the
  /// subscriber's signal to resync from a snapshot.
  StatusOr<TailBatch> ReadDurableRange(uint64_t from_offset,
                                       uint64_t max_bytes) const;

  struct ReplayResult {
    std::vector<Record> records;
    /// Bytes of torn/corrupt tail removed from the file.
    uint64_t truncated_bytes = 0;
  };

  /// Replays `path`: decodes every intact frame, truncating the file at
  /// the first torn or corrupt one. A missing file is an empty result; a
  /// header mismatch (version / engine fingerprint) is
  /// kFailedPrecondition and leaves the file untouched.
  static StatusOr<ReplayResult> Replay(const std::string& path);

 private:
  WriteAheadLog(std::string path, int fd, uint64_t size, WalOptions options)
      : path_(std::move(path)), fd_(fd), options_(options), bytes_(size) {}

  /// Blocks until an fsync covers sequence number `seq`; one caller
  /// becomes the leader for each sync round.
  Status SyncCovering(uint64_t seq);

  const std::string path_;
  int fd_;
  WalOptions options_;

  std::mutex write_mu_;       // serializes write(2) calls; guards bytes_
  uint64_t bytes_ = 0;        // file size written so far (incl. header)
  uint64_t write_seq_ = 0;    // frames fully written
  bool broken_ = false;       // a write failed; the log refuses appends

  mutable std::mutex sync_mu_;
  mutable std::condition_variable sync_cv_;
  uint64_t synced_seq_ = 0;    // frames covered by a completed fsync
  uint64_t synced_bytes_ = 0;  // file bytes covered by a completed fsync
  uint64_t epoch_ = 1;         // bumped by Reset(); offsets scoped to it
  bool sync_in_flight_ = false;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace oocq::persist

#endif  // OOCQ_PERSIST_WAL_H_
