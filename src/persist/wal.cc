#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/failpoint.h"
#include "support/file.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq::persist {

namespace {

/// write(2) the whole buffer, honoring the injected fault point: bytes
/// beyond `fail_at` (0 = off) are dropped on the floor, as if the
/// process had died mid-write. Returns false on the injected fault or a
/// real write error.
bool WriteAllWithFault(int fd, const char* data, size_t size,
                       uint64_t written_so_far, uint64_t fail_at) {
  size_t allowed = size;
  bool faulted = false;
  if (fail_at != 0) {
    if (written_so_far >= fail_at) {
      allowed = 0;
      faulted = true;
    } else if (written_so_far + size > fail_at) {
      allowed = static_cast<size_t>(fail_at - written_so_far);
      faulted = true;
    }
  }
  size_t done = 0;
  while (done < allowed) {
    ssize_t n = ::write(fd, data + done, allowed - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return !faulted;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("open wal '" + path + "': " +
                            std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::Internal("lseek wal '" + path + "': " +
                            std::strerror(errno));
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(
      path, fd, static_cast<uint64_t>(size), options));
  if (size == 0) {
    std::string header;
    EncodeFileHeader(&header);
    if (!WriteAllWithFault(fd, header.data(), header.size(), 0, 0)) {
      return Status::Internal("write wal header '" + path + "'");
    }
    wal->bytes_ = header.size();
    OOCQ_RETURN_IF_ERROR(FsyncFd(fd));
    OOCQ_RETURN_IF_ERROR(FsyncDir(DirName(path)));
  }
  // Everything already in the file is durable (WAL-before-ack wrote it,
  // replay truncated any torn tail before this open), so tail readers
  // may serve it immediately.
  wal->synced_bytes_ = wal->bytes_;
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status WriteAheadLog::Append(const Record& record) {
  // The durability leg of a mutation's trace path (WAL-before-ack): the
  // span covers encode + serialized write + covering fsync, so a slow
  // mutation attributes its latency to persistence, not the engine. The
  // histogram sees exactly one sample per acked append (tests pin
  // count == appended()).
  const uint64_t start_us = NowUs();
  OOCQ_TRACE_SPAN(span, "WalAppend");
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("wal/append"));
  std::string frame;
  EncodeRecord(record, &frame);
  span.Arg("bytes", frame.size());

  uint64_t my_seq;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (broken_) {
      return Status::Internal("write-ahead log is broken; mutations are "
                              "applied in memory only");
    }
    if (!WriteAllWithFault(fd_, frame.data(), frame.size(), bytes_,
                           options_.fail_after_bytes)) {
      broken_ = true;
      // The torn bytes stay in the file — exactly what replay's tail
      // truncation exists to clean up.
      bytes_ = options_.fail_after_bytes != 0 &&
                       bytes_ < options_.fail_after_bytes
                   ? options_.fail_after_bytes
                   : bytes_;
      return Status::Internal("wal append failed mid-write (torn frame)");
    }
    bytes_ += frame.size();
    my_seq = ++write_seq_;
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
  OOCQ_METRIC_ADD("persist/wal_appends", 1);
  OOCQ_METRIC_ADD("persist/wal_bytes", frame.size());
  Status synced = SyncCovering(my_seq);
  OOCQ_METRIC_RECORD("persist/wal_append_us", NowUs() - start_us);
  return synced;
}

Status WriteAheadLog::SyncCovering(uint64_t seq) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (true) {
    if (synced_seq_ >= seq) return Status::Ok();
    if (!sync_in_flight_) break;
    // A leader is (or just was) syncing; wait for its result and
    // re-check coverage.
    sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  }
  // This thread leads the next sync round.
  sync_in_flight_ = true;
  const uint64_t epoch_at_start = epoch_;
  lock.unlock();

  if (options_.group_commit_window_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_commit_window_us));
  }
  uint64_t covered;
  uint64_t covered_bytes;
  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    covered = write_seq_;
    covered_bytes = bytes_;
  }
  const uint64_t fsync_start_us = NowUs();
  Status synced = Failpoints::Check("wal/fsync");
  if (synced.ok()) synced = FsyncFd(fd_);
  // One histogram sample per physical fsync round (count == syncs()),
  // successful or not — a failing disk should dominate the tail, not
  // vanish from it.
  OOCQ_METRIC_RECORD("persist/fsync_us", NowUs() - fsync_start_us);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  OOCQ_METRIC_ADD("persist/fsyncs", 1);

  lock.lock();
  if (synced.ok() && epoch_ == epoch_at_start) {
    if (covered > synced_seq_) {
      // Appends this round durably covered beyond the ones already
      // synced: the group-commit amplification the sleep window buys.
      OOCQ_METRIC_RECORD("persist/group_commit_batch", covered - synced_seq_);
    }
    // Guarded on the epoch: a Reset() racing this round already rewound
    // the durable tip, and stale coverage must not resurrect it.
    synced_seq_ = covered;
    synced_bytes_ = covered_bytes;
  }
  sync_in_flight_ = false;
  lock.unlock();
  // Wakes both appenders waiting for coverage and tail readers parked
  // in WaitDurable() — the ship path sees each group commit as it lands.
  sync_cv_.notify_all();
  return synced;
}

Status WriteAheadLog::Reset() {
  std::string header;
  EncodeFileHeader(&header);
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("ftruncate wal: " + std::string(std::strerror(errno)));
  }
  // O_APPEND writes always land at the (new) end; rewrite the header.
  if (!WriteAllWithFault(fd_, header.data(), header.size(), 0, 0)) {
    broken_ = true;
    return Status::Internal("rewrite wal header after reset");
  }
  bytes_ = header.size();
  broken_ = false;
  write_seq_ = 0;
  synced_seq_ = 0;
  synced_bytes_ = header.size();
  ++epoch_;
  OOCQ_METRIC_ADD("persist/wal_resets", 1);
  Status synced = FsyncFd(fd_);
  // Parked tail readers must learn the epoch moved on — their offsets
  // just became meaningless and they need to resync from the snapshot.
  sync_cv_.notify_all();
  return synced;
}

uint64_t WriteAheadLog::epoch() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return epoch_;
}

uint64_t WriteAheadLog::synced_bytes() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return synced_bytes_;
}

uint64_t WriteAheadLog::synced_seq() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return synced_seq_;
}

void WriteAheadLog::NoteExistingRecords(uint64_t count) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  write_seq_ += count;
  synced_seq_ += count;
}

bool WriteAheadLog::WaitDurable(uint64_t offset, uint32_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(sync_mu_);
  const uint64_t epoch_at_entry = epoch_;
  sync_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return synced_bytes_ > offset || epoch_ != epoch_at_entry;
  });
  return synced_bytes_ > offset || epoch_ != epoch_at_entry;
}

StatusOr<WriteAheadLog::TailBatch> WriteAheadLog::ReadDurableRange(
    uint64_t from_offset, uint64_t max_bytes) const {
  TailBatch batch;
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    batch.durable_bytes = synced_bytes_;
    batch.durable_seq = synced_seq_;
    batch.epoch = epoch_;
  }
  const uint64_t header_bytes = EncodedHeaderSize();
  if (from_offset < header_bytes || from_offset > batch.durable_bytes) {
    return Status::FailedPrecondition(
        "wal offset " + std::to_string(from_offset) +
        " outside durable range [" + std::to_string(header_bytes) + ", " +
        std::to_string(batch.durable_bytes) + "]; resync required");
  }
  batch.next_offset = from_offset;
  if (from_offset == batch.durable_bytes) return batch;  // caught up

  int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open wal for tail read '" + path_ + "': " +
                            std::strerror(errno));
  }
  if (max_bytes == 0) max_bytes = 256 * 1024;
  const uint64_t available = batch.durable_bytes - from_offset;
  uint64_t want = std::min(available, max_bytes);
  Status failed = Status::Ok();
  std::string buffer;
  while (true) {
    buffer.resize(want);
    size_t done = 0;
    while (done < want) {
      ssize_t n = ::pread(fd, buffer.data() + done, want - done,
                          static_cast<off_t>(from_offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        failed = Status::Internal("pread wal tail: " +
                                  std::string(std::strerror(errno)));
        break;
      }
      if (n == 0) break;  // file shrank under us — a racing Reset()
      done += static_cast<size_t>(n);
    }
    if (!failed.ok()) break;
    buffer.resize(done);

    size_t offset = 0;
    size_t frame_start = 0;
    Record record;
    DecodeResult decoded;
    while ((decoded = DecodeRecord(buffer, &offset, &record)) ==
           DecodeResult::kOk) {
      TailRecord tail;
      tail.offset = from_offset + frame_start;
      tail.frame = buffer.substr(frame_start, offset - frame_start);
      batch.records.push_back(std::move(tail));
      frame_start = offset;
    }
    if (decoded == DecodeResult::kCorrupt) {
      failed = Status::FailedPrecondition(
          "wal tail read hit a corrupt frame at offset " +
          std::to_string(from_offset + frame_start) +
          " (mid-frame offset or racing compaction); resync required");
      break;
    }
    if (!batch.records.empty() || done >= available) {
      batch.next_offset = from_offset + frame_start;
      break;
    }
    // A single frame wider than the clamp: widen the read so the caller
    // always makes progress.
    want = std::min(available, want * 2);
  }
  ::close(fd);
  if (!failed.ok()) return failed;
  {
    // A Reset() racing the read may have replaced the bytes we decoded;
    // the epoch check invalidates the whole batch in that case.
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (epoch_ != batch.epoch) {
      return Status::FailedPrecondition(
          "wal compacted during tail read; resync required");
    }
  }
  OOCQ_METRIC_ADD("persist/wal_tail_reads", 1);
  OOCQ_METRIC_ADD("persist/wal_tail_records", batch.records.size());
  return batch;
}

uint64_t WriteAheadLog::appended() const {
  return appended_.load(std::memory_order_relaxed);
}

uint64_t WriteAheadLog::syncs() const {
  return syncs_.load(std::memory_order_relaxed);
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  OOCQ_TRACE_SPAN(span, "WalReplay");
  ReplayResult result;
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) return result;
    return contents.status();
  }
  if (contents->empty()) return result;

  size_t offset = 0;
  Status header = DecodeFileHeader(*contents, &offset);
  if (!header.ok()) {
    // Truncated header: a crash during the very first write. Treat as a
    // torn tail (empty log); anything else (mismatched version or
    // fingerprint) the caller must handle explicitly.
    if (header.code() == StatusCode::kInvalidArgument) {
      result.truncated_bytes = contents->size();
      OOCQ_RETURN_IF_ERROR(RemoveFileIfExists(path));
      return result;
    }
    return header;
  }

  Record record;
  while (DecodeRecord(*contents, &offset, &record) == DecodeResult::kOk) {
    result.records.push_back(std::move(record));
  }
  if (offset < contents->size()) {
    // Torn or corrupt tail: truncate the file back to the last intact
    // frame so the next append continues from a clean state.
    result.truncated_bytes = contents->size() - offset;
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return Status::Internal("truncate wal tail: " +
                              std::string(std::strerror(errno)));
    }
    OOCQ_METRIC_ADD("persist/wal_truncated_bytes", result.truncated_bytes);
  }
  span.Arg("records", static_cast<uint64_t>(result.records.size()))
      .Arg("truncated_bytes", result.truncated_bytes);
  OOCQ_METRIC_ADD("persist/wal_replayed_records", result.records.size());
  return result;
}

}  // namespace oocq::persist
