#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/failpoint.h"
#include "support/file.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq::persist {

namespace {

/// write(2) the whole buffer, honoring the injected fault point: bytes
/// beyond `fail_at` (0 = off) are dropped on the floor, as if the
/// process had died mid-write. Returns false on the injected fault or a
/// real write error.
bool WriteAllWithFault(int fd, const char* data, size_t size,
                       uint64_t written_so_far, uint64_t fail_at) {
  size_t allowed = size;
  bool faulted = false;
  if (fail_at != 0) {
    if (written_so_far >= fail_at) {
      allowed = 0;
      faulted = true;
    } else if (written_so_far + size > fail_at) {
      allowed = static_cast<size_t>(fail_at - written_so_far);
      faulted = true;
    }
  }
  size_t done = 0;
  while (done < allowed) {
    ssize_t n = ::write(fd, data + done, allowed - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return !faulted;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("open wal '" + path + "': " +
                            std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::Internal("lseek wal '" + path + "': " +
                            std::strerror(errno));
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(
      path, fd, static_cast<uint64_t>(size), options));
  if (size == 0) {
    std::string header;
    EncodeFileHeader(&header);
    if (!WriteAllWithFault(fd, header.data(), header.size(), 0, 0)) {
      return Status::Internal("write wal header '" + path + "'");
    }
    wal->bytes_ = header.size();
    OOCQ_RETURN_IF_ERROR(FsyncFd(fd));
    OOCQ_RETURN_IF_ERROR(FsyncDir(DirName(path)));
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status WriteAheadLog::Append(const Record& record) {
  // The durability leg of a mutation's trace path (WAL-before-ack): the
  // span covers encode + serialized write + covering fsync, so a slow
  // mutation attributes its latency to persistence, not the engine. The
  // histogram sees exactly one sample per acked append (tests pin
  // count == appended()).
  const uint64_t start_us = NowUs();
  OOCQ_TRACE_SPAN(span, "WalAppend");
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("wal/append"));
  std::string frame;
  EncodeRecord(record, &frame);
  span.Arg("bytes", frame.size());

  uint64_t my_seq;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (broken_) {
      return Status::Internal("write-ahead log is broken; mutations are "
                              "applied in memory only");
    }
    if (!WriteAllWithFault(fd_, frame.data(), frame.size(), bytes_,
                           options_.fail_after_bytes)) {
      broken_ = true;
      // The torn bytes stay in the file — exactly what replay's tail
      // truncation exists to clean up.
      bytes_ = options_.fail_after_bytes != 0 &&
                       bytes_ < options_.fail_after_bytes
                   ? options_.fail_after_bytes
                   : bytes_;
      return Status::Internal("wal append failed mid-write (torn frame)");
    }
    bytes_ += frame.size();
    my_seq = ++write_seq_;
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
  OOCQ_METRIC_ADD("persist/wal_appends", 1);
  OOCQ_METRIC_ADD("persist/wal_bytes", frame.size());
  Status synced = SyncCovering(my_seq);
  OOCQ_METRIC_RECORD("persist/wal_append_us", NowUs() - start_us);
  return synced;
}

Status WriteAheadLog::SyncCovering(uint64_t seq) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (true) {
    if (synced_seq_ >= seq) return Status::Ok();
    if (!sync_in_flight_) break;
    // A leader is (or just was) syncing; wait for its result and
    // re-check coverage.
    sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  }
  // This thread leads the next sync round.
  sync_in_flight_ = true;
  lock.unlock();

  if (options_.group_commit_window_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_commit_window_us));
  }
  uint64_t covered;
  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    covered = write_seq_;
  }
  const uint64_t fsync_start_us = NowUs();
  Status synced = Failpoints::Check("wal/fsync");
  if (synced.ok()) synced = FsyncFd(fd_);
  // One histogram sample per physical fsync round (count == syncs()),
  // successful or not — a failing disk should dominate the tail, not
  // vanish from it.
  OOCQ_METRIC_RECORD("persist/fsync_us", NowUs() - fsync_start_us);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  OOCQ_METRIC_ADD("persist/fsyncs", 1);

  lock.lock();
  if (synced.ok() && covered > synced_seq_) {
    // Appends this round durably covered beyond the ones already synced:
    // the group-commit amplification the sleep window buys.
    OOCQ_METRIC_RECORD("persist/group_commit_batch", covered - synced_seq_);
  }
  if (synced.ok()) synced_seq_ = covered;
  sync_in_flight_ = false;
  lock.unlock();
  sync_cv_.notify_all();
  return synced;
}

Status WriteAheadLog::Reset() {
  std::string header;
  EncodeFileHeader(&header);
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("ftruncate wal: " + std::string(std::strerror(errno)));
  }
  // O_APPEND writes always land at the (new) end; rewrite the header.
  if (!WriteAllWithFault(fd_, header.data(), header.size(), 0, 0)) {
    broken_ = true;
    return Status::Internal("rewrite wal header after reset");
  }
  bytes_ = header.size();
  broken_ = false;
  write_seq_ = 0;
  synced_seq_ = 0;
  OOCQ_METRIC_ADD("persist/wal_resets", 1);
  return FsyncFd(fd_);
}

uint64_t WriteAheadLog::appended() const {
  return appended_.load(std::memory_order_relaxed);
}

uint64_t WriteAheadLog::syncs() const {
  return syncs_.load(std::memory_order_relaxed);
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  OOCQ_TRACE_SPAN(span, "WalReplay");
  ReplayResult result;
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) return result;
    return contents.status();
  }
  if (contents->empty()) return result;

  size_t offset = 0;
  Status header = DecodeFileHeader(*contents, &offset);
  if (!header.ok()) {
    // Truncated header: a crash during the very first write. Treat as a
    // torn tail (empty log); anything else (mismatched version or
    // fingerprint) the caller must handle explicitly.
    if (header.code() == StatusCode::kInvalidArgument) {
      result.truncated_bytes = contents->size();
      OOCQ_RETURN_IF_ERROR(RemoveFileIfExists(path));
      return result;
    }
    return header;
  }

  Record record;
  while (DecodeRecord(*contents, &offset, &record) == DecodeResult::kOk) {
    result.records.push_back(std::move(record));
  }
  if (offset < contents->size()) {
    // Torn or corrupt tail: truncate the file back to the last intact
    // frame so the next append continues from a clean state.
    result.truncated_bytes = contents->size() - offset;
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return Status::Internal("truncate wal tail: " +
                              std::string(std::strerror(errno)));
    }
    OOCQ_METRIC_ADD("persist/wal_truncated_bytes", result.truncated_bytes);
  }
  span.Arg("records", static_cast<uint64_t>(result.records.size()))
      .Arg("truncated_bytes", result.truncated_bytes);
  OOCQ_METRIC_ADD("persist/wal_replayed_records", result.records.size());
  return result;
}

}  // namespace oocq::persist
