#include "persist/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "support/failpoint.h"
#include "support/file.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq::persist {

namespace {

constexpr const char* kPrefix = "snapshot.";

/// Parses "snapshot.NNNNNN" → NNNNNN; 0 when `name` is not a snapshot
/// (snapshot sequence numbers start at 1).
uint64_t SeqOf(const std::string& name) {
  const size_t prefix_len = std::char_traits<char>::length(kPrefix);
  if (name.rfind(kPrefix, 0) != 0 || name.size() == prefix_len) return 0;
  uint64_t seq = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

/// Snapshot seqs present in `dir`, ascending.
std::vector<uint64_t> SnapshotSeqs(const std::string& dir) {
  std::vector<uint64_t> seqs;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return seqs;
  for (const std::string& name : *names) {
    if (uint64_t seq = SeqOf(name); seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "%06llu",
                static_cast<unsigned long long>(seq));
  return dir + "/" + kPrefix + suffix;
}

Status WriteSnapshot(const std::string& dir, uint64_t seq,
                     const std::vector<Record>& records) {
  OOCQ_TRACE_SPAN(span, "SnapshotWrite");
  span.Arg("seq", seq).Arg("records", static_cast<uint64_t>(records.size()));
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("snapshot/write"));
  std::string contents;
  EncodeFileHeader(&contents);
  for (const Record& record : records) {
    EncodeRecord(record, &contents);
  }
  Status written = WriteFileDurable(SnapshotPath(dir, seq), contents);
  if (written.ok()) {
    MetricAdd("persist/snapshots", 1);
    MetricAdd("persist/snapshot_records", records.size());
    MetricRecord("persist/snapshot_bytes", contents.size());
  }
  return written;
}

StatusOr<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir) {
  OOCQ_TRACE_SPAN(span, "SnapshotLoad");
  OOCQ_RETURN_IF_ERROR(Failpoints::Check("snapshot/load"));
  LoadedSnapshot loaded;
  std::vector<uint64_t> seqs = SnapshotSeqs(dir);
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    const std::string path = SnapshotPath(dir, *it);
    StatusOr<std::string> contents = ReadFileToString(path);
    if (!contents.ok()) {
      loaded.skipped.push_back(path + ": " + contents.status().ToString());
      continue;
    }
    size_t offset = 0;
    Status header = DecodeFileHeader(*contents, &offset);
    if (!header.ok()) {
      loaded.skipped.push_back(path + ": " + header.ToString());
      continue;
    }
    std::vector<Record> records;
    Record record;
    DecodeResult decoded;
    while ((decoded = DecodeRecord(*contents, &offset, &record)) ==
           DecodeResult::kOk) {
      records.push_back(std::move(record));
    }
    if (offset != contents->size()) {
      // Rename-protected files should never be torn; a short or corrupt
      // one means external damage — skip it rather than trust a prefix.
      loaded.skipped.push_back(
          path + ": " +
          (decoded == DecodeResult::kCorrupt ? "corrupt frame" : "torn file"));
      continue;
    }
    loaded.seq = *it;
    loaded.records = std::move(records);
    break;
  }
  span.Arg("seq", loaded.seq)
      .Arg("records", static_cast<uint64_t>(loaded.records.size()))
      .Arg("skipped", static_cast<uint64_t>(loaded.skipped.size()));
  if (!loaded.skipped.empty()) {
    MetricAdd("persist/snapshots_skipped", loaded.skipped.size());
  }
  return loaded;
}

uint64_t LatestSnapshotSeq(const std::string& dir) {
  std::vector<uint64_t> seqs = SnapshotSeqs(dir);
  return seqs.empty() ? 0 : seqs.back();
}

void RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_seq) {
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    uint64_t seq = SeqOf(name);
    bool tmp_orphan = name.rfind(kPrefix, 0) == 0 &&
                      name.size() > 4 &&
                      name.compare(name.size() - 4, 4, ".tmp") == 0;
    if ((seq != 0 && seq < keep_seq) || tmp_orphan) {
      (void)RemoveFileIfExists(dir + "/" + name);
    }
  }
}

}  // namespace oocq::persist
