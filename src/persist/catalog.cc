#include "persist/catalog.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "support/file.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq::persist {

namespace {

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

std::string TermPath(const std::string& dir) { return dir + "/TERM"; }

/// Parses the TERM file body (decimal, optional trailing whitespace).
/// Returns 0 on garbage — the caller treats that as "start at term 1".
uint64_t ParseTerm(const std::string& body) {
  uint64_t term = 0;
  for (char c : body) {
    if (c == '\n' || c == '\r' || c == ' ') break;
    if (c < '0' || c > '9') return 0;
    term = term * 10 + static_cast<uint64_t>(c - '0');
  }
  return term;
}

}  // namespace

StatusOr<std::unique_ptr<DurableCatalog>> DurableCatalog::Open(
    DurableCatalogOptions options) {
  OOCQ_TRACE_SPAN(span, "CatalogOpen");
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("DurableCatalogOptions.data_dir is empty");
  }
  OOCQ_RETURN_IF_ERROR(MakeDirs(options.data_dir));

  std::unique_ptr<DurableCatalog> catalog(
      new DurableCatalog(std::move(options)));
  const std::string& dir = catalog->options_.data_dir;
  Recovery& recovery = catalog->recovery_;

  // 1. Newest readable snapshot (unreadable ones are skipped, not fatal).
  OOCQ_ASSIGN_OR_RETURN(LoadedSnapshot snapshot, LoadLatestSnapshot(dir));
  recovery.snapshot_seq = snapshot.seq;
  recovery.snapshot_records = snapshot.records.size();
  for (const std::string& reason : snapshot.skipped) {
    recovery.note += "skipped " + reason + "; ";
  }
  catalog->recovered_ = std::move(snapshot.records);

  // 2. WAL replay on top. A fingerprint/version mismatch rejects the
  // whole file: set it aside and degrade to whatever the snapshot gave
  // us (or a cold start) rather than trust stale mutations.
  StatusOr<WriteAheadLog::ReplayResult> replayed =
      WriteAheadLog::Replay(WalPath(dir));
  if (replayed.ok()) {
    recovery.wal_records = replayed->records.size();
    recovery.wal_truncated_bytes = replayed->truncated_bytes;
    for (Record& record : replayed->records) {
      catalog->recovered_.push_back(std::move(record));
    }
  } else if (replayed.status().code() == StatusCode::kFailedPrecondition) {
    recovery.note += "wal rejected (" + replayed.status().ToString() +
                     "), set aside as wal.log.stale; ";
    if (std::rename(WalPath(dir).c_str(),
                    (WalPath(dir) + ".stale").c_str()) != 0) {
      OOCQ_RETURN_IF_ERROR(RemoveFileIfExists(WalPath(dir)));
    }
    MetricAdd("persist/wal_rejected", 1);
    if (recovery.snapshot_seq == 0) recovery.cold_start = true;
  } else {
    return replayed.status();
  }
  if (recovery.snapshot_seq == 0 && !snapshot.skipped.empty() &&
      recovery.wal_records == 0) {
    recovery.cold_start = true;
  }

  if (recovery.note.empty()) {
    recovery.note = catalog->recovered_.empty()
                        ? "empty catalog"
                        : "recovered " +
                              std::to_string(catalog->recovered_.size()) +
                              " record(s)";
  }

  // 3. Open the WAL for appending; new mutations land after the replayed
  // (and tail-truncated) history.
  WalOptions wal_options;
  wal_options.group_commit_window_us = catalog->options_.group_commit_window_us;
  wal_options.fail_after_bytes = catalog->options_.wal_fail_after_bytes;
  OOCQ_ASSIGN_OR_RETURN(catalog->wal_,
                        WriteAheadLog::Open(WalPath(dir), wal_options));
  // Seed the epoch-relative sequence with the records already in the
  // file, so offsets and sequence numbers shipped to replication
  // subscribers describe the whole epoch, not just this handle's run.
  catalog->wal_->NoteExistingRecords(recovery.wal_records);

  // 4. Replication term. Absent or unreadable degrades to term 1 with a
  // recovery note — same stale-bytes-never-crash posture as the WAL.
  StatusOr<std::string> term_body = ReadFileToString(TermPath(dir));
  if (term_body.ok()) {
    uint64_t term = ParseTerm(*term_body);
    if (term == 0) {
      recovery.note += "; TERM file unreadable, reset to 1";
    } else {
      catalog->term_.store(term, std::memory_order_release);
    }
  }

  catalog->next_snapshot_seq_ = LatestSnapshotSeq(dir) + 1;
  span.Arg("snapshot_seq", recovery.snapshot_seq)
      .Arg("records", static_cast<uint64_t>(catalog->recovered_.size()))
      .Arg("cold_start", static_cast<uint64_t>(recovery.cold_start ? 1 : 0));
  MetricAdd("persist/recoveries", 1);
  MetricAdd("persist/recovered_records", catalog->recovered_.size());
  return catalog;
}

DurableCatalog::~DurableCatalog() { StopSnapshotter(); }

Status DurableCatalog::Log(const Record& record) {
  return wal_->Append(record);
}

Status DurableCatalog::SetTerm(uint64_t term) {
  std::lock_guard<std::mutex> lock(term_mu_);
  const uint64_t current = term_.load(std::memory_order_acquire);
  if (term < current) {
    return Status::InvalidArgument(
        "replication term must be monotonic: have " + std::to_string(current) +
        ", asked to set " + std::to_string(term));
  }
  if (term == current) return Status::Ok();
  // Durable before visible: a crash between the two leaves a higher
  // on-disk term than in memory, which is safe (terms only ratchet up);
  // the reverse order could ack writes under a term that does not
  // survive restart.
  OOCQ_RETURN_IF_ERROR(
      WriteFileDurable(TermPath(options_.data_dir), std::to_string(term) + "\n"));
  term_.store(term, std::memory_order_release);
  MetricAdd("persist/term_writes", 1);
  return Status::Ok();
}

Status DurableCatalog::SnapshotNow() {
  std::function<std::vector<Record>()> dump;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    dump = dump_;
  }
  if (!dump) return Status::Ok();

  // Snapshot duration matters operationally because the gate below holds
  // off every mutation for its whole extent.
  const uint64_t start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  OOCQ_TRACE_SPAN(span, "Snapshot");
  // Exclusive gate: no mutation commits (in memory or to the WAL) while
  // the dump, the snapshot write, and the WAL reset happen — the three
  // form one atomic cut, so the reset cannot drop an un-snapshotted
  // mutation.
  std::unique_lock<std::shared_mutex> gate(gate_);
  std::vector<Record> records = dump();
  uint64_t seq = next_snapshot_seq_;
  OOCQ_RETURN_IF_ERROR(WriteSnapshot(options_.data_dir, seq, records));
  OOCQ_RETURN_IF_ERROR(wal_->Reset());
  next_snapshot_seq_ = seq + 1;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    appends_at_last_snapshot_ = wal_->appended();
  }
  gate.unlock();

  RemoveSnapshotsBefore(options_.data_dir, seq);
  snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  MetricRecord("persist/snapshot_us",
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count()) -
                   start_us);
  span.Arg("seq", seq).Arg("records", static_cast<uint64_t>(records.size()));
  return Status::Ok();
}

StatusOr<DurableCatalog::PositionedDump> DurableCatalog::DumpWithPosition() {
  std::function<std::vector<Record>()> dump;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    dump = dump_;
  }
  if (!dump) {
    return Status::FailedPrecondition(
        "no registry dump registered; cannot cut a positioned dump");
  }
  OOCQ_TRACE_SPAN(span, "PositionedDump");
  // Exclusive gate: with every mutation held off, the WAL's durable tip
  // equals its write tip, and the dump describes exactly the state the
  // log reaches at that tip.
  std::unique_lock<std::shared_mutex> gate(gate_);
  PositionedDump result;
  result.records = dump();
  result.epoch = wal_->epoch();
  result.offset = wal_->synced_bytes();
  result.seq = wal_->synced_seq();
  gate.unlock();
  MetricAdd("persist/positioned_dumps", 1);
  span.Arg("records", static_cast<uint64_t>(result.records.size()))
      .Arg("offset", result.offset);
  return result;
}

void DurableCatalog::StartSnapshotter(
    std::function<std::vector<Record>()> dump) {
  const bool has_dump = static_cast<bool>(dump);
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    dump_ = std::move(dump);
  }
  // A null dump detaches the provider (the service does this as it dies).
  if (!has_dump || options_.snapshot_interval_s == 0) return;
  std::lock_guard<std::mutex> lock(snapshotter_mu_);
  if (snapshotter_.joinable()) return;
  stop_snapshotter_ = false;
  snapshotter_ = std::thread([this] { SnapshotLoop(); });
}

void DurableCatalog::StopSnapshotter() {
  {
    std::lock_guard<std::mutex> lock(snapshotter_mu_);
    stop_snapshotter_ = true;
  }
  snapshotter_cv_.notify_all();
  if (snapshotter_.joinable()) snapshotter_.join();
}

void DurableCatalog::SnapshotLoop() {
  std::unique_lock<std::mutex> lock(snapshotter_mu_);
  while (!stop_snapshotter_) {
    snapshotter_cv_.wait_for(
        lock, std::chrono::seconds(options_.snapshot_interval_s),
        [this] { return stop_snapshotter_; });
    if (stop_snapshotter_) return;
    bool idle;
    {
      std::lock_guard<std::mutex> dump_lock(dump_mu_);
      idle = wal_->appended() == appends_at_last_snapshot_;
    }
    if (idle) continue;  // nothing new since the last snapshot
    lock.unlock();
    Status taken = SnapshotNow();
    if (!taken.ok()) MetricAdd("persist/snapshot_failures", 1);
    lock.lock();
  }
}

}  // namespace oocq::persist
