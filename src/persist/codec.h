#ifndef OOCQ_PERSIST_CODEC_H_
#define OOCQ_PERSIST_CODEC_H_

/// The binary record codec of the durable catalog (docs/persistence.md).
///
/// Catalog files — the write-ahead log and every snapshot — share one
/// format: a header followed by length-prefixed, CRC-checksummed frames:
///
///   file   := header frame*
///   header := magic(8) version(u32) fingerprint(varstr)
///   frame  := payload_len(u32) crc32(payload)(u32) payload
///
/// The payload is one Record: the catalog mutation kinds (CreateSession /
/// DefineQuery / SetState / DropSession) carry the *textual* round-trip
/// forms of their objects (SchemaToString / QueryToString / StateToString,
/// all of which re-parse), and CacheEntry carries a containment-cache key
/// (the canonical-pair byte string of core/canonical.h) plus its verdict.
///
/// Two guards reject stale bytes instead of trusting them:
/// - the per-frame CRC32 catches torn appends and bit rot; a replay
///   truncates the file at the first bad frame (wal.h);
/// - the header's format version and *engine fingerprint* — a hash of the
///   canonical-key algorithm's actual output on probe queries — reject a
///   whole file written by an incompatible engine, so cached verdicts
///   keyed under an older canonical form are never replayed as truth.
#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.h"

namespace oocq::persist {

/// Bumped on any incompatible change to the frame or payload layout.
inline constexpr uint32_t kFormatVersion = 1;

/// Frames larger than this are treated as corruption, not allocation
/// requests — a flipped length byte must not OOM the replay.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Identifies the semantics of the engine that wrote a file: a hash of
/// kFormatVersion and of CanonicalKey() outputs on fixed probe queries.
/// If the canonicalization algorithm changes, the fingerprint changes
/// with it and old cache entries are rejected wholesale. Deterministic
/// across processes and runs; computed once per process.
const std::string& EngineFingerprint();

enum class RecordType : uint8_t {
  kCreateSession = 1,  // session_id + schema text
  kDefineQuery = 2,    // session_id + name + query text
  kSetState = 3,       // session_id + state text
  kDropSession = 4,    // session_id
  kCacheEntry = 5,     // session_id + canonical-pair key (text) + verdict
};

const char* RecordTypeName(RecordType type);

/// One catalog record. Which fields are meaningful depends on `type`;
/// unused fields encode as empty and decode back as empty.
struct Record {
  RecordType type = RecordType::kCreateSession;
  std::string session_id;
  std::string name;      // kDefineQuery: the @name being defined
  std::string text;      // schema / query / state text, or the cache key
  bool verdict = false;  // kCacheEntry: the memoized containment verdict

  friend bool operator==(const Record& a, const Record& b) {
    return a.type == b.type && a.session_id == b.session_id &&
           a.name == b.name && a.text == b.text && a.verdict == b.verdict;
  }
};

/// CRC-32 (IEEE 802.3) of `data`.
uint32_t Crc32(std::string_view data);

/// Appends the framed encoding of `record` to `*out`.
void EncodeRecord(const Record& record, std::string* out);

/// Appends the file header (magic + version + `fingerprint`) to `*out`.
/// The fingerprint parameter exists so tests can write mismatched
/// headers; production callers use the default.
void EncodeFileHeader(std::string* out,
                      std::string_view fingerprint = EngineFingerprint());

/// Size in bytes of the header EncodeFileHeader writes.
size_t EncodedHeaderSize(std::string_view fingerprint = EngineFingerprint());

/// Verifies the header at `*offset` and advances past it. A wrong magic,
/// version or fingerprint is kFailedPrecondition (callers degrade to a
/// cold start); a buffer shorter than the header is kInvalidArgument.
Status DecodeFileHeader(std::string_view buffer, size_t* offset);

enum class DecodeResult {
  kOk,        // one record decoded, *offset advanced
  kNeedMore,  // clean EOF or a torn frame: the tail is incomplete
  kCorrupt,   // checksum/type/length violation at *offset
};

/// Decodes one frame at `*offset`. Advances `*offset` only on kOk.
DecodeResult DecodeRecord(std::string_view buffer, size_t* offset,
                          Record* out);

}  // namespace oocq::persist

#endif  // OOCQ_PERSIST_CODEC_H_
