#ifndef OOCQ_PERSIST_SNAPSHOT_H_
#define OOCQ_PERSIST_SNAPSHOT_H_

/// Atomic catalog snapshots: the full session registry (and the
/// containment-cache verdicts worth warming) serialized as one codec
/// file `snapshot.NNNNNN` in the data directory.
///
/// Atomicity comes from the write protocol, not the format: the records
/// are written and fsynced into a `.tmp` sibling, renamed into place,
/// and the directory is fsynced — a reader (the next process) either
/// sees the complete snapshot or none of it, never a torn one. A crash
/// mid-write leaves only a `.tmp` orphan, which loading ignores.
///
/// Loading walks snapshots newest-first and returns the first readable
/// one; files with a mismatched version/fingerprint or corrupt frames
/// are skipped (never trusted, never fatal). Old snapshots are removed
/// by the writer after the newer one is durable.
#include <cstdint>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "support/status.h"

namespace oocq::persist {

/// Writes `records` as `<dir>/snapshot.<seq>` via temp + rename + dir
/// fsync.
Status WriteSnapshot(const std::string& dir, uint64_t seq,
                     const std::vector<Record>& records);

struct LoadedSnapshot {
  /// 0 when no readable snapshot exists (records then empty).
  uint64_t seq = 0;
  std::vector<Record> records;
  /// Snapshots that were present but unreadable (corrupt or written by
  /// an incompatible engine) and therefore skipped, newest first.
  std::vector<std::string> skipped;
};

/// Loads the newest readable snapshot in `dir` (see header comment).
/// A missing directory or no snapshots at all is a seq-0 result, not an
/// error.
StatusOr<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir);

/// The highest snapshot sequence number present in `dir` (readable or
/// not); 0 when none.
uint64_t LatestSnapshotSeq(const std::string& dir);

/// Removes every snapshot (and snapshot temp orphan) with seq < keep_seq.
void RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_seq);

/// "<dir>/snapshot.NNNNNN" for `seq`.
std::string SnapshotPath(const std::string& dir, uint64_t seq);

}  // namespace oocq::persist

#endif  // OOCQ_PERSIST_SNAPSHOT_H_
