#include "compile/compiler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "support/metrics.h"

namespace oocq::compile {

namespace {

/// Static cost/selectivity priority per test opcode (lower runs earlier).
/// Used when no recorded pass rates are available, so plans are
/// deterministic with metrics off. Equality against an interned constant
/// is the cheapest and most selective; set probes the least.
uint32_t StaticTestPriority(OpCode code) {
  switch (code) {
    case OpCode::kTestConst: return 50;
    case OpCode::kTestEqVarVar: return 100;
    case OpCode::kTestClass: return 200;
    case OpCode::kTestNotClass: return 300;
    case OpCode::kTestMember: return 350;
    case OpCode::kTestEqVarSlot: return 400;
    case OpCode::kTestEqSlotSlot: return 450;
    case OpCode::kTestNeVarVar: return 500;
    case OpCode::kTestNeVarSlot: return 550;
    case OpCode::kTestNeSlotSlot: return 580;
    case OpCode::kTestNotMember: return 600;
    default: return 1000;
  }
}

/// The ordering key of a test: the opcode's observed pass rate (per
/// mille) when the metrics registry has accumulated enough samples from
/// prior VM runs (`compile/sel/<op>/{pass,total}`), else the static
/// priority. A lower pass rate prunes more per test, so it runs earlier.
uint32_t TestPriority(const Op& test, bool use_stats) {
  if (use_stats) {
    if (MetricsRegistry* metrics = ActiveMetrics()) {
      const std::string base =
          std::string("compile/sel/") + OpCodeName(test.code);
      const uint64_t total = metrics->CounterValue(base + "/total");
      // Below this many samples the observed rate is noise; stick to the
      // static plan so two compiles of one query agree.
      if (total >= 256) {
        const uint64_t pass = metrics->CounterValue(base + "/pass");
        return static_cast<uint32_t>(pass * 1000 / total);
      }
    }
  }
  return StaticTestPriority(test.code);
}

struct AtomPlan {
  const Atom* atom = nullptr;
  bool consumed = false;  // realized by a generator, not a test
};

/// Variables an atom mentions (including set-term owners).
void AtomVars(const Atom& atom, VarId out[2], int* count) {
  *count = 0;
  switch (atom.kind()) {
    case AtomKind::kRange:
    case AtomKind::kNonRange:
    case AtomKind::kConstant:
      out[(*count)++] = atom.var();
      break;
    default:
      out[(*count)++] = atom.lhs().var;
      if (atom.rhs().var != atom.lhs().var) out[(*count)++] = atom.rhs().var;
      break;
  }
}

}  // namespace

StatusOr<CompiledQuery> CompileQuery(const Schema& schema,
                                     const ConjunctiveQuery& query,
                                     const CompileOptions& options) {
  const size_t n = query.num_vars();
  if (n == 0 || query.free_var() == kInvalidVarId || query.free_var() >= n) {
    return Status::FailedPrecondition(
        "compile: query without a bindable free variable");
  }
  if (n > 4096) {
    return Status::FailedPrecondition("compile: too many variables");
  }

  CompiledQuery program;
  program.free_var = query.free_var();
  program.num_vars = static_cast<uint32_t>(n);
  program.range_classes.resize(n);
  for (VarId v = 0; v < n; ++v) {
    if (const Atom* range = query.RangeAtomOf(v)) {
      program.range_classes[v] = range->classes();
    }
  }

  std::vector<AtomPlan> plans;
  plans.reserve(query.atoms().size());
  for (const Atom& atom : query.atoms()) plans.push_back({&atom, false});

  // ---- Binding order + generator selection ------------------------------
  // Greedy: seed with the most-constrained variable, then repeatedly bind
  // the variable reachable from the bound set through the cheapest
  // generator — a unit binding (x = y / x = y.A) beats enumerating a
  // bound set's members, which beats scanning an extent; a variable
  // sharing any atom with a bound one beats a disconnected scan (its
  // joins prune at this depth instead of the innermost loop). All ties
  // break on the lowest VarId, so plans are deterministic.
  std::vector<char> placed(n, 0);
  std::vector<VarId> order;
  std::vector<Op> generators(n);
  std::vector<int> consumed_by_gen(n, -1);  // plan index the generator eats

  auto connected = [&](VarId v) {
    for (const AtomPlan& plan : plans) {
      VarId vars[2];
      int count = 0;
      AtomVars(*plan.atom, vars, &count);
      if (count != 2) continue;
      VarId other = vars[0] == v ? vars[1] : (vars[1] == v ? vars[0] : kInvalidVarId);
      if (other != kInvalidVarId && placed[other]) return true;
    }
    return false;
  };

  // Best generator reachable for `v` from the placed set. Returns the
  // rank (0 bind-var, 1 bind-slot-ref, 2 scan-set-members, 3 connected
  // scan, 4 disconnected scan) and fills gen/consumed.
  auto best_generator = [&](VarId v, Op* gen, int* consumed) {
    int best = connected(v) ? 3 : 4;
    for (size_t i = 0; i < plans.size(); ++i) {
      const Atom& atom = *plans[i].atom;
      if (atom.kind() == AtomKind::kEquality) {
        // One side the plain variable v, the other side fully bound.
        for (const auto& [mine, other] :
             {std::pair(atom.lhs(), atom.rhs()), std::pair(atom.rhs(), atom.lhs())}) {
          if (mine.var != v || mine.is_attribute()) continue;
          if (other.var == v || !placed[other.var]) continue;
          int rank = other.is_attribute() ? 1 : 0;
          if (rank < best) {
            best = rank;
            gen->code = other.is_attribute() ? OpCode::kBindFromSlotRef
                                             : OpCode::kBindFromVar;
            gen->var_a = v;
            gen->var_b = other.var;
            // slot_a assigned later, once slots exist.
            gen->slot_a = 0;
            gen->classes.clear();
            *consumed = static_cast<int>(i);
          }
        }
      } else if (atom.kind() == AtomKind::kMembership && atom.var() == v &&
                 atom.set_term().var != v && placed[atom.set_term().var]) {
        if (2 < best) {
          best = 2;
          gen->code = OpCode::kScanSetMembers;
          gen->var_a = v;
          gen->var_b = atom.set_term().var;
          gen->classes.clear();
          *consumed = static_cast<int>(i);
        }
      }
    }
    if (best >= 3) {
      *consumed = -1;
      gen->var_a = v;
      gen->var_b = kInvalidVarId;
      if (program.range_classes[v].empty()) {
        gen->code = OpCode::kScanAll;
        gen->classes.clear();
      } else {
        gen->code = OpCode::kScanExtent;
        gen->classes = program.range_classes[v];
      }
    }
    return best;
  };

  // Seed preference: most incident atoms, then lowest id.
  std::vector<size_t> incidence(n, 0);
  for (const AtomPlan& plan : plans) {
    VarId vars[2];
    int count = 0;
    AtomVars(*plan.atom, vars, &count);
    for (int i = 0; i < count; ++i) ++incidence[vars[i]];
  }

  while (order.size() < n) {
    VarId pick = kInvalidVarId;
    int pick_rank = 0;
    Op pick_gen;
    int pick_consumed = -1;
    for (VarId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      Op gen;
      int consumed = -1;
      int rank = best_generator(v, &gen, &consumed);
      bool better;
      if (pick == kInvalidVarId) {
        better = true;
      } else if (rank != pick_rank) {
        better = rank < pick_rank;
      } else if (order.empty()) {
        better = incidence[v] > incidence[pick];
      } else {
        better = false;  // same rank, higher id: keep the earlier pick
      }
      if (better) {
        pick = v;
        pick_rank = rank;
        pick_gen = std::move(gen);
        pick_consumed = consumed;
      }
    }
    placed[pick] = 1;
    generators[pick] = std::move(pick_gen);
    consumed_by_gen[pick] = pick_consumed;
    if (pick_consumed >= 0) plans[pick_consumed].consumed = true;
    order.push_back(pick);
  }

  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = i;

  // ---- Slots: one register per distinct attribute term ------------------
  program.levels.resize(n);
  std::map<std::pair<VarId, std::string>, uint16_t> slot_ids;
  auto slot_for = [&](VarId owner, const std::string& attr) -> uint16_t {
    auto it = slot_ids.find({owner, attr});
    if (it != slot_ids.end()) return it->second;
    uint16_t id = static_cast<uint16_t>(program.slots.size());
    program.slots.push_back({owner, attr});
    slot_ids.emplace(std::make_pair(owner, attr), id);
    program.levels[position[owner]].loads.push_back(id);
    return id;
  };

  // Generators referencing slots resolve them now (the source variable is
  // placed strictly earlier, so its slot loads before this level opens).
  for (size_t d = 0; d < n; ++d) {
    VarId v = order[d];
    Op& gen = generators[v];
    if (gen.code == OpCode::kBindFromSlotRef ||
        gen.code == OpCode::kScanSetMembers) {
      const Atom& atom = *plans[consumed_by_gen[v]].atom;
      const Term& src = gen.code == OpCode::kScanSetMembers
                            ? atom.set_term()
                            : (atom.lhs().var == v && !atom.lhs().is_attribute()
                                   ? atom.rhs()
                                   : atom.lhs());
      gen.slot_a = slot_for(src.var, src.attr);
    }
    program.levels[d].gen = gen;
    // A variable bound by something other than its extent scan still
    // carries its range atom as a class test (and its extra range atoms,
    // if not well-formed-unique, are scheduled below like any atom).
    if (gen.code != OpCode::kScanExtent && !program.range_classes[v].empty()) {
      Op test;
      test.code = OpCode::kTestClass;
      test.var_a = v;
      test.classes = program.range_classes[v];
      program.levels[d].tests.push_back(std::move(test));
    }
  }

  // ---- Schedule every unconsumed atom as a test -------------------------
  auto operand_is_slot = [](const Term& t) { return t.is_attribute(); };
  bool first_range_seen[4096] = {};
  for (const AtomPlan& plan : plans) {
    const Atom& atom = *plan.atom;
    if (plan.consumed) continue;
    VarId vars[2];
    int count = 0;
    AtomVars(atom, vars, &count);
    size_t level = position[vars[0]];
    if (count == 2) level = std::max(level, position[vars[1]]);

    Op test;
    switch (atom.kind()) {
      case AtomKind::kRange: {
        // The first range atom of an extent-scanned variable is realized
        // by its generator; every other range atom is a plain class test.
        VarId v = atom.var();
        if (!first_range_seen[v]) {
          first_range_seen[v] = true;
          if (generators[v].code == OpCode::kScanExtent) continue;
          continue;  // non-scan generators added the class test above
        }
        test.code = OpCode::kTestClass;
        test.var_a = v;
        test.classes = atom.classes();
        break;
      }
      case AtomKind::kNonRange:
        test.code = OpCode::kTestNotClass;
        test.var_a = atom.var();
        test.classes = atom.classes();
        break;
      case AtomKind::kConstant:
        test.code = OpCode::kTestConst;
        test.var_a = atom.var();
        test.const_index = static_cast<uint32_t>(program.constants.size());
        program.constants.push_back(atom.constant());
        break;
      case AtomKind::kEquality:
      case AtomKind::kInequality: {
        const bool eq = atom.kind() == AtomKind::kEquality;
        const Term& lhs = atom.lhs();
        const Term& rhs = atom.rhs();
        if (!operand_is_slot(lhs) && !operand_is_slot(rhs)) {
          test.code = eq ? OpCode::kTestEqVarVar : OpCode::kTestNeVarVar;
          test.var_a = lhs.var;
          test.var_b = rhs.var;
        } else if (operand_is_slot(lhs) && operand_is_slot(rhs)) {
          test.code = eq ? OpCode::kTestEqSlotSlot : OpCode::kTestNeSlotSlot;
          test.slot_a = slot_for(lhs.var, lhs.attr);
          test.slot_b = slot_for(rhs.var, rhs.attr);
        } else {
          const Term& var_side = operand_is_slot(lhs) ? rhs : lhs;
          const Term& slot_side = operand_is_slot(lhs) ? lhs : rhs;
          test.code = eq ? OpCode::kTestEqVarSlot : OpCode::kTestNeVarSlot;
          test.var_a = var_side.var;
          test.slot_b = slot_for(slot_side.var, slot_side.attr);
        }
        break;
      }
      case AtomKind::kMembership:
      case AtomKind::kNonMembership:
        test.code = atom.kind() == AtomKind::kMembership
                        ? OpCode::kTestMember
                        : OpCode::kTestNotMember;
        test.var_a = atom.var();
        test.slot_b = slot_for(atom.set_term().var, atom.set_term().attr);
        break;
    }
    program.levels[level].tests.push_back(std::move(test));
  }

  if (program.slots.size() > 65535) {
    return Status::FailedPrecondition("compile: too many attribute terms");
  }
  (void)schema;

  // ---- Selectivity ordering within each level ---------------------------
  for (Level& level : program.levels) {
    std::stable_sort(level.tests.begin(), level.tests.end(),
                     [&](const Op& a, const Op& b) {
                       return TestPriority(a, options.use_selectivity_stats) <
                              TestPriority(b, options.use_selectivity_stats);
                     });
  }
  return program;
}

}  // namespace oocq::compile
