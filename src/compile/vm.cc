#include "compile/vm.h"

#include <algorithm>
#include <string>

#include "support/metrics.h"
#include "support/trace.h"

namespace oocq::compile {

namespace {

constexpr size_t kNumOpCodes = static_cast<size_t>(OpCode::kTestConst) + 1;

/// Per-opcode pass/total tallies accumulated locally during a run and
/// flushed to `compile/sel/<op>/{pass,total}` once at exit — the feedback
/// the compiler's selectivity ordering reads. Local accumulation keeps
/// the inner loop free of registry lookups.
struct SelectivityTally {
  uint64_t total[kNumOpCodes] = {};
  uint64_t pass[kNumOpCodes] = {};

  void Flush() const {
    if (ActiveMetrics() == nullptr) return;
    for (size_t i = 0; i < kNumOpCodes; ++i) {
      if (total[i] == 0) continue;
      const std::string base =
          std::string("compile/sel/") + OpCodeName(static_cast<OpCode>(i));
      MetricAdd(base + "/total", total[i]);
      MetricAdd(base + "/pass", pass[i]);
    }
  }
};

/// Candidate source of one open loop level.
struct LevelRt {
  const Oid* data = nullptr;
  size_t size = 0;
  size_t cursor = 0;
  Oid single = kInvalidOid;  // storage for single-candidate generators
};

}  // namespace

StatusOr<std::vector<Oid>> ExecuteCompiled(const CompiledQuery& program,
                                           const State& state,
                                           const StateIndex* index,
                                           const ExecOptions& options,
                                           ExecStats* stats) {
  OOCQ_TRACE_SPAN(span, "ExecuteCompiled");
  OOCQ_METRIC_ADD("compile/execs", 1);
  const Schema& schema = state.schema();
  const size_t n = program.num_vars;
  span.Arg("vars", static_cast<uint64_t>(n));

  if (options.cancel != nullptr) {
    Status live = options.cancel->Check();
    if (!live.ok()) return live;
  }

  // ---- Per-execution state specialization -------------------------------
  // Objects grouped by terminal class (skipped when an index supplies
  // extents). One O(N) pass replaces the tree walker's per-variable
  // extent scans.
  std::vector<std::vector<Oid>> by_class;
  if (index == nullptr) {
    by_class.resize(schema.num_classes());
    for (Oid oid = 0; oid < state.num_objects(); ++oid) {
      by_class[state.class_of(oid)].push_back(oid);
    }
  }
  auto terminal_extent = [&](ClassId t) -> const std::vector<Oid>& {
    return index != nullptr ? index->Extent(t) : by_class[t];
  };

  // The terminal classes of a class disjunction, deduplicated (two classes
  // of one disjunction may share descendants; terminal classes partition
  // the objects, so after dedup the extents are disjoint).
  std::vector<char> seen(schema.num_classes(), 0);
  std::vector<ClassId> terminals_scratch;
  auto terminals_of = [&](const std::vector<ClassId>& classes) {
    terminals_scratch.clear();
    for (ClassId c : classes) {
      for (ClassId t : schema.TerminalDescendants(c)) {
        if (!seen[t]) {
          seen[t] = 1;
          terminals_scratch.push_back(t);
        }
      }
    }
    for (ClassId t : terminals_scratch) seen[t] = 0;
    return terminals_scratch;
  };

  // Tree-walker parity: every variable's candidate pool is sized before
  // any binding is charged, and an empty pool anywhere answers {} — even
  // under max_bindings == 0.
  for (VarId v = 0; v < n; ++v) {
    uint64_t pool = 0;
    if (program.range_classes[v].empty()) {
      pool = state.num_objects();
    } else {
      for (ClassId t : terminals_of(program.range_classes[v])) {
        pool += terminal_extent(t).size();
      }
    }
    if (stats != nullptr) stats->candidate_pool += pool;
    if (pool == 0) return std::vector<Oid>{};
  }

  // Static candidate lists for the scan generators.
  std::vector<Oid> all_oids;
  std::vector<LevelRt> levels(n);
  std::vector<std::vector<Oid>> owned(n);
  for (size_t d = 0; d < n; ++d) {
    const Op& gen = program.levels[d].gen;
    if (gen.code == OpCode::kScanAll) {
      if (all_oids.empty()) {
        all_oids.resize(state.num_objects());
        for (Oid oid = 0; oid < state.num_objects(); ++oid) all_oids[oid] = oid;
      }
      levels[d].data = all_oids.data();
      levels[d].size = all_oids.size();
    } else if (gen.code == OpCode::kScanExtent) {
      const std::vector<ClassId>& terminals = terminals_of(gen.classes);
      if (terminals.size() == 1) {
        const std::vector<Oid>& extent = terminal_extent(terminals[0]);
        levels[d].data = extent.data();
        levels[d].size = extent.size();
      } else {
        for (ClassId t : terminals) {
          const std::vector<Oid>& extent = terminal_extent(t);
          owned[d].insert(owned[d].end(), extent.begin(), extent.end());
        }
        levels[d].data = owned[d].data();
        levels[d].size = owned[d].size();
      }
    }
  }

  // Interned object of each constant, resolved once: payload equality in
  // the tree walker is oid equality here, because payloads exist only on
  // interned primitives. kInvalidOid = not interned = matches nothing.
  std::vector<Oid> const_oids(program.constants.size(), kInvalidOid);
  for (size_t i = 0; i < program.constants.size(); ++i) {
    const ConstantValue& value = program.constants[i];
    if (const int64_t* as_int = std::get_if<int64_t>(&value)) {
      const_oids[i] = state.FindInternedInt(*as_int);
    } else if (const double* as_real = std::get_if<double>(&value)) {
      const_oids[i] = state.FindInternedReal(*as_real);
    } else {
      const_oids[i] = state.FindInternedString(std::get<std::string>(value));
    }
  }

  // ---- Registers --------------------------------------------------------
  std::vector<Oid> reg(n, kInvalidOid);
  std::vector<const Value*> slot(program.slots.size(), nullptr);
  SelectivityTally sel;

  auto class_test = [&](Oid oid, const std::vector<ClassId>& classes) {
    const ClassId cls = state.class_of(oid);
    for (ClassId c : classes) {
      if (schema.IsSubclassOf(cls, c)) return true;
    }
    return false;
  };

  // One test op under 3-valued logic: unknown (Λ slot, wrong slot kind)
  // fails, exactly as only-kTrue-passes does in the tree walker.
  auto run_test = [&](const Op& test) {
    switch (test.code) {
      case OpCode::kTestClass:
        return class_test(reg[test.var_a], test.classes);
      case OpCode::kTestNotClass:
        return !class_test(reg[test.var_a], test.classes);
      case OpCode::kTestEqVarVar:
        return reg[test.var_a] == reg[test.var_b];
      case OpCode::kTestNeVarVar:
        return reg[test.var_a] != reg[test.var_b];
      case OpCode::kTestEqVarSlot: {
        const Value* value = slot[test.slot_b];
        return value != nullptr && value->kind() == Value::Kind::kRef &&
               value->ref() == reg[test.var_a];
      }
      case OpCode::kTestNeVarSlot: {
        const Value* value = slot[test.slot_b];
        return value != nullptr && value->kind() == Value::Kind::kRef &&
               value->ref() != reg[test.var_a];
      }
      case OpCode::kTestEqSlotSlot: {
        const Value* a = slot[test.slot_a];
        const Value* b = slot[test.slot_b];
        return a != nullptr && b != nullptr &&
               a->kind() == Value::Kind::kRef &&
               b->kind() == Value::Kind::kRef && a->ref() == b->ref();
      }
      case OpCode::kTestNeSlotSlot: {
        const Value* a = slot[test.slot_a];
        const Value* b = slot[test.slot_b];
        return a != nullptr && b != nullptr &&
               a->kind() == Value::Kind::kRef &&
               b->kind() == Value::Kind::kRef && a->ref() != b->ref();
      }
      case OpCode::kTestMember: {
        const Value* value = slot[test.slot_b];
        return value != nullptr && value->Contains(reg[test.var_a]);
      }
      case OpCode::kTestNotMember: {
        const Value* value = slot[test.slot_b];
        return value != nullptr && value->kind() == Value::Kind::kSet &&
               !value->Contains(reg[test.var_a]);
      }
      case OpCode::kTestConst:
        return reg[test.var_a] == const_oids[test.const_index] &&
               const_oids[test.const_index] != kInvalidOid;
      default:
        return false;
    }
  };

  auto open_level = [&](size_t d) {
    LevelRt& rt = levels[d];
    rt.cursor = 0;
    const Op& gen = program.levels[d].gen;
    switch (gen.code) {
      case OpCode::kScanExtent:
      case OpCode::kScanAll:
        break;  // static candidates installed above
      case OpCode::kBindFromVar:
        rt.single = reg[gen.var_b];
        rt.data = &rt.single;
        rt.size = 1;
        break;
      case OpCode::kBindFromSlotRef: {
        const Value* value = slot[gen.slot_a];
        if (value != nullptr && value->kind() == Value::Kind::kRef) {
          rt.single = value->ref();
          rt.data = &rt.single;
          rt.size = 1;
        } else {
          rt.size = 0;
        }
        break;
      }
      case OpCode::kScanSetMembers: {
        const Value* value = slot[gen.slot_a];
        if (value != nullptr && value->kind() == Value::Kind::kSet) {
          rt.data = value->set().data();
          rt.size = value->set().size();
        } else {
          rt.size = 0;
        }
        break;
      }
      default:
        rt.size = 0;
        break;
    }
  };

  // ---- The one-pass loop ------------------------------------------------
  std::vector<Oid> answers;
  uint64_t bindings = 0;
  size_t depth = 0;
  open_level(0);
  Status failure = Status::Ok();
  while (true) {
    LevelRt& rt = levels[depth];
    if (rt.cursor >= rt.size) {
      if (depth == 0) break;
      --depth;
      ++levels[depth].cursor;
      continue;
    }
    if (++bindings > options.max_bindings) {
      failure = Status::ResourceExhausted(
          "evaluation exceeded EvalOptions::max_assignments");
      break;
    }
    if (options.cancel != nullptr && (bindings & 4095) == 0) {
      failure = options.cancel->Check();
      if (!failure.ok()) break;
    }
    const Level& level = program.levels[depth];
    const Oid candidate = rt.data[rt.cursor];
    reg[level.gen.var_a] = candidate;
    for (uint16_t s : level.loads) {
      slot[s] = state.GetAttribute(candidate, program.slots[s].attr);
    }
    bool holds = true;
    for (const Op& test : level.tests) {
      ++sel.total[static_cast<size_t>(test.code)];
      if (run_test(test)) {
        ++sel.pass[static_cast<size_t>(test.code)];
      } else {
        holds = false;
        break;
      }
    }
    if (!holds) {
      ++rt.cursor;
      continue;
    }
    if (depth + 1 == n) {
      answers.push_back(reg[program.free_var]);
      ++rt.cursor;
      continue;
    }
    ++depth;
    open_level(depth);
  }

  sel.Flush();
  if (stats != nullptr) stats->bindings += bindings;
  span.Arg("bindings", bindings)
      .Arg("answers", static_cast<uint64_t>(answers.size()));
  OOCQ_METRIC_ADD("eval/assignments", bindings);
  if (!failure.ok()) return failure;

  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace oocq::compile
