#ifndef OOCQ_COMPILE_VM_H_
#define OOCQ_COMPILE_VM_H_

#include <cstdint>
#include <vector>

#include "compile/program.h"
#include "state/index.h"
#include "state/state.h"
#include "support/cancellation.h"
#include "support/status.h"

namespace oocq::compile {

/// Guards for one execution. The defaults match EvalOptions so the
/// compiled path trips the same limits as the tree walker.
struct ExecOptions {
  /// Bindings tried before ResourceExhausted — the same unit the tree
  /// walker charges (one per candidate assigned at any depth), and the
  /// same error message, so callers see identical statuses.
  uint64_t max_bindings = 100'000'000;
  /// Polled at entry and every 4096 bindings; a tripped token surfaces
  /// the retryable kDeadlineExceeded/kUnavailable of CancellationToken.
  const CancellationToken* cancel = nullptr;
};

/// Work counters, unit-compatible with EvalStats.
struct ExecStats {
  uint64_t bindings = 0;
  uint64_t candidate_pool = 0;
};

/// Runs a compiled program against a state, producing exactly the sorted
/// deduplicated answer set — and the same status codes — as the tree
/// walker Evaluate() on the source query. `index` is optional; when
/// present, extents come from it instead of a per-call scan of the state.
///
/// The program must have been compiled against the same schema the state
/// borrows (programs are state-independent but schema-specific).
StatusOr<std::vector<Oid>> ExecuteCompiled(const CompiledQuery& program,
                                           const State& state,
                                           const StateIndex* index = nullptr,
                                           const ExecOptions& options = {},
                                           ExecStats* stats = nullptr);

}  // namespace oocq::compile

#endif  // OOCQ_COMPILE_VM_H_
