#ifndef OOCQ_COMPILE_COMPILER_H_
#define OOCQ_COMPILE_COMPILER_H_

#include "compile/program.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq::compile {

struct CompileOptions {
  /// Order tests within a level by observed pass rates from the installed
  /// metrics registry (the `compile/sel/...` counters the VM records).
  /// Without a registry — or before any execution recorded samples — the
  /// order falls back to a deterministic static cost priority, so
  /// compilation is reproducible when metrics are off.
  bool use_selectivity_stats = true;
};

/// Compiles a well-formed conjunctive query into a CompiledQuery whose
/// execution (vm.h) produces exactly the answers and status codes of the
/// tree-walking Evaluate(). Returns kFailedPrecondition for query shapes the
/// compiler does not cover — callers fall back to the tree walker; the
/// fallback is part of the contract, never an error surfaced to users.
StatusOr<CompiledQuery> CompileQuery(const Schema& schema,
                                     const ConjunctiveQuery& query,
                                     const CompileOptions& options = {});

}  // namespace oocq::compile

#endif  // OOCQ_COMPILE_COMPILER_H_
