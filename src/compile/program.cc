#include "compile/program.h"

namespace oocq::compile {

const char* OpCodeName(OpCode code) {
  switch (code) {
    case OpCode::kScanExtent: return "scan_extent";
    case OpCode::kScanAll: return "scan_all";
    case OpCode::kScanSetMembers: return "scan_set_members";
    case OpCode::kBindFromVar: return "bind_from_var";
    case OpCode::kBindFromSlotRef: return "bind_from_slot_ref";
    case OpCode::kLoadSlot: return "load_slot";
    case OpCode::kTestClass: return "test_class";
    case OpCode::kTestNotClass: return "test_not_class";
    case OpCode::kTestEqVarVar: return "test_eq_var_var";
    case OpCode::kTestEqVarSlot: return "test_eq_var_slot";
    case OpCode::kTestEqSlotSlot: return "test_eq_slot_slot";
    case OpCode::kTestNeVarVar: return "test_ne_var_var";
    case OpCode::kTestNeVarSlot: return "test_ne_var_slot";
    case OpCode::kTestNeSlotSlot: return "test_ne_slot_slot";
    case OpCode::kTestMember: return "test_member";
    case OpCode::kTestNotMember: return "test_not_member";
    case OpCode::kTestConst: return "test_const";
  }
  return "unknown";
}

namespace {

void AppendOp(const CompiledQuery& program, const Op& op, std::string* out) {
  *out += OpCodeName(op.code);
  if (op.var_a != kInvalidVarId) *out += " v" + std::to_string(op.var_a);
  if (op.var_b != kInvalidVarId) *out += " v" + std::to_string(op.var_b);
  switch (op.code) {
    case OpCode::kScanSetMembers:
    case OpCode::kBindFromSlotRef:
    case OpCode::kTestEqSlotSlot:
    case OpCode::kTestNeSlotSlot:
      *out += " s" + std::to_string(op.slot_a);
      break;
    default:
      break;
  }
  switch (op.code) {
    case OpCode::kTestEqVarSlot:
    case OpCode::kTestNeVarSlot:
    case OpCode::kTestEqSlotSlot:
    case OpCode::kTestNeSlotSlot:
    case OpCode::kTestMember:
    case OpCode::kTestNotMember:
      *out += " s" + std::to_string(op.slot_b);
      break;
    default:
      break;
  }
  if (op.code == OpCode::kTestConst) {
    *out += " " + ConstantToString(program.constants[op.const_index]);
  }
  for (ClassId c : op.classes) *out += " c" + std::to_string(c);
  *out += "\n";
}

}  // namespace

std::string CompiledQuery::DebugString() const {
  std::string out;
  out += "program vars=" + std::to_string(num_vars) +
         " free=v" + std::to_string(free_var) +
         " slots=" + std::to_string(slots.size()) + "\n";
  for (size_t i = 0; i < slots.size(); ++i) {
    out += "  slot s" + std::to_string(i) + " = v" +
           std::to_string(slots[i].owner) + "." + slots[i].attr + "\n";
  }
  for (size_t d = 0; d < levels.size(); ++d) {
    const Level& level = levels[d];
    out += "L" + std::to_string(d) + ": ";
    AppendOp(*this, level.gen, &out);
    for (uint16_t s : level.loads) {
      out += "    load_slot s" + std::to_string(s) + "\n";
    }
    for (const Op& test : level.tests) {
      out += "    ";
      AppendOp(*this, test, &out);
    }
  }
  out += "    emit v" + std::to_string(free_var) + "\n";
  return out;
}

}  // namespace oocq::compile
