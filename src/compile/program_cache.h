#ifndef OOCQ_COMPILE_PROGRAM_CACHE_H_
#define OOCQ_COMPILE_PROGRAM_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compile/compiler.h"
#include "compile/program.h"
#include "query/query.h"
#include "schema/schema.h"

namespace oocq::compile {

/// Session-scoped memo of compiled programs, keyed by the printed query.
/// Memoizes structural failures too (a query the compiler rejects today
/// rejects it tomorrow), so the unsupported path costs one lookup, not a
/// recompile per request. Sharded like the ContainmentCache; programs are
/// immutable once inserted and their addresses stay stable until Clear().
///
/// Lifecycle: the service layer owns one per session next to the
/// ContainmentCache and clears/replaces both together on every epoch
/// bump (schema/state mutation), so a cached program can never outlive
/// the schema it was compiled against. Traffic lands on the
/// `compile/cache_hits` / `compile/cache_misses` counters (STATS exposes
/// them as oocq_compile_*).
class ProgramCache {
 public:
  explicit ProgramCache(uint32_t num_shards = 8);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The compiled program for `query`, compiling and memoizing on first
  /// sight. Returns nullptr when the query is structurally uncompilable
  /// (also memoized) — the caller falls back to the tree walker.
  const CompiledQuery* GetOrCompile(const Schema& schema,
                                    const ConjunctiveQuery& query);

  /// Drops every entry (epoch invalidation).
  void Clear();

  /// Entries currently resident (compiled + memoized failures).
  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// nullptr value = memoized structural failure.
    std::unordered_map<std::string, std::unique_ptr<CompiledQuery>> programs;
  };

  Shard& ShardFor(const std::string& key);

  std::vector<Shard> shards_;
};

}  // namespace oocq::compile

#endif  // OOCQ_COMPILE_PROGRAM_CACHE_H_
