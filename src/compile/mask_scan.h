#ifndef OOCQ_COMPILE_MASK_SCAN_H_
#define OOCQ_COMPILE_MASK_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "query/query.h"
#include "schema/schema.h"
#include "support/cancellation.h"
#include "support/resource_budget.h"
#include "support/status.h"

namespace oocq::compile {

/// Limits and hooks for one compiled subset scan, mirroring the knobs the
/// interpreted scan draws from ContainmentOptions.
struct MaskScanOptions {
  /// Backtracking-step budget for the one-shot mapping enumeration.
  /// Overruns bail out to the interpreted scan (which then applies its own
  /// per-mask budget), so the legacy error behavior is preserved.
  uint64_t max_steps = 10'000'000;
  /// Cap on distinct (required, forbidden) signatures collected; more
  /// bails out to the interpreted scan.
  uint64_t max_signatures = 4096;
  const CancellationToken* cancel = nullptr;
  /// Charged one unit per mask covered-or-refuted, in 64-mask blocks —
  /// the same total the interpreted scan charges mask by mask.
  ResourceBudget* budget = nullptr;
};

/// Outcome of RunCompiledMaskScan.
struct MaskScanResult {
  /// False: the scan could not take the compiled path (unsupported shape,
  /// enumeration overran a cap, or the compile/exec failpoint fired) —
  /// the caller must fall back to the interpreted per-mask scan. Nothing
  /// below is meaningful then; no budget was charged.
  bool decided = false;
  /// When decided and not ok: the retryable abort (cancellation, budget)
  /// to propagate, exactly as the interpreted scan would surface it.
  Status error = Status::Ok();
  /// When decided and ok: the Thm 3.1 subset condition — true iff every
  /// mask W ⊆ T admits a non-contradictory mapping of q2 into base+W.
  bool contained = false;

  // Work counters, unit-compatible with ContainmentStats:
  /// masks actually decided (maps to membership_subsets),
  uint64_t masks_tested = 0;
  /// masks enumerated but not decided — after an abort or a refutation
  /// (maps to membership_subsets_skipped),
  uint64_t masks_skipped = 0;
  /// backtracking steps of the mapping enumeration (maps to
  /// mapping_steps; the whole scan is one search, mapping_searches += 1).
  uint64_t mapping_steps = 0;
};

/// The compiled form of the Thm 3.1 inner loop: instead of one mapping
/// search per subset W of the membership-candidate pool T (2^|T| searches),
/// enumerate every complete non-contradictory mapping of q2 into `base`
/// ONCE, reducing each to a signature (required, forbidden) of pool-atom
/// bitmask constraints; a mask W then admits a mapping iff some signature
/// has required ⊆ W and W ∩ forbidden = ∅, which a 64-masks-per-word
/// coverage scan checks without further mapping work.
///
/// Sound because the pool atoms are W-independent: they reuse existing
/// terms of `base`, so every base+W shares base's equality graph, range
/// classes and set-term/constant indices — only the membership index
/// varies, and exactly by the included pool atoms (docs/compilation.md).
/// The function verifies its own preconditions (satisfiability of
/// base+T, distinct pool signatures) and reports decided=false rather
/// than guess when any fails.
///
/// `base` must be well-formed, terminal, normalized and satisfiable (it is
/// the augmented Q1 of the containment dispatch); `pool` must be the
/// MembershipCandidatePool of `base`; `q2` the normalized RHS.
MaskScanResult RunCompiledMaskScan(const Schema& schema,
                                   const ConjunctiveQuery& base,
                                   const std::vector<Atom>& pool,
                                   const ConjunctiveQuery& q2,
                                   const MappingConstraints& constraints,
                                   const MaskScanOptions& options = {});

}  // namespace oocq::compile

#endif  // OOCQ_COMPILE_MASK_SCAN_H_
