#ifndef OOCQ_COMPILE_PROGRAM_H_
#define OOCQ_COMPILE_PROGRAM_H_

/// The flat register bytecode a terminal conjunctive query compiles into
/// (docs/compilation.md). A program is a list of *levels*, one per query
/// variable in binding order. Each level opens a loop with a *generator*
/// opcode, hoists the attribute dereferences owned by the bound variable
/// into *slot registers* (kLoadSlot), and then runs a list of *test*
/// opcodes — the atoms whose variables are all bound at this depth,
/// ordered by selectivity. The innermost level emits the free variable's
/// register into the answer set.
///
/// Registers:
///   - one Oid register per query variable (the current binding);
///   - one `const Value*` slot register per distinct attribute term
///     `v.attr` the query dereferences — loaded once per binding of `v`
///     instead of once per inner-loop iteration (the loop-invariant code
///     motion that gives the VM most of its speedup over the tree walker).
///
/// The 3-valued semantics of state/eval_internal.h map onto the tests
/// directly: an *unknown* operand (Λ slot, inapplicable attribute,
/// object-valued slot where a set is needed) makes the test fail, exactly
/// as only-kTrue-passes does in the tree walker.

#include <cstdint>
#include <string>
#include <vector>

#include "query/atom.h"
#include "query/term.h"
#include "schema/type.h"

namespace oocq::compile {

enum class OpCode : uint8_t {
  // ---- Generators (one per level; gen.var_a is the variable bound) ----
  /// Enumerate the extent of the level's class disjunction (`classes`).
  kScanExtent,
  /// Enumerate every object of the state (variable without a range atom).
  kScanAll,
  /// Enumerate the members of set slot `slot_a` (atom `x in y.A` with y
  /// bound earlier); a Λ or non-set slot yields zero candidates.
  kScanSetMembers,
  /// Bind to the single candidate in register `var_b` (atom `x = y`).
  kBindFromVar,
  /// Bind to the single object referenced by slot `slot_a` (atom
  /// `x = y.A`); a Λ or non-ref slot yields zero candidates.
  kBindFromSlotRef,

  // ---- Slot loads ----
  /// slot[slot_a] = GetAttribute(reg[var_a], attr of the slot).
  kLoadSlot,

  // ---- Tests (within a level, after the loads) ----
  /// reg[var_a] is a member of some class in `classes`.
  kTestClass,
  /// reg[var_a] is a member of no class in `classes`.
  kTestNotClass,
  /// reg[var_a] == reg[var_b].
  kTestEqVarVar,
  /// reg[var_a] == ref(slot[slot_b]); fails when the slot is not a ref.
  kTestEqVarSlot,
  /// ref(slot[slot_a]) == ref(slot[slot_b]); fails unless both are refs.
  kTestEqSlotSlot,
  /// Inequality counterparts; an unknown operand fails (3-valued logic).
  kTestNeVarVar,
  kTestNeVarSlot,
  kTestNeSlotSlot,
  /// reg[var_a] ∈ set(slot[slot_b]); fails when the slot is not a set.
  kTestMember,
  /// reg[var_a] ∉ set(slot[slot_b]); fails when the slot is not a set.
  kTestNotMember,
  /// reg[var_a] is the interned primitive of constants[const_index].
  kTestConst,
};

/// Mnemonic for the opcode ("scan_extent", "test_member", ...).
const char* OpCodeName(OpCode code);

/// A slot register definition: the hoisted attribute term `owner.attr`.
struct SlotDef {
  VarId owner = kInvalidVarId;
  std::string attr;
};

/// One instruction. Which fields are meaningful depends on the opcode
/// (see the enum); unused fields keep their defaults.
struct Op {
  OpCode code = OpCode::kScanAll;
  VarId var_a = kInvalidVarId;
  VarId var_b = kInvalidVarId;
  uint16_t slot_a = 0;
  uint16_t slot_b = 0;
  uint32_t const_index = 0;
  std::vector<ClassId> classes;
};

/// One loop level of the program.
struct Level {
  Op gen;
  /// Slot registers to load right after binding (owner == gen.var_a).
  std::vector<uint16_t> loads;
  /// Tests scheduled at this depth, selectivity-ordered.
  std::vector<Op> tests;
};

/// A compiled terminal conjunctive query. State-independent: the program
/// depends only on (schema, query), so it is cacheable per session and
/// reusable across states; the VM specializes extents and interned
/// constants per execution.
struct CompiledQuery {
  VarId free_var = kInvalidVarId;
  uint32_t num_vars = 0;
  std::vector<SlotDef> slots;
  std::vector<ConstantValue> constants;
  std::vector<Level> levels;
  /// Per-variable range-atom class disjunction (empty = no range atom,
  /// the variable ranges over the whole active domain). The VM uses this
  /// for the tree-walker-parity empty-pool early exit: if any variable's
  /// candidate pool is empty the answer is empty before any binding is
  /// tried or charged against the assignment budget.
  std::vector<std::vector<ClassId>> range_classes;

  /// Human-readable opcode listing (docs and golden tests).
  std::string DebugString() const;
};

}  // namespace oocq::compile

#endif  // OOCQ_COMPILE_PROGRAM_H_
