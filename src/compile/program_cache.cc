#include "compile/program_cache.h"

#include <functional>
#include <utility>

#include "query/printer.h"
#include "support/metrics.h"

namespace oocq::compile {

ProgramCache::ProgramCache(uint32_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

ProgramCache::Shard& ProgramCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const CompiledQuery* ProgramCache::GetOrCompile(const Schema& schema,
                                                const ConjunctiveQuery& query) {
  std::string key = QueryToString(schema, query);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.programs.find(key);
  if (it != shard.programs.end()) {
    OOCQ_METRIC_ADD("compile/cache_hits", 1);
    return it->second.get();
  }
  OOCQ_METRIC_ADD("compile/cache_misses", 1);
  StatusOr<CompiledQuery> compiled = CompileQuery(schema, query);
  std::unique_ptr<CompiledQuery> entry;
  if (compiled.ok()) {
    OOCQ_METRIC_ADD("compile/compiles", 1);
    entry = std::make_unique<CompiledQuery>(std::move(*compiled));
  } else {
    OOCQ_METRIC_ADD("compile/unsupported", 1);
  }
  return shard.programs.emplace(std::move(key), std::move(entry))
      .first->second.get();
}

void ProgramCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.programs.clear();
  }
}

size_t ProgramCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.programs.size();
  }
  return total;
}

}  // namespace oocq::compile
