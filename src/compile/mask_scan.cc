#include "compile/mask_scan.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <tuple>
#include <utility>

#include "core/derivability.h"
#include "core/satisfiability.h"
#include "support/failpoint.h"
#include "support/trace.h"

namespace oocq::compile {

namespace {

/// The source variables an atom constrains (range atoms are folded into
/// the candidate lists, as in core/mapping.cc).
void AtomVariables(const Atom& atom, VarId out[2], int* count) {
  *count = 0;
  switch (atom.kind()) {
    case AtomKind::kRange:
      break;
    case AtomKind::kNonRange:
    case AtomKind::kConstant:
      out[(*count)++] = atom.var();
      break;
    default:
      out[(*count)++] = atom.lhs().var;
      if (atom.rhs().var != atom.lhs().var) out[(*count)++] = atom.rhs().var;
      break;
  }
}

size_t LowestZeroBit(uint64_t word) {
  size_t i = 0;
  while ((word >> i) & 1) ++i;
  return i;
}

}  // namespace

MaskScanResult RunCompiledMaskScan(const Schema& schema,
                                   const ConjunctiveQuery& base,
                                   const std::vector<Atom>& pool,
                                   const ConjunctiveQuery& q2,
                                   const MappingConstraints& constraints,
                                   const MaskScanOptions& options) {
  OOCQ_TRACE_SPAN(span, "CompiledMaskScan");
  MaskScanResult result;
  const size_t t = pool.size();
  if (t == 0 || t > 63) return result;  // nothing to gain / mask overflow
  // Chaos hook: force the interpreted fallback mid-request. Never an
  // error to the caller — the fallback is the behavior under test.
  if (Status chaos = Failpoints::Check("compile/exec"); !chaos.ok()) {
    return result;
  }
  const uint64_t total = uint64_t{1} << t;

  if (options.cancel != nullptr) {
    Status live = options.cancel->Check();
    if (!live.ok()) {
      result.decided = true;
      result.error = std::move(live);
      result.masks_skipped = total;
      return result;
    }
  }

  // W-independence gate: base plus the WHOLE pool must be satisfiable.
  // Membership atoms add no equality edges, so every base+W shares base's
  // equality graph and the satisfiability conditions are per-atom over
  // that graph — base+T satisfiable implies every subset is, which is
  // what entitles the scan to skip the per-mask CheckSatisfiable.
  {
    ConjunctiveQuery extended = base;
    for (const Atom& atom : pool) extended.AddAtom(atom);
    if (!CheckSatisfiable(schema, extended).satisfiable) return result;
  }

  StatusOr<QueryAnalysis> analysis = QueryAnalysis::Create(schema, base);
  // Let the interpreted scan reproduce the error at mask 0 so the status
  // surfaces through the legacy path.
  if (!analysis.ok()) return result;
  const QueryAnalysis& target = *analysis;
  const EqualityGraph& tgraph = target.graph();

  // Signature of each pool atom: (element rep, set-var rep, attr) — the
  // exact entry it adds to base+W's membership index when included. The
  // pool is one candidate per such signature by construction; a collision
  // means the assumption broke, so fall back rather than guess.
  std::map<std::tuple<TermId, TermId, std::string>, size_t> pool_sig;
  for (size_t i = 0; i < t; ++i) {
    const Atom& atom = pool[i];
    auto key = std::make_tuple(tgraph.Find(tgraph.VarNode(atom.var())),
                               tgraph.Find(tgraph.VarNode(atom.set_term().var)),
                               atom.set_term().attr);
    if (!pool_sig.emplace(std::move(key), i).second) return result;
  }

  // ---- Enumerate every complete mapping of q2 into base -----------------
  // Identical candidate rule and backtracking structure as
  // FindNonContradictoryMapping; the difference is that (non-)membership
  // atoms whose image is not decided by base alone do not pass or fail —
  // they constrain which masks this mapping serves, accumulated as
  // required/forbidden pool bits along the assignment path.
  const ConjunctiveQuery& tq = target.query();
  const VarId free_target = constraints.free_target == kInvalidVarId
                                ? tq.free_var()
                                : constraints.free_target;
  const size_t n = q2.num_vars();
  std::vector<std::vector<VarId>> candidates(n);
  const TermId free_rep = tgraph.Find(tgraph.VarNode(free_target));
  bool any_empty = false;
  for (VarId v = 0; v < n && !any_empty; ++v) {
    ClassId cls = q2.RangeClassOf(v);
    for (VarId w = 0; w < tq.num_vars(); ++w) {
      if (target.range_class(w) != cls) continue;
      if (w == constraints.forbidden_target) continue;
      if (v == q2.free_var() && tgraph.Find(tgraph.VarNode(w)) != free_rep) {
        continue;
      }
      candidates[v].push_back(w);
    }
    if (candidates[v].empty()) any_empty = true;
  }

  std::set<std::pair<uint64_t, uint64_t>> signatures;
  bool all_covered = false;  // a (required=0, forbidden=0) mapping exists
  uint64_t steps = 0;

  if (!any_empty) {
    std::vector<VarId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&candidates](VarId a, VarId b) {
                       return candidates[a].size() < candidates[b].size();
                     });
    std::vector<size_t> position(n);
    for (size_t i = 0; i < n; ++i) position[order[i]] = i;

    std::vector<std::vector<const Atom*>> checks(n);
    for (const Atom& atom : q2.atoms()) {
      VarId vars[2];
      int count = 0;
      AtomVariables(atom, vars, &count);
      if (count == 0) continue;
      size_t last = position[vars[0]];
      if (count == 2) last = std::max(last, position[vars[1]]);
      checks[last].push_back(&atom);
    }

    std::vector<VarId> image(n, kInvalidVarId);
    // Checks one atom against the partial image; bits the atom demands
    // from the mask accumulate into req/forb. Returns false when the atom
    // fails for EVERY mask (the branch is dead).
    auto atom_constrains = [&](const Atom& atom, uint64_t* req,
                               uint64_t* forb) -> bool {
      switch (atom.kind()) {
        case AtomKind::kRange:
          return true;
        case AtomKind::kNonRange:
          for (ClassId excluded : atom.classes()) {
            if (schema.IsSubclassOf(target.range_class(image[atom.var()]),
                                    excluded)) {
              return false;
            }
          }
          return true;
        case AtomKind::kEquality:
          return target.DerivesEquality(
              atom.lhs().WithVar(image[atom.lhs().var]),
              atom.rhs().WithVar(image[atom.rhs().var]));
        case AtomKind::kInequality:
          return target.NotContradictsInequality(
              atom.lhs().WithVar(image[atom.lhs().var]),
              atom.rhs().WithVar(image[atom.rhs().var]));
        case AtomKind::kConstant:
          return target.DerivesConstant(image[atom.var()], atom.constant());
        case AtomKind::kMembership: {
          const VarId ix = image[atom.lhs().var];
          const VarId iy = image[atom.rhs().var];
          const std::string& attr = atom.rhs().attr;
          if (target.DerivesMembership(ix, iy, attr)) return true;
          auto it = pool_sig.find(std::make_tuple(
              tgraph.Find(tgraph.VarNode(ix)), tgraph.Find(tgraph.VarNode(iy)),
              attr));
          if (it == pool_sig.end()) return false;  // derivable in no base+W
          *req |= uint64_t{1} << it->second;
          return true;
        }
        case AtomKind::kNonMembership: {
          const VarId ix = image[atom.lhs().var];
          const VarId iy = image[atom.rhs().var];
          const std::string& attr = atom.rhs().attr;
          if (!target.HasSetTerm(iy, attr)) return false;
          if (target.DerivesMembership(ix, iy, attr)) return false;
          auto it = pool_sig.find(std::make_tuple(
              tgraph.Find(tgraph.VarNode(ix)), tgraph.Find(tgraph.VarNode(iy)),
              attr));
          if (it != pool_sig.end()) *forb |= uint64_t{1} << it->second;
          return true;
        }
      }
      return false;
    };

    std::vector<size_t> choice(n, 0);
    std::vector<uint64_t> cum_req(n, 0);
    std::vector<uint64_t> cum_forb(n, 0);
    size_t depth = 0;
    while (true) {
      if (++steps > options.max_steps) return MaskScanResult{};  // bail out
      if (options.cancel != nullptr && (steps & 4095) == 0) {
        Status live = options.cancel->Check();
        if (!live.ok()) {
          result.decided = true;
          result.error = std::move(live);
          result.masks_skipped = total;
          result.mapping_steps = steps;
          return result;
        }
      }
      VarId v = order[depth];
      if (choice[depth] >= candidates[v].size()) {
        image[v] = kInvalidVarId;
        choice[depth] = 0;
        if (depth == 0) break;  // enumeration complete
        --depth;
        image[order[depth]] = kInvalidVarId;
        ++choice[depth];
        continue;
      }
      image[v] = candidates[v][choice[depth]];
      uint64_t req = depth > 0 ? cum_req[depth - 1] : 0;
      uint64_t forb = depth > 0 ? cum_forb[depth - 1] : 0;
      bool live_branch = true;
      for (const Atom* atom : checks[depth]) {
        if (!atom_constrains(*atom, &req, &forb)) {
          live_branch = false;
          break;
        }
      }
      // required ∩ forbidden ≠ ∅ serves no mask at all.
      if (!live_branch || (req & forb) != 0) {
        image[v] = kInvalidVarId;
        ++choice[depth];
        continue;
      }
      cum_req[depth] = req;
      cum_forb[depth] = forb;
      if (depth + 1 == n) {
        if (req == 0 && forb == 0) {
          all_covered = true;  // this mapping serves every mask
          break;
        }
        if (signatures.insert({req, forb}).second &&
            signatures.size() > options.max_signatures) {
          return MaskScanResult{};  // bail out to the interpreted scan
        }
        image[v] = kInvalidVarId;
        ++choice[depth];
        continue;
      }
      ++depth;
    }
  }
  result.mapping_steps = steps;
  span.Arg("signatures", static_cast<uint64_t>(signatures.size()))
      .Arg("steps", steps);

  // ---- Word-parallel coverage scan --------------------------------------
  // Mask W is covered iff some signature has required ⊆ W ∧ W ∩ forbidden
  // = ∅. Split W into (block, low 6 bits): the high parts gate whether a
  // signature applies to a 64-mask block at all, and its low parts form a
  // precomputed 64-bit coverage pattern — one OR per (signature, block)
  // replaces 64 per-mask mapping searches.
  struct SigPattern {
    uint64_t req_hi = 0;
    uint64_t forb_hi = 0;
    uint64_t pattern = 0;
  };
  std::vector<SigPattern> patterns;
  patterns.reserve(signatures.size());
  for (const auto& [req, forb] : signatures) {
    SigPattern p;
    p.req_hi = req >> 6;
    p.forb_hi = forb >> 6;
    const uint64_t req_lo = req & 63;
    const uint64_t forb_lo = forb & 63;
    for (uint64_t j = 0; j < 64; ++j) {
      if ((j & req_lo) == req_lo && (j & forb_lo) == 0) {
        p.pattern |= uint64_t{1} << j;
      }
    }
    patterns.push_back(p);
  }

  result.decided = true;
  const uint64_t num_blocks = (total + 63) / 64;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    if (options.cancel != nullptr) {
      Status live = options.cancel->Check();
      if (!live.ok()) {
        result.error = std::move(live);
        result.masks_skipped = total - result.masks_tested;
        return result;
      }
    }
    const uint64_t begin = b * 64;
    const uint64_t block_size = std::min<uint64_t>(64, total - begin);
    uint64_t covered = 0;
    if (all_covered) {
      covered = ~uint64_t{0};
    } else {
      for (const SigPattern& p : patterns) {
        if ((b & p.req_hi) == p.req_hi && (b & p.forb_hi) == 0) {
          covered |= p.pattern;
          if (covered == ~uint64_t{0}) break;
        }
      }
    }
    uint64_t uncovered = ~covered;
    if (block_size < 64) uncovered &= (uint64_t{1} << block_size) - 1;
    // Decide first, charge exactly the masks decided: up to and including
    // the refuting mask, or the whole block. The budget trips iff the
    // mask-by-mask interpreted charge would have tripped at or before the
    // same mask, so both paths agree on error-versus-false.
    const uint64_t tested_here =
        uncovered != 0 ? LowestZeroBit(covered) + 1 : block_size;
    if (options.budget != nullptr) {
      Status charged = options.budget->ChargeSubsetWork(tested_here);
      if (!charged.ok()) {
        result.error = std::move(charged);
        result.masks_skipped = total - result.masks_tested;
        return result;
      }
    }
    result.masks_tested += tested_here;
    if (uncovered != 0) {
      result.contained = false;
      result.masks_skipped = total - result.masks_tested;
      span.Arg("contained", "false");
      return result;
    }
  }
  result.contained = true;
  span.Arg("contained", "true");
  return result;
}

}  // namespace oocq::compile
