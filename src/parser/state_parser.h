#ifndef OOCQ_PARSER_STATE_PARSER_H_
#define OOCQ_PARSER_STATE_PARSER_H_

#include <string>
#include <string_view>

#include "schema/schema.h"
#include "state/state.h"
#include "support/status.h"

namespace oocq {

/// Parses the state DSL into a validated legal state:
///
///   state {
///     corolla: Auto     { VehId = "COR-1"; Doors = 4; }
///     alice:   Discount { VehRented = { corolla }; Rate = 0.1; }
///     bob:     Regular  { VehRented = { }; }
///   }
///
/// Each declaration names an object, gives its *terminal* class, and sets
/// attribute slots. Values are object names (forward references allowed),
/// literals (`4` -> Int, `0.1` -> Real, `"x"` -> String), `null`, or a
/// brace-enclosed set of names/literals. Unset attributes stay Λ.
///
/// `schema` must outlive the returned State.
StatusOr<State> ParseState(const Schema* schema, std::string_view text);

/// Serializes a state back into the DSL (objects named `o<oid>`;
/// primitive references inlined as literals). Round-trips through
/// ParseState up to object renaming.
std::string StateToString(const State& state);

}  // namespace oocq

#endif  // OOCQ_PARSER_STATE_PARSER_H_
