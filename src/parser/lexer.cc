#include "parser/lexer.h"

#include <cctype>

namespace oocq {

std::string TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'!='";
    case TokenKind::kExists:
      return "'exists'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kNotin:
      return "'notin'";
    case TokenKind::kUnion:
      return "'union'";
    case TokenKind::kSchema:
      return "'schema'";
    case TokenKind::kClass:
      return "'class'";
    case TokenKind::kUnder:
      return "'under'";
    case TokenKind::kState:
      return "'state'";
    case TokenKind::kNull:
      return "'null'";
    case TokenKind::kIntLit:
      return "integer literal";
    case TokenKind::kRealLit:
      return "real literal";
    case TokenKind::kStringLit:
      return "string literal";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

TokenKind KeywordOrIdent(const std::string& text) {
  if (text == "exists") return TokenKind::kExists;
  if (text == "in") return TokenKind::kIn;
  if (text == "notin") return TokenKind::kNotin;
  if (text == "union") return TokenKind::kUnion;
  if (text == "schema") return TokenKind::kSchema;
  if (text == "class") return TokenKind::kClass;
  if (text == "under") return TokenKind::kUnder;
  if (text == "state") return TokenKind::kState;
  if (text == "null") return TokenKind::kNull;
  return TokenKind::kIdent;
}

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (text[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }

    Token token;
    token.line = line;
    token.column = column;
    // Numeric literals: [-]digits[.digits]. A leading '-' is part of the
    // literal only when followed by a digit.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') advance(1);
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        advance(1);
      }
      bool is_real = false;
      if (i + 1 < text.size() && text[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_real = true;
        advance(1);
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          advance(1);
        }
      }
      token.kind = is_real ? TokenKind::kRealLit : TokenKind::kIntLit;
      token.text = std::string(text.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    // String literals with \" \\ \n \t escapes; token.text is unescaped.
    if (c == '"') {
      advance(1);
      std::string contents;
      bool closed = false;
      while (i < text.size()) {
        char ch = text[i];
        if (ch == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (ch == '\\' && i + 1 < text.size()) {
          char escaped = text[i + 1];
          switch (escaped) {
            case 'n':
              contents += '\n';
              break;
            case 't':
              contents += '\t';
              break;
            default:
              contents += escaped;
              break;
          }
          advance(2);
          continue;
        }
        contents += ch;
        advance(1);
      }
      if (!closed) {
        return Status::InvalidArgument(
            "lexer error at " + std::to_string(token.line) + ":" +
            std::to_string(token.column) + ": unterminated string literal");
      }
      token.kind = TokenKind::kStringLit;
      token.text = std::move(contents);
      tokens.push_back(std::move(token));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < text.size() && IsIdentBody(text[i])) advance(1);
      token.text = std::string(text.substr(start, i - start));
      token.kind = KeywordOrIdent(token.text);
      tokens.push_back(std::move(token));
      continue;
    }

    switch (c) {
      case '{':
        token.kind = TokenKind::kLBrace;
        break;
      case '}':
        token.kind = TokenKind::kRBrace;
        break;
      case '(':
        token.kind = TokenKind::kLParen;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        break;
      case '|':
        token.kind = TokenKind::kPipe;
        break;
      case '&':
        token.kind = TokenKind::kAmp;
        break;
      case '.':
        token.kind = TokenKind::kDot;
        break;
      case ':':
        token.kind = TokenKind::kColon;
        break;
      case ';':
        token.kind = TokenKind::kSemicolon;
        break;
      case ',':
        token.kind = TokenKind::kComma;
        break;
      case '=':
        token.kind = TokenKind::kEq;
        break;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          token.kind = TokenKind::kNeq;
          token.text = "!=";
          advance(2);
          tokens.push_back(std::move(token));
          continue;
        }
        return Status::InvalidArgument(
            "lexer error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": '!' must be followed by '='");
      default:
        return Status::InvalidArgument(
            "lexer error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": unexpected character '" +
            std::string(1, c) + "'");
    }
    token.text = std::string(1, c);
    advance(1);
    tokens.push_back(std::move(token));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace oocq
