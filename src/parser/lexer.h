#ifndef OOCQ_PARSER_LEXER_H_
#define OOCQ_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace oocq {

/// Token kinds of the schema DSL and the calculus-like query language.
enum class TokenKind {
  kIdent,
  kIntLit,     // 42, -7
  kRealLit,    // 2.5, -0.25
  kStringLit,  // "hello" (text carries the unescaped contents)
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kPipe,       // |
  kAmp,        // &
  kDot,        // .
  kColon,      // :
  kSemicolon,  // ;
  kComma,      // ,
  kEq,         // =
  kNeq,        // !=
  // Keywords.
  kExists,
  kIn,
  kNotin,
  kUnion,
  kSchema,
  kClass,
  kUnder,
  kState,
  kNull,
  kEnd,
};

/// One lexed token with its source location (1-based line/column).
struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

/// "identifier", "'{'", "'in'", ... for diagnostics.
std::string TokenKindToString(TokenKind kind);

/// Splits `text` into tokens. Identifiers are [A-Za-z_][A-Za-z0-9_']*;
/// keywords are case-sensitive; '#' and '//' start line comments.
StatusOr<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace oocq

#endif  // OOCQ_PARSER_LEXER_H_
