#include "parser/parser.h"

#include <charconv>
#include <vector>

#include "parser/lexer.h"
#include "schema/schema_builder.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

/// Cursor over a token vector with Status-returning expectation helpers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t at = pos_ + n;
    return at < tokens_.size() ? tokens_[at] : tokens_.back();
  }
  Token Consume() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  bool ConsumeIf(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Consume();
    return true;
  }

  Status Expect(TokenKind kind, Token* out = nullptr) {
    if (Peek().kind != kind) {
      return Error("expected " + TokenKindToString(kind) + ", found " +
                   Describe(Peek()));
    }
    Token token = Consume();
    if (out != nullptr) *out = std::move(token);
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument("parse error at " + std::to_string(t.line) +
                                   ":" + std::to_string(t.column) + ": " +
                                   message);
  }

 private:
  static std::string Describe(const Token& token) {
    if (token.kind == TokenKind::kIdent) return "identifier '" + token.text + "'";
    return TokenKindToString(token.kind);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Status ParseAttributeType(TokenStream& stream, TypeName* out) {
  if (stream.ConsumeIf(TokenKind::kLBrace)) {
    Token cls;
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &cls));
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kRBrace));
    *out = TypeName::SetOf(cls.text);
    return Status::Ok();
  }
  Token cls;
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &cls));
  *out = TypeName::Class(cls.text);
  return Status::Ok();
}

Status ParseClassDef(TokenStream& stream, SchemaBuilder* builder) {
  Token name;
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &name));
  std::vector<std::string> parents;
  if (stream.ConsumeIf(TokenKind::kUnder)) {
    Token parent;
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &parent));
    parents.push_back(parent.text);
    while (stream.ConsumeIf(TokenKind::kComma)) {
      OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &parent));
      parents.push_back(parent.text);
    }
  }
  builder->AddClass(name.text, std::move(parents));

  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kLBrace));
  while (!stream.ConsumeIf(TokenKind::kRBrace)) {
    Token attr;
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &attr));
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kColon));
    TypeName type = TypeName::Class("");
    OOCQ_RETURN_IF_ERROR(ParseAttributeType(stream, &type));
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kSemicolon));
    builder->AddAttribute(name.text, attr.text, std::move(type));
  }
  return Status::Ok();
}

/// A parsed path expression `v.A1...An` (n >= 0) before desugaring.
struct DeepTerm {
  VarId var = kInvalidVarId;
  std::vector<std::string> attrs;
};

/// Parses `v` or `v.A1.A2...`; the variable must be declared in `query`.
Status ParseDeepTerm(TokenStream& stream, const ConjunctiveQuery& query,
                     DeepTerm* out) {
  Token var;
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &var));
  out->var = query.FindVariable(var.text);
  if (out->var == kInvalidVarId) {
    return stream.Error("undeclared variable '" + var.text + "'");
  }
  out->attrs.clear();
  while (stream.ConsumeIf(TokenKind::kDot)) {
    Token attr;
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &attr));
    out->attrs.push_back(attr.text);
  }
  return Status::Ok();
}

/// A fresh existential variable for path desugaring, avoiding user names.
VarId AddFreshVariable(ConjunctiveQuery* query) {
  int i = static_cast<int>(query->num_vars());
  std::string name;
  do {
    name = "_p" + std::to_string(i++);
  } while (query->FindVariable(name) != kInvalidVarId);
  return query->AddVariable(std::move(name));
}

/// Desugars a path expression into a chain of fresh variables and
/// equalities (the paper's §2.2 remark: `x.A1...An` is representable
/// indirectly), leaving at most one trailing attribute:
/// `x.A.B.C` -> `_p1 = x.A & _p2 = _p1.B` yielding the term `_p2.C`.
/// Fresh variables receive no range atom; NormalizeToWellFormed (run by
/// every pipeline entry point) ranges them over the attribute's type.
Term LowerToTerm(const DeepTerm& deep, ConjunctiveQuery* query) {
  VarId current = deep.var;
  for (size_t i = 0; i + 1 < deep.attrs.size(); ++i) {
    VarId fresh = AddFreshVariable(query);
    query->AddAtom(
        Atom::Equality(Term::Var(fresh), Term::Attr(current, deep.attrs[i])));
    current = fresh;
  }
  if (deep.attrs.empty()) return Term::Var(current);
  return Term::Attr(current, deep.attrs.back());
}

/// Fully lowers a path expression to a variable (`x.A` -> fresh `_p`
/// equated to it), for positions where only a variable may stand.
VarId LowerToVar(const DeepTerm& deep, ConjunctiveQuery* query) {
  Term term = LowerToTerm(deep, query);
  if (!term.is_attribute()) return term.var;
  VarId fresh = AddFreshVariable(query);
  query->AddAtom(Atom::Equality(Term::Var(fresh), term));
  return fresh;
}

bool PeekIsLiteral(const TokenStream& stream) {
  TokenKind kind = stream.Peek().kind;
  return kind == TokenKind::kIntLit || kind == TokenKind::kRealLit ||
         kind == TokenKind::kStringLit;
}

/// Parses a literal token into a ConstantValue (no exceptions: from_chars).
Status ParseLiteral(TokenStream& stream, ConstantValue* out) {
  Token token = stream.Consume();
  switch (token.kind) {
    case TokenKind::kIntLit: {
      int64_t value = 0;
      auto [ptr, ec] = std::from_chars(
          token.text.data(), token.text.data() + token.text.size(), value);
      if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
        return stream.Error("integer literal '" + token.text +
                            "' out of range");
      }
      *out = value;
      return Status::Ok();
    }
    case TokenKind::kRealLit: {
      double value = 0;
      auto [ptr, ec] = std::from_chars(
          token.text.data(), token.text.data() + token.text.size(), value);
      if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
        return stream.Error("real literal '" + token.text + "' out of range");
      }
      *out = value;
      return Status::Ok();
    }
    case TokenKind::kStringLit:
      *out = token.text;
      return Status::Ok();
    default:
      return stream.Error("expected a literal");
  }
}

/// A fresh variable carrying `value`: `_p in Int & _p = <value>`.
VarId LowerLiteralToVar(const ConstantValue& value, ConjunctiveQuery* query) {
  VarId fresh = AddFreshVariable(query);
  query->AddAtom(Atom::Range(fresh, {ConstantClassOf(value)}));
  query->AddAtom(Atom::Constant(fresh, value));
  return fresh;
}

Status ParseAtom(TokenStream& stream, const Schema& schema,
                 ConjunctiveQuery* query) {
  // Literal on the left: `5 = t`, `"x" != t`, `5 in y.A`, ...
  if (PeekIsLiteral(stream)) {
    ConstantValue literal;
    OOCQ_RETURN_IF_ERROR(ParseLiteral(stream, &literal));
    TokenKind op = stream.Peek().kind;
    if (op != TokenKind::kEq && op != TokenKind::kNeq &&
        op != TokenKind::kIn && op != TokenKind::kNotin) {
      return stream.Error("expected '=', '!=', 'in' or 'notin' after literal");
    }
    stream.Consume();
    if (op == TokenKind::kEq || op == TokenKind::kNeq) {
      DeepTerm rhs;
      OOCQ_RETURN_IF_ERROR(ParseDeepTerm(stream, *query, &rhs));
      if (op == TokenKind::kEq && rhs.attrs.empty()) {
        query->AddAtom(Atom::Constant(rhs.var, std::move(literal)));
        return Status::Ok();
      }
      Term rhs_term = LowerToTerm(rhs, query);
      VarId lit_var = LowerLiteralToVar(literal, query);
      query->AddAtom(op == TokenKind::kEq
                         ? Atom::Equality(Term::Var(lit_var), rhs_term)
                         : Atom::Inequality(Term::Var(lit_var), rhs_term));
      return Status::Ok();
    }
    DeepTerm rhs;
    OOCQ_RETURN_IF_ERROR(ParseDeepTerm(stream, *query, &rhs));
    Term set_term = LowerToTerm(rhs, query);
    if (!set_term.is_attribute()) {
      return stream.Error("expected a set term y.A after 'in'/'notin'");
    }
    VarId lit_var = LowerLiteralToVar(literal, query);
    query->AddAtom(op == TokenKind::kIn
                       ? Atom::Membership(lit_var, set_term.var, set_term.attr)
                       : Atom::NonMembership(lit_var, set_term.var,
                                             set_term.attr));
    return Status::Ok();
  }

  DeepTerm lhs;
  OOCQ_RETURN_IF_ERROR(ParseDeepTerm(stream, *query, &lhs));

  TokenKind op = stream.Peek().kind;
  switch (op) {
    case TokenKind::kEq:
    case TokenKind::kNeq: {
      stream.Consume();
      // Literal on the right: `x = 5`, `x.Name != "Bob"`, ...
      if (PeekIsLiteral(stream)) {
        ConstantValue literal;
        OOCQ_RETURN_IF_ERROR(ParseLiteral(stream, &literal));
        if (op == TokenKind::kEq && lhs.attrs.empty()) {
          query->AddAtom(Atom::Constant(lhs.var, std::move(literal)));
          return Status::Ok();
        }
        Term lhs_term = LowerToTerm(lhs, query);
        VarId lit_var = LowerLiteralToVar(literal, query);
        query->AddAtom(op == TokenKind::kEq
                           ? Atom::Equality(lhs_term, Term::Var(lit_var))
                           : Atom::Inequality(lhs_term, Term::Var(lit_var)));
        return Status::Ok();
      }
      DeepTerm rhs;
      OOCQ_RETURN_IF_ERROR(ParseDeepTerm(stream, *query, &rhs));
      Term lhs_term = LowerToTerm(lhs, query);
      Term rhs_term = LowerToTerm(rhs, query);
      query->AddAtom(op == TokenKind::kEq
                         ? Atom::Equality(lhs_term, rhs_term)
                         : Atom::Inequality(lhs_term, rhs_term));
      return Status::Ok();
    }
    case TokenKind::kIn:
    case TokenKind::kNotin: {
      stream.Consume();
      // `x in y.A` is a membership atom; `x in C1|C2` is a range atom.
      // Path expressions are allowed on both sides of a membership and
      // on the left of a range atom (`x.A in C` becomes `_p = x.A & _p
      // in C`, per the paper's §2.2 remark).
      if (stream.Peek().kind == TokenKind::kIdent &&
          stream.PeekAhead(1).kind == TokenKind::kDot) {
        DeepTerm rhs;
        OOCQ_RETURN_IF_ERROR(ParseDeepTerm(stream, *query, &rhs));
        VarId element = LowerToVar(lhs, query);
        Term set_term = LowerToTerm(rhs, query);
        if (!set_term.is_attribute()) {
          return stream.Error("expected a set term y.A after 'in'/'notin'");
        }
        query->AddAtom(op == TokenKind::kIn
                           ? Atom::Membership(element, set_term.var,
                                              set_term.attr)
                           : Atom::NonMembership(element, set_term.var,
                                                 set_term.attr));
        return Status::Ok();
      }
      std::vector<ClassId> classes;
      do {
        Token cls;
        OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &cls));
        ClassId id = schema.FindClassOrInvalid(cls.text);
        if (id == kInvalidClassId) {
          return stream.Error("unknown class '" + cls.text +
                              "' in range atom");
        }
        classes.push_back(id);
      } while (stream.ConsumeIf(TokenKind::kPipe));
      VarId var = LowerToVar(lhs, query);
      query->AddAtom(op == TokenKind::kIn
                         ? Atom::Range(var, std::move(classes))
                         : Atom::NonRange(var, std::move(classes)));
      return Status::Ok();
    }
    default:
      return stream.Error("expected '=', '!=', 'in' or 'notin' after term");
  }
}

Status ParseOneQuery(TokenStream& stream, const Schema& schema,
                     ConjunctiveQuery* query) {
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kLBrace));
  Token free_var;
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &free_var));
  query->AddVariable(free_var.text);
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kPipe));

  while (stream.ConsumeIf(TokenKind::kExists)) {
    Token var;
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent, &var));
    if (query->FindVariable(var.text) != kInvalidVarId) {
      return stream.Error("variable '" + var.text + "' declared twice");
    }
    query->AddVariable(var.text);
  }

  bool parenthesized = stream.ConsumeIf(TokenKind::kLParen);
  OOCQ_RETURN_IF_ERROR(ParseAtom(stream, schema, query));
  while (stream.ConsumeIf(TokenKind::kAmp)) {
    OOCQ_RETURN_IF_ERROR(ParseAtom(stream, schema, query));
  }
  if (parenthesized) OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kRParen));
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kRBrace));
  return Status::Ok();
}

}  // namespace

StatusOr<Schema> ParseSchema(std::string_view text) {
  OOCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream stream(std::move(tokens));

  SchemaBuilder builder;
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kSchema));
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kIdent));
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kLBrace));
  while (!stream.ConsumeIf(TokenKind::kRBrace)) {
    OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kClass));
    OOCQ_RETURN_IF_ERROR(ParseClassDef(stream, &builder));
  }
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kEnd));
  return builder.Build();
}

StatusOr<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                      std::string_view text) {
  OOCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream stream(std::move(tokens));
  ConjunctiveQuery query;
  OOCQ_RETURN_IF_ERROR(ParseOneQuery(stream, schema, &query));
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kEnd));
  return query;
}

StatusOr<UnionQuery> ParseUnionQuery(const Schema& schema,
                                     std::string_view text) {
  OOCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream stream(std::move(tokens));
  UnionQuery result;
  do {
    ConjunctiveQuery query;
    OOCQ_RETURN_IF_ERROR(ParseOneQuery(stream, schema, &query));
    result.disjuncts.push_back(std::move(query));
  } while (stream.ConsumeIf(TokenKind::kUnion));
  OOCQ_RETURN_IF_ERROR(stream.Expect(TokenKind::kEnd));
  return result;
}

}  // namespace oocq
