#ifndef OOCQ_PARSER_PARSER_H_
#define OOCQ_PARSER_PARSER_H_

#include <string_view>

#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Parses the schema DSL:
///
///   schema VehicleRental {
///     class Vehicle { VehId: String; }
///     class Auto under Vehicle { Doors: Int; }
///     class Client { VehRented: {Vehicle}; }
///   }
///
/// Attribute types are a class name (object type) or `{ClassName}` (set
/// type); `Int`, `Real`, `String` are predefined. `under` lists one or
/// more superclasses separated by commas.
StatusOr<Schema> ParseSchema(std::string_view text);

/// Parses a query in the paper's calculus-like syntax against a schema:
///
///   { x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }
///
/// Atoms: range `x in C1|C2`, non-range `x notin C1|C2`, equality
/// `t1 = t2`, inequality `t1 != t2`, membership `x in y.A`, non-membership
/// `x notin y.A`; terms are `v` or `v.Attr`. Variables must be the free
/// variable or introduced by `exists`. The matrix parentheses are
/// optional for a single atom.
///
/// Syntactic sugar (the paper's §2.2 remark — all representable
/// indirectly, and the parser desugars them): path expressions
/// `x.A1.A2...An` in any term position, `x.A in C1|C2` range atoms, and
/// `x.A in y.B` memberships. Each introduces fresh existential variables
/// `_p<i>` with connecting equalities; the fresh variables carry no range
/// atom, so run NormalizeToWellFormed (the optimizer pipeline does)
/// before the §3/§4 algorithms.
StatusOr<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                      std::string_view text);

/// Parses `Q1 union Q2 union ...` where each Qi is a query as above.
StatusOr<UnionQuery> ParseUnionQuery(const Schema& schema,
                                     std::string_view text);

}  // namespace oocq

#endif  // OOCQ_PARSER_PARSER_H_
