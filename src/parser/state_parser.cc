#include "parser/state_parser.h"

#include <charconv>
#include <cstdio>
#include <map>
#include <variant>
#include <vector>

#include "parser/lexer.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

/// One attribute value before name resolution.
struct ValueExpr {
  enum class Kind { kNull, kInt, kReal, kString, kName, kSet };
  Kind kind = Kind::kNull;
  int64_t int_value = 0;
  double real_value = 0;
  std::string text;               // String contents or object name.
  std::vector<ValueExpr> elements;  // Set members (non-set kinds only).
};

struct AttrAssign {
  std::string attr;
  ValueExpr value;
};

struct ObjectDecl {
  std::string name;
  std::string class_name;
  std::vector<AttrAssign> attrs;
};

class StateParser {
 public:
  StateParser(const Schema* schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  StatusOr<State> Run() {
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kState));
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::vector<ObjectDecl> decls;
    while (!ConsumeIf(TokenKind::kRBrace)) {
      ObjectDecl decl;
      OOCQ_RETURN_IF_ERROR(ParseObjectDecl(&decl));
      decls.push_back(std::move(decl));
    }
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return Build(decls);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Consume() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool ConsumeIf(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Consume();
    return true;
  }
  Status Expect(TokenKind kind, Token* out = nullptr) {
    if (Peek().kind != kind) {
      return Error("expected " + TokenKindToString(kind) + ", found " +
                   TokenKindToString(Peek().kind));
    }
    Token token = Consume();
    if (out != nullptr) *out = std::move(token);
    return Status::Ok();
  }
  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument("state parse error at " +
                                   std::to_string(t.line) + ":" +
                                   std::to_string(t.column) + ": " + message);
  }

  Status ParseScalar(ValueExpr* out) {
    switch (Peek().kind) {
      case TokenKind::kIntLit: {
        // std::from_chars: no exceptions, explicit overflow reporting.
        Token token = Consume();
        out->kind = ValueExpr::Kind::kInt;
        auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(),
            out->int_value);
        if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
          return Status::InvalidArgument("integer literal '" + token.text +
                                         "' out of range");
        }
        return Status::Ok();
      }
      case TokenKind::kRealLit: {
        Token token = Consume();
        out->kind = ValueExpr::Kind::kReal;
        auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(),
            out->real_value);
        if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
          return Status::InvalidArgument("real literal '" + token.text +
                                         "' out of range");
        }
        return Status::Ok();
      }
      case TokenKind::kStringLit:
        out->kind = ValueExpr::Kind::kString;
        out->text = Consume().text;
        return Status::Ok();
      case TokenKind::kIdent:
        out->kind = ValueExpr::Kind::kName;
        out->text = Consume().text;
        return Status::Ok();
      default:
        return Error("expected a literal or object name");
    }
  }

  Status ParseValue(ValueExpr* out) {
    if (ConsumeIf(TokenKind::kNull)) {
      out->kind = ValueExpr::Kind::kNull;
      return Status::Ok();
    }
    if (ConsumeIf(TokenKind::kLBrace)) {
      out->kind = ValueExpr::Kind::kSet;
      if (!ConsumeIf(TokenKind::kRBrace)) {
        do {
          ValueExpr element;
          OOCQ_RETURN_IF_ERROR(ParseScalar(&element));
          out->elements.push_back(std::move(element));
        } while (ConsumeIf(TokenKind::kComma));
        OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      }
      return Status::Ok();
    }
    return ParseScalar(out);
  }

  Status ParseObjectDecl(ObjectDecl* decl) {
    Token name;
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &name));
    decl->name = name.text;
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    Token cls;
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &cls));
    decl->class_name = cls.text;
    OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!ConsumeIf(TokenKind::kRBrace)) {
      Token attr;
      OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &attr));
      OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      AttrAssign assign;
      assign.attr = attr.text;
      OOCQ_RETURN_IF_ERROR(ParseValue(&assign.value));
      OOCQ_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      decl->attrs.push_back(std::move(assign));
    }
    return Status::Ok();
  }

  StatusOr<Oid> ResolveScalar(State& state,
                              const std::map<std::string, Oid>& by_name,
                              const ValueExpr& value) {
    switch (value.kind) {
      case ValueExpr::Kind::kInt:
        return state.InternInt(value.int_value);
      case ValueExpr::Kind::kReal:
        return state.InternReal(value.real_value);
      case ValueExpr::Kind::kString:
        return state.InternString(value.text);
      case ValueExpr::Kind::kName: {
        auto it = by_name.find(value.text);
        if (it == by_name.end()) {
          return Status::NotFound("undeclared object '" + value.text + "'");
        }
        return it->second;
      }
      default:
        return Status::Internal("non-scalar value in scalar position");
    }
  }

  StatusOr<State> Build(const std::vector<ObjectDecl>& decls) {
    State state(schema_);
    // Pass 1: create every object so forward references resolve.
    std::map<std::string, Oid> by_name;
    for (const ObjectDecl& decl : decls) {
      if (by_name.count(decl.name) > 0) {
        return Status::InvalidArgument("object '" + decl.name +
                                       "' declared twice");
      }
      OOCQ_ASSIGN_OR_RETURN(ClassId cls, schema_->FindClass(decl.class_name));
      OOCQ_ASSIGN_OR_RETURN(Oid oid, state.AddObject(cls));
      by_name[decl.name] = oid;
    }
    // Pass 2: attribute slots.
    for (const ObjectDecl& decl : decls) {
      Oid oid = by_name.at(decl.name);
      for (const AttrAssign& assign : decl.attrs) {
        Value value;
        switch (assign.value.kind) {
          case ValueExpr::Kind::kNull:
            value = Value::Null();
            break;
          case ValueExpr::Kind::kSet: {
            std::vector<Oid> members;
            for (const ValueExpr& element : assign.value.elements) {
              OOCQ_ASSIGN_OR_RETURN(Oid member,
                                    ResolveScalar(state, by_name, element));
              members.push_back(member);
            }
            value = Value::Set(std::move(members));
            break;
          }
          default: {
            OOCQ_ASSIGN_OR_RETURN(Oid target,
                                  ResolveScalar(state, by_name, assign.value));
            value = Value::Ref(target);
            break;
          }
        }
        OOCQ_RETURN_IF_ERROR(
            state.SetAttribute(oid, assign.attr, std::move(value)));
      }
    }
    OOCQ_RETURN_IF_ERROR(state.Validate());
    return state;
  }

  const Schema* schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::string EscapeString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

StatusOr<State> ParseState(const Schema* schema, std::string_view text) {
  OOCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  StateParser parser(schema, std::move(tokens));
  return parser.Run();
}

std::string StateToString(const State& state) {
  const Schema& schema = state.schema();
  // Primitive objects are inlined as literals at their use sites.
  auto scalar = [&](Oid oid) -> std::string {
    const State::Payload& payload = state.payload(oid);
    if (const int64_t* i = std::get_if<int64_t>(&payload)) {
      return std::to_string(*i);
    }
    if (const double* d = std::get_if<double>(&payload)) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", *d);
      std::string text = buffer;
      // The grammar requires a decimal point for Real literals.
      if (text.find('.') == std::string::npos) text += ".0";
      return text;
    }
    if (const std::string* s = std::get_if<std::string>(&payload)) {
      return EscapeString(*s);
    }
    return "o" + std::to_string(oid);
  };

  std::string out = "state {\n";
  for (Oid oid = 0; oid < state.num_objects(); ++oid) {
    ClassId cls = state.class_of(oid);
    if (cls < kNumBuiltinClasses) continue;
    out += "  o" + std::to_string(oid) + ": " + schema.class_name(cls) + " {";
    bool any = false;
    for (const AttributeDef& attr : schema.class_info(cls).all_attributes) {
      const Value* value = state.GetAttribute(oid, attr.name);
      if (value == nullptr || value->is_null()) continue;
      any = true;
      out += " " + attr.name + " = ";
      if (value->kind() == Value::Kind::kRef) {
        out += scalar(value->ref());
      } else {
        out += "{";
        for (size_t i = 0; i < value->set().size(); ++i) {
          if (i > 0) out += ",";
          out += " " + scalar(value->set()[i]);
        }
        out += value->set().empty() ? "}" : " }";
      }
      out += ";";
    }
    out += any ? " }\n" : " }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace oocq
