#include "state/state.h"

namespace oocq {

Oid State::AddRaw(ClassId cls) {
  Oid oid = static_cast<Oid>(objects_.size());
  objects_.push_back(ObjectData{cls, {}, std::monostate{}});
  return oid;
}

StatusOr<Oid> State::AddObject(ClassId terminal_class) {
  if (terminal_class >= schema_->num_classes()) {
    return Status::InvalidArgument("unknown class id " +
                                   std::to_string(terminal_class));
  }
  const ClassInfo& info = schema_->class_info(terminal_class);
  if (info.is_builtin) {
    return Status::InvalidArgument(
        "primitive objects are created with InternInt/InternReal/"
        "InternString, not AddObject");
  }
  if (!info.is_terminal) {
    return Status::InvalidArgument(
        "objects belong to terminal classes; '" + info.name +
        "' is non-terminal (Terminal Class Partitioning Assumption)");
  }
  Oid oid = AddRaw(terminal_class);
  for (const AttributeDef& attr : info.all_attributes) {
    objects_[oid].attributes.emplace(attr.name, Value::Null());
  }
  return oid;
}

Status State::SetAttribute(Oid oid, std::string_view attr, Value value) {
  if (oid >= objects_.size()) {
    return Status::InvalidArgument("unknown oid " + std::to_string(oid));
  }
  auto it = objects_[oid].attributes.find(attr);
  if (it == objects_[oid].attributes.end()) {
    return Status::NotFound(
        "class '" + schema_->class_name(objects_[oid].cls) +
        "' has no attribute '" + std::string(attr) + "'");
  }
  it->second = std::move(value);
  return Status::Ok();
}

Oid State::InternInt(int64_t value) {
  auto [it, inserted] = int_pool_.emplace(value, kInvalidOid);
  if (inserted) {
    it->second = AddRaw(kIntClassId);
    objects_[it->second].payload = value;
  }
  return it->second;
}

Oid State::InternReal(double value) {
  auto [it, inserted] = real_pool_.emplace(value, kInvalidOid);
  if (inserted) {
    it->second = AddRaw(kRealClassId);
    objects_[it->second].payload = value;
  }
  return it->second;
}

Oid State::InternString(std::string value) {
  auto [it, inserted] = string_pool_.emplace(std::move(value), kInvalidOid);
  if (inserted) {
    it->second = AddRaw(kStringClassId);
    objects_[it->second].payload = it->first;
  }
  return it->second;
}

Oid State::FindInternedInt(int64_t value) const {
  auto it = int_pool_.find(value);
  return it == int_pool_.end() ? kInvalidOid : it->second;
}

Oid State::FindInternedReal(double value) const {
  auto it = real_pool_.find(value);
  return it == real_pool_.end() ? kInvalidOid : it->second;
}

Oid State::FindInternedString(std::string_view value) const {
  auto it = string_pool_.find(value);
  return it == string_pool_.end() ? kInvalidOid : it->second;
}

const Value* State::GetAttribute(Oid oid, std::string_view attr) const {
  if (oid >= objects_.size()) return nullptr;
  auto it = objects_[oid].attributes.find(attr);
  return it == objects_[oid].attributes.end() ? nullptr : &it->second;
}

std::vector<Oid> State::Extent(ClassId c) const {
  std::vector<Oid> result;
  for (Oid oid = 0; oid < objects_.size(); ++oid) {
    if (schema_->IsSubclassOf(objects_[oid].cls, c)) result.push_back(oid);
  }
  return result;
}

Status State::Validate() const {
  for (Oid oid = 0; oid < objects_.size(); ++oid) {
    const ObjectData& object = objects_[oid];
    for (const auto& [name, value] : object.attributes) {
      const TypeExpr* type = schema_->FindAttribute(object.cls, name);
      if (type == nullptr) {
        return Status::Internal("object " + DebugString(oid) +
                                " stores undeclared attribute '" + name + "'");
      }
      switch (value.kind()) {
        case Value::Kind::kNull:
          break;
        case Value::Kind::kRef:
          if (type->is_set()) {
            return Status::InvalidArgument(
                "attribute '" + name + "' of " + DebugString(oid) +
                " is set-typed but holds a single reference");
          }
          if (value.ref() >= objects_.size() ||
              !schema_->IsSubclassOf(objects_[value.ref()].cls, type->cls())) {
            return Status::InvalidArgument(
                "attribute '" + name + "' of " + DebugString(oid) +
                " references an object outside class '" +
                schema_->class_name(type->cls()) + "'");
          }
          break;
        case Value::Kind::kSet:
          if (!type->is_set()) {
            return Status::InvalidArgument(
                "attribute '" + name + "' of " + DebugString(oid) +
                " is object-typed but holds a set");
          }
          for (Oid member : value.set()) {
            if (member >= objects_.size() ||
                !schema_->IsSubclassOf(objects_[member].cls, type->cls())) {
              return Status::InvalidArgument(
                  "attribute '" + name + "' of " + DebugString(oid) +
                  " contains a member outside class '" +
                  schema_->class_name(type->cls()) + "'");
            }
          }
          break;
      }
    }
  }
  return Status::Ok();
}

std::string State::DebugString(Oid oid) const {
  if (oid >= objects_.size()) return "<invalid oid>";
  const ObjectData& object = objects_[oid];
  const std::string& cls = schema_->class_name(object.cls);
  if (std::holds_alternative<int64_t>(object.payload)) {
    return cls + "(" + std::to_string(std::get<int64_t>(object.payload)) + ")";
  }
  if (std::holds_alternative<double>(object.payload)) {
    return cls + "(" + std::to_string(std::get<double>(object.payload)) + ")";
  }
  if (std::holds_alternative<std::string>(object.payload)) {
    return cls + "(\"" + std::get<std::string>(object.payload) + "\")";
  }
  return cls + "#" + std::to_string(oid);
}

}  // namespace oocq
