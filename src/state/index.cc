#include "state/index.h"

#include <algorithm>

namespace oocq {

StateIndex::StateIndex(const State& state) : state_(&state) {
  const Schema& schema = state.schema();
  extents_.resize(schema.num_classes());
  for (Oid oid = 0; oid < state.num_objects(); ++oid) {
    ClassId terminal = state.class_of(oid);
    for (ClassId c = 0; c < schema.num_classes(); ++c) {
      if (schema.IsSubclassOf(terminal, c)) extents_[c].push_back(oid);
    }
    const ClassInfo& info = schema.class_info(terminal);
    for (const AttributeDef& attr : info.all_attributes) {
      const Value* value = state.GetAttribute(oid, attr.name);
      if (value == nullptr) continue;
      if (value->kind() == Value::Kind::kRef) {
        ref_owners_[{attr.name, value->ref()}].push_back(oid);
      } else if (value->kind() == Value::Kind::kSet) {
        for (Oid member : value->set()) {
          set_owners_[{attr.name, member}].push_back(oid);
        }
      }
    }
  }
  // Oids are visited in ascending order, so all postings are sorted.
}

const std::vector<Oid>& StateIndex::RefOwners(std::string_view attr,
                                              Oid value) const {
  auto it = ref_owners_.find(std::make_pair(std::string(attr), value));
  return it == ref_owners_.end() ? empty_ : it->second;
}

const std::vector<Oid>& StateIndex::SetOwners(std::string_view attr,
                                              Oid element) const {
  auto it = set_owners_.find(std::make_pair(std::string(attr), element));
  return it == set_owners_.end() ? empty_ : it->second;
}

}  // namespace oocq
