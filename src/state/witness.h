#ifndef OOCQ_STATE_WITNESS_H_
#define OOCQ_STATE_WITNESS_H_

#include <optional>

#include "query/query.h"
#include "schema/schema.h"
#include "state/generator.h"
#include "state/state.h"
#include "support/status.h"

namespace oocq {

/// The constructive half of our Thm 2.2 procedure (DESIGN.md §5.3):
/// builds a state witnessing the satisfiability of a well-formed terminal
/// conjunctive query — one object per variable equivalence class of E(Q),
/// object-attribute slots set per the equality atoms, set slots seeded
/// with exactly the derivable memberships. Evaluating the query on the
/// result yields (at least) the free variable's witness object.
///
/// Returns FailedPrecondition when the query is unsatisfiable.
StatusOr<State> BuildCanonicalWitnessState(const Schema& schema,
                                           const ConjunctiveQuery& query);

/// Options for the randomized counterexample search.
struct WitnessSearchOptions {
  /// Number of random states tried (growing sizes, deterministic seeds).
  uint32_t max_trials = 40;
  GeneratorParams base;
};

/// Searches for a state disproving Q1 ⊆ Q2, i.e. one where Q1(s) ⊄ Q2(s).
/// Trial 0 is the canonical witness state of Q1 (the adversarial state the
/// containment theory reasons about); later trials are random states of
/// growing size. Returns the first counterexample state found, or nullopt.
/// Both queries must be well-formed; Q1 terminal.
StatusOr<std::optional<State>> FindContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, const WitnessSearchOptions& options = {});

}  // namespace oocq

#endif  // OOCQ_STATE_WITNESS_H_
