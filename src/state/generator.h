#ifndef OOCQ_STATE_GENERATOR_H_
#define OOCQ_STATE_GENERATOR_H_

#include <cstdint>

#include "schema/schema.h"
#include "state/state.h"

namespace oocq {

/// Knobs for the seeded random-state generator.
struct GeneratorParams {
  /// Objects created per user-declared terminal class.
  uint32_t objects_per_class = 8;
  /// Probability that an attribute slot stays Λ.
  double null_probability = 0.15;
  /// Set-valued slots get 0..max_set_size members.
  uint32_t max_set_size = 4;
  /// Distinct interned values per primitive class.
  uint32_t primitive_pool = 12;
  uint64_t seed = 42;
};

/// Generates a random *legal* state: `objects_per_class` objects in every
/// user terminal class, attribute slots filled with type-correct
/// references/sets drawn uniformly from the target class's extent (or Λ
/// with `null_probability`). Deterministic in `seed`. Used by the
/// property tests (E6) and the evaluation benches (E7).
State GenerateRandomState(const Schema& schema, const GeneratorParams& params);

}  // namespace oocq

#endif  // OOCQ_STATE_GENERATOR_H_
