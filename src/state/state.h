#ifndef OOCQ_STATE_STATE_H_
#define OOCQ_STATE_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "schema/schema.h"
#include "state/value.h"
#include "support/status.h"

namespace oocq {

/// A database state: a finite collection of objects, each belonging to
/// exactly one *terminal* class (which realizes the Terminal Class
/// Partitioning Assumption — the extent of a non-terminal class is the
/// disjoint union of its terminal descendants' extents). Attribute slots
/// hold Values (Λ, reference, or set of references).
///
/// Primitive values are objects too: InternInt/InternReal/InternString
/// return a canonical Oid per value, in the corresponding built-in class.
///
/// The State borrows the Schema; the schema must outlive the state.
class State {
 public:
  explicit State(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Creates an object of a *terminal, non-builtin* class with all
  /// attributes initialized to Λ.
  StatusOr<Oid> AddObject(ClassId terminal_class);

  /// Sets an attribute of an object. The attribute must exist on the
  /// object's class; the value is type-checked on Validate(), not here.
  Status SetAttribute(Oid oid, std::string_view attr, Value value);

  /// Canonical primitive objects (created on first use).
  Oid InternInt(int64_t value);
  Oid InternReal(double value);
  Oid InternString(std::string value);

  /// The already-interned primitive with this value, or kInvalidOid
  /// (const lookup; never creates).
  Oid FindInternedInt(int64_t value) const;
  Oid FindInternedReal(double value) const;
  Oid FindInternedString(std::string_view value) const;

  /// Payload of a primitive object; monostate for user objects.
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;

  size_t num_objects() const { return objects_.size(); }
  ClassId class_of(Oid oid) const { return objects_[oid].cls; }
  const Payload& payload(Oid oid) const { return objects_[oid].payload; }

  /// The attribute slot of an object, or nullptr if the object's class
  /// has no such attribute.
  const Value* GetAttribute(Oid oid, std::string_view attr) const;

  /// The extent of class `c`: all objects whose terminal class is a
  /// descendant-or-self of `c`. Primitive extents contain the interned
  /// values only (active-domain semantics; the conceptual extent is
  /// unbounded).
  std::vector<Oid> Extent(ClassId c) const;

  /// Whether `oid` is a member of class `c`.
  bool IsMember(Oid oid, ClassId c) const {
    return schema_->IsSubclassOf(objects_[oid].cls, c);
  }

  /// Checks that this is a legal state: every attribute value type-checks
  /// against the schema (references land in the attribute's class, set
  /// members in the element class; set-typed slots hold sets, object-typed
  /// slots hold references).
  Status Validate() const;

  /// "Auto#3", "Int(42)", ... for diagnostics.
  std::string DebugString(Oid oid) const;

 private:
  struct ObjectData {
    ClassId cls;
    std::map<std::string, Value, std::less<>> attributes;
    Payload payload;
  };

  Oid AddRaw(ClassId cls);

  const Schema* schema_;
  std::vector<ObjectData> objects_;
  std::map<int64_t, Oid> int_pool_;
  std::map<double, Oid> real_pool_;
  std::map<std::string, Oid, std::less<>> string_pool_;
};

}  // namespace oocq

#endif  // OOCQ_STATE_STATE_H_
