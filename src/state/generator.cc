#include "state/generator.h"

#include <random>
#include <vector>

namespace oocq {

State GenerateRandomState(const Schema& schema, const GeneratorParams& params) {
  State state(&schema);
  std::mt19937_64 rng(params.seed);

  // Primitive pools so object attributes of primitive type have targets.
  for (uint32_t i = 0; i < params.primitive_pool; ++i) {
    state.InternInt(static_cast<int64_t>(i));
    state.InternReal(i + 0.5);
    state.InternString("str" + std::to_string(i));
  }

  // All objects first, so references may point anywhere.
  std::vector<Oid> user_objects;
  for (ClassId c : schema.TerminalClasses(/*include_builtins=*/false)) {
    for (uint32_t i = 0; i < params.objects_per_class; ++i) {
      StatusOr<Oid> oid = state.AddObject(c);
      user_objects.push_back(*oid);
    }
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (Oid oid : user_objects) {
    ClassId cls = state.class_of(oid);
    for (const AttributeDef& attr : schema.class_info(cls).all_attributes) {
      if (unit(rng) < params.null_probability) continue;  // Stays Λ.
      std::vector<Oid> pool = state.Extent(attr.type.cls());
      if (pool.empty()) continue;
      std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
      if (attr.type.is_set()) {
        std::uniform_int_distribution<uint32_t> size_dist(0,
                                                          params.max_set_size);
        uint32_t size = size_dist(rng);
        std::vector<Oid> members;
        for (uint32_t k = 0; k < size; ++k) members.push_back(pool[pick(rng)]);
        state.SetAttribute(oid, attr.name, Value::Set(std::move(members)));
      } else {
        state.SetAttribute(oid, attr.name, Value::Ref(pool[pick(rng)]));
      }
    }
  }
  return state;
}

}  // namespace oocq
