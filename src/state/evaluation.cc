#include "state/evaluation.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <set>

#include "compile/compiler.h"
#include "compile/vm.h"
#include "state/eval_internal.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/status_macros.h"
#include "support/trace.h"

namespace oocq {

using eval_internal::EvalAtom;
using eval_internal::Truth;

namespace eval_internal {

StatusOr<std::vector<Oid>> TryCompiledEvaluate(const State& state,
                                               const StateIndex* index,
                                               const ConjunctiveQuery& query,
                                               const EvalOptions& options,
                                               bool* taken) {
  *taken = false;
  // The compiled path engages only without a stats sink: EvalStats fields
  // describe tree-walker work (assignments in its binding order) and keep
  // their exact meaning for the ablation benches and tests.
  if (!options.enable_compilation) return std::vector<Oid>{};
  // Chaos hook: force a mid-request bailout to the tree walker. The
  // fallback is the behavior under test — never an error to the caller.
  if (Status chaos = Failpoints::Check("compile/exec"); !chaos.ok()) {
    OOCQ_METRIC_ADD("compile/bailouts", 1);
    return std::vector<Oid>{};
  }
  const compile::CompiledQuery* program = options.program;
  std::optional<compile::CompiledQuery> local;
  if (program == nullptr) {
    StatusOr<compile::CompiledQuery> compiled =
        compile::CompileQuery(state.schema(), query);
    if (!compiled.ok()) {
      OOCQ_METRIC_ADD("compile/unsupported", 1);
      return std::vector<Oid>{};
    }
    OOCQ_METRIC_ADD("compile/compiles", 1);
    local.emplace(std::move(*compiled));
    program = &*local;
  }
  *taken = true;
  compile::ExecOptions exec;
  exec.max_bindings = options.max_assignments;
  exec.cancel = options.cancel;
  return compile::ExecuteCompiled(*program, state, index, exec);
}

}  // namespace eval_internal

StatusOr<std::vector<Oid>> Evaluate(const State& state,
                                    const ConjunctiveQuery& query,
                                    const EvalOptions& options,
                                    EvalStats* stats) {
  OOCQ_TRACE_SPAN(span, "Evaluate");
  OOCQ_METRIC_ADD("eval/calls", 1);
  if (options.cancel != nullptr) {
    OOCQ_RETURN_IF_ERROR(options.cancel->Check());
  }
  if (stats == nullptr) {
    bool taken = false;
    StatusOr<std::vector<Oid>> compiled = eval_internal::TryCompiledEvaluate(
        state, /*index=*/nullptr, query, options, &taken);
    if (taken) return compiled;
  }
  const size_t n = query.num_vars();
  span.Arg("vars", static_cast<uint64_t>(n));

  // Candidate extents per variable from its range atom(s). A variable
  // with no range atom ranges over the whole active domain.
  std::vector<std::vector<Oid>> candidates(n);
  for (VarId v = 0; v < n; ++v) {
    const Atom* range = query.RangeAtomOf(v);
    if (range == nullptr) {
      candidates[v].resize(state.num_objects());
      for (Oid oid = 0; oid < state.num_objects(); ++oid) {
        candidates[v][oid] = oid;
      }
    } else {
      std::set<Oid> pool;
      for (ClassId c : range->classes()) {
        for (Oid oid : state.Extent(c)) pool.insert(oid);
      }
      candidates[v].assign(pool.begin(), pool.end());
    }
    if (stats != nullptr) stats->candidate_pool += candidates[v].size();
    if (candidates[v].empty()) return std::vector<Oid>{};
  }

  // Binding order: declaration order, or a connectivity-aware greedy
  // order when reordering is enabled — seed with the smallest pool, then
  // repeatedly bind the smallest-pool variable that shares an atom with
  // an already-bound one (so every bound variable's atoms prune as early
  // as possible), falling back to the smallest disconnected pool.
  // Selectivity alone is not enough: binding a small but disconnected
  // extent first defers every join check to the innermost loop.
  std::vector<VarId> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.reorder_variables && n > 1) {
    std::vector<std::vector<char>> adjacent(n, std::vector<char>(n, 0));
    for (const Atom& atom : query.atoms()) {
      switch (atom.kind()) {
        case AtomKind::kRange:
        case AtomKind::kNonRange:
        case AtomKind::kConstant:
          break;
        default: {
          VarId a = atom.lhs().var;
          VarId b = atom.rhs().var;
          adjacent[a][b] = adjacent[b][a] = 1;
          break;
        }
      }
    }
    std::vector<char> placed(n, 0);
    order.clear();
    while (order.size() < n) {
      VarId best = kInvalidVarId;
      bool best_connected = false;
      for (VarId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        bool connected = false;
        for (VarId u : order) {
          if (adjacent[v][u]) {
            connected = true;
            break;
          }
        }
        if (best == kInvalidVarId ||
            std::make_pair(!connected, candidates[v].size()) <
                std::make_pair(!best_connected, candidates[best].size())) {
          best = v;
          best_connected = connected;
        }
      }
      placed[best] = 1;
      order.push_back(best);
    }
  }
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = i;

  // Schedule each atom at the depth where its last variable binds.
  std::vector<std::vector<const Atom*>> checks(n);
  for (const Atom& atom : query.atoms()) {
    size_t last = 0;
    switch (atom.kind()) {
      case AtomKind::kRange:
      case AtomKind::kNonRange:
        last = position[atom.var()];
        break;
      default:
        last = std::max(position[atom.lhs().var], position[atom.rhs().var]);
        break;
    }
    checks[last].push_back(&atom);
  }

  std::vector<Oid> assignment(n, kInvalidOid);
  std::vector<size_t> choice(n, 0);
  std::set<Oid> answers;
  uint64_t tried = 0;
  size_t depth = 0;
  while (true) {
    VarId var_at_depth = order[depth];
    if (choice[depth] >= candidates[var_at_depth].size()) {
      choice[depth] = 0;
      if (depth == 0) break;
      --depth;
      ++choice[depth];
      continue;
    }
    if (++tried > options.max_assignments) {
      return Status::ResourceExhausted(
          "evaluation exceeded EvalOptions::max_assignments");
    }
    if (options.cancel != nullptr && (tried & 4095) == 0) {
      OOCQ_RETURN_IF_ERROR(options.cancel->Check());
    }
    assignment[var_at_depth] = candidates[var_at_depth][choice[depth]];
    bool holds = true;
    for (const Atom* atom : checks[depth]) {
      if (EvalAtom(state, assignment, *atom) != Truth::kTrue) {
        holds = false;
        break;
      }
    }
    if (!holds) {
      ++choice[depth];
      continue;
    }
    if (depth + 1 == n) {
      answers.insert(assignment[query.free_var()]);
      ++choice[depth];
      continue;
    }
    ++depth;
  }
  if (stats != nullptr) stats->assignments_tried += tried;
  span.Arg("assignments", tried)
      .Arg("answers", static_cast<uint64_t>(answers.size()));
  OOCQ_METRIC_ADD("eval/assignments", tried);

  return std::vector<Oid>(answers.begin(), answers.end());
}

StatusOr<std::vector<Oid>> EvaluateUnion(const State& state,
                                         const UnionQuery& query,
                                         const EvalOptions& options,
                                         EvalStats* stats) {
  std::set<Oid> answers;
  for (const ConjunctiveQuery& disjunct : query.disjuncts) {
    OOCQ_ASSIGN_OR_RETURN(std::vector<Oid> part,
                          Evaluate(state, disjunct, options, stats));
    answers.insert(part.begin(), part.end());
  }
  return std::vector<Oid>(answers.begin(), answers.end());
}

}  // namespace oocq
