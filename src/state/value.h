#ifndef OOCQ_STATE_VALUE_H_
#define OOCQ_STATE_VALUE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace oocq {

/// Identity of an object within a State.
using Oid = uint32_t;

inline constexpr Oid kInvalidOid = static_cast<Oid>(-1);

/// One attribute slot of an object: the null value Λ, a reference to an
/// object, or a finite set of references (the three things the paper's
/// model stores in a component).
class Value {
 public:
  enum class Kind { kNull, kRef, kSet };

  /// The unknown value Λ.
  static Value Null() { return Value(Kind::kNull, kInvalidOid, {}); }
  static Value Ref(Oid oid) { return Value(Kind::kRef, oid, {}); }
  static Value Set(std::vector<Oid> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    return Value(Kind::kSet, kInvalidOid, std::move(members));
  }
  /// Default: Λ.
  Value() : Value(Kind::kNull, kInvalidOid, {}) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  Oid ref() const { return ref_; }
  const std::vector<Oid>& set() const { return set_; }

  bool Contains(Oid oid) const {
    return kind_ == Kind::kSet &&
           std::binary_search(set_.begin(), set_.end(), oid);
  }

  /// Adds a member to a set value (no-op on duplicates).
  void Insert(Oid oid) {
    auto it = std::lower_bound(set_.begin(), set_.end(), oid);
    if (it == set_.end() || *it != oid) set_.insert(it, oid);
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.ref_ == b.ref_ && a.set_ == b.set_;
  }

 private:
  Value(Kind kind, Oid ref, std::vector<Oid> set)
      : kind_(kind), ref_(ref), set_(std::move(set)) {}

  Kind kind_;
  Oid ref_;
  std::vector<Oid> set_;
};

}  // namespace oocq

#endif  // OOCQ_STATE_VALUE_H_
