#ifndef OOCQ_STATE_INDEXED_EVALUATION_H_
#define OOCQ_STATE_INDEXED_EVALUATION_H_

#include "query/query.h"
#include "state/evaluation.h"
#include "state/index.h"
#include "support/status.h"

namespace oocq {

/// Work counters for the indexed evaluator.
struct IndexedEvalStats {
  /// Candidate objects actually enumerated (post index restriction).
  uint64_t candidates_enumerated = 0;
  /// Index probes (ref/set/extent lookups) performed.
  uint64_t index_probes = 0;
};

/// Index-nested-loop evaluation: semantically identical to Evaluate()
/// (same 3-valued logic, same answers) but each variable's candidates are
/// restricted through the StateIndex by the atoms connecting it to
/// already-bound variables:
///
///   u = x.A   with x bound -> u candidates = { value of x.A }
///   u = x.A   with u bound -> x candidates = RefOwners(A, u)
///   u in x.A  with x bound -> u candidates = members of x.A
///   u in x.A  with u bound -> x candidates = SetOwners(A, u)
///   u = w     with w bound -> u candidates = { w }
///
/// Remaining atoms are verified exactly as in Evaluate(), so restriction
/// is purely an access-path optimization. Variables bind most-selective
/// first (greedy on the initial extent sizes, preferring variables with a
/// binding atom to a bound variable).
StatusOr<std::vector<Oid>> EvaluateIndexed(const StateIndex& index,
                                           const ConjunctiveQuery& query,
                                           const EvalOptions& options = {},
                                           IndexedEvalStats* stats = nullptr);

/// Union evaluation through the index.
StatusOr<std::vector<Oid>> EvaluateUnionIndexed(
    const StateIndex& index, const UnionQuery& query,
    const EvalOptions& options = {}, IndexedEvalStats* stats = nullptr);

}  // namespace oocq

#endif  // OOCQ_STATE_INDEXED_EVALUATION_H_
