#include "state/indexed_evaluation.h"

#include <algorithm>
#include <optional>
#include <set>

#include "state/eval_internal.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

using eval_internal::EvalAtom;
using eval_internal::EvalObjectTerm;
using eval_internal::Truth;

std::vector<Oid> Intersect(const std::vector<Oid>& a,
                           const std::vector<Oid>& b) {
  std::vector<Oid> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// The index-nested-loop search state.
class IndexedSearch {
 public:
  IndexedSearch(const StateIndex& index, const ConjunctiveQuery& query,
                const EvalOptions& options, IndexedEvalStats* stats)
      : index_(index),
        state_(index.state()),
        query_(query),
        options_(options),
        stats_(stats),
        assignment_(query.num_vars(), kInvalidOid),
        bound_(query.num_vars(), false) {}

  StatusOr<std::vector<Oid>> Run() {
    // Initial pools from the range atoms (extent index).
    pools_.resize(query_.num_vars());
    for (VarId v = 0; v < query_.num_vars(); ++v) {
      const Atom* range = query_.RangeAtomOf(v);
      if (range == nullptr) {
        pools_[v].resize(state_.num_objects());
        for (Oid oid = 0; oid < state_.num_objects(); ++oid) {
          pools_[v][oid] = oid;
        }
        continue;
      }
      if (stats_ != nullptr) stats_->index_probes += range->classes().size();
      std::set<Oid> merged;
      for (ClassId c : range->classes()) {
        const std::vector<Oid>& extent = index_.Extent(c);
        merged.insert(extent.begin(), extent.end());
      }
      pools_[v].assign(merged.begin(), merged.end());
    }

    OOCQ_RETURN_IF_ERROR(Recurse(0));
    return std::vector<Oid>(answers_.begin(), answers_.end());
  }

 private:
  /// True when every variable of `atom` is bound.
  bool FullyBound(const Atom& atom) const {
    switch (atom.kind()) {
      case AtomKind::kRange:
      case AtomKind::kNonRange:
        return bound_[atom.var()];
      default:
        return bound_[atom.lhs().var] && bound_[atom.rhs().var];
    }
  }

  /// Candidates for unbound variable v under the current partial
  /// assignment: the range pool intersected with every index restriction
  /// an atom connecting v to bound variables provides.
  std::vector<Oid> CandidatesFor(VarId v) {
    std::vector<Oid> result = pools_[v];
    for (const Atom& atom : query_.atoms()) {
      if (result.empty()) break;
      switch (atom.kind()) {
        case AtomKind::kEquality: {
          const Term& lhs = atom.lhs();
          const Term& rhs = atom.rhs();
          for (const auto& [self, other] :
               {std::make_pair(lhs, rhs), std::make_pair(rhs, lhs)}) {
            if (self.var != v || bound_[self.var]) continue;
            if (other.var == v || !bound_[other.var]) continue;
            std::optional<Oid> value =
                EvalObjectTerm(state_, assignment_, other);
            if (!value.has_value()) return {};  // Atom would be unknown.
            if (self.is_attribute()) {
              // v.A = value: owners of slot A referencing value.
              if (stats_ != nullptr) ++stats_->index_probes;
              result = Intersect(result,
                                 index_.RefOwners(self.attr, *value));
            } else {
              // v = value.
              result = std::binary_search(result.begin(), result.end(),
                                          *value)
                           ? std::vector<Oid>{*value}
                           : std::vector<Oid>{};
            }
          }
          break;
        }
        case AtomKind::kMembership: {
          VarId element = atom.var();
          VarId owner = atom.set_term().var;
          if (element == v && !bound_[v] && owner != v && bound_[owner]) {
            const Value* value = state_.GetAttribute(
                assignment_[owner], atom.set_term().attr);
            if (value == nullptr || value->kind() != Value::Kind::kSet) {
              return {};
            }
            result = Intersect(result, value->set());
          } else if (owner == v && !bound_[v] && element != v &&
                     bound_[element]) {
            if (stats_ != nullptr) ++stats_->index_probes;
            result = Intersect(result,
                               index_.SetOwners(atom.set_term().attr,
                                                assignment_[element]));
          }
          break;
        }
        case AtomKind::kConstant: {
          if (atom.var() != v || bound_[v]) break;
          // The literal names exactly one object (if interned at all).
          const ConstantValue& value = atom.constant();
          Oid target = kInvalidOid;
          if (const int64_t* i = std::get_if<int64_t>(&value)) {
            target = state_.FindInternedInt(*i);
          } else if (const double* d = std::get_if<double>(&value)) {
            target = state_.FindInternedReal(*d);
          } else {
            target = state_.FindInternedString(std::get<std::string>(value));
          }
          if (stats_ != nullptr) ++stats_->index_probes;
          if (target == kInvalidOid ||
              !std::binary_search(result.begin(), result.end(), target)) {
            return {};
          }
          result = {target};
          break;
        }
        default:
          break;  // Negative atoms never narrow; they are verified.
      }
    }
    return result;
  }

  Status Recurse(size_t depth) {
    if (depth == query_.num_vars()) {
      answers_.insert(assignment_[query_.free_var()]);
      return Status::Ok();
    }
    // Pick the unbound variable with the fewest candidates right now.
    VarId best = kInvalidVarId;
    std::vector<Oid> best_candidates;
    for (VarId v = 0; v < query_.num_vars(); ++v) {
      if (bound_[v]) continue;
      std::vector<Oid> candidates = CandidatesFor(v);
      if (best == kInvalidVarId || candidates.size() < best_candidates.size()) {
        best = v;
        best_candidates = std::move(candidates);
        if (best_candidates.empty()) break;  // Dead branch.
      }
    }
    for (Oid candidate : best_candidates) {
      if (stats_ != nullptr) ++stats_->candidates_enumerated;
      if (++tried_ > options_.max_assignments) {
        return Status::ResourceExhausted(
            "indexed evaluation exceeded EvalOptions::max_assignments");
      }
      if (options_.cancel != nullptr && (tried_ & 4095) == 0) {
        OOCQ_RETURN_IF_ERROR(options_.cancel->Check());
      }
      assignment_[best] = candidate;
      bound_[best] = true;
      bool holds = true;
      for (const Atom& atom : query_.atoms()) {
        if (!FullyBound(atom)) continue;
        // Only re-check atoms involving the newly bound variable.
        bool involves_best = false;
        switch (atom.kind()) {
          case AtomKind::kRange:
          case AtomKind::kNonRange:
            involves_best = atom.var() == best;
            break;
          default:
            involves_best =
                atom.lhs().var == best || atom.rhs().var == best;
            break;
        }
        if (!involves_best) continue;
        if (EvalAtom(state_, assignment_, atom) != Truth::kTrue) {
          holds = false;
          break;
        }
      }
      if (holds) {
        OOCQ_RETURN_IF_ERROR(Recurse(depth + 1));
      }
      bound_[best] = false;
      assignment_[best] = kInvalidOid;
    }
    return Status::Ok();
  }

  const StateIndex& index_;
  const State& state_;
  const ConjunctiveQuery& query_;
  const EvalOptions& options_;
  IndexedEvalStats* stats_;

  std::vector<std::vector<Oid>> pools_;
  std::vector<Oid> assignment_;
  std::vector<char> bound_;
  std::set<Oid> answers_;
  uint64_t tried_ = 0;
};

}  // namespace

StatusOr<std::vector<Oid>> EvaluateIndexed(const StateIndex& index,
                                           const ConjunctiveQuery& query,
                                           const EvalOptions& options,
                                           IndexedEvalStats* stats) {
  if (options.cancel != nullptr) {
    OOCQ_RETURN_IF_ERROR(options.cancel->Check());
  }
  if (stats == nullptr) {
    bool taken = false;
    StatusOr<std::vector<Oid>> compiled = eval_internal::TryCompiledEvaluate(
        index.state(), &index, query, options, &taken);
    if (taken) return compiled;
  }
  IndexedSearch search(index, query, options, stats);
  return search.Run();
}

StatusOr<std::vector<Oid>> EvaluateUnionIndexed(const StateIndex& index,
                                                const UnionQuery& query,
                                                const EvalOptions& options,
                                                IndexedEvalStats* stats) {
  std::set<Oid> answers;
  for (const ConjunctiveQuery& disjunct : query.disjuncts) {
    OOCQ_ASSIGN_OR_RETURN(std::vector<Oid> part,
                          EvaluateIndexed(index, disjunct, options, stats));
    answers.insert(part.begin(), part.end());
  }
  return std::vector<Oid>(answers.begin(), answers.end());
}

}  // namespace oocq
