#ifndef OOCQ_STATE_INDEX_H_
#define OOCQ_STATE_INDEX_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "state/state.h"

namespace oocq {

/// Secondary indexes over one State snapshot, the access paths the
/// index-nested-loop evaluator (state/indexed_evaluation.h) drives:
///
///  - extent index: class id -> sorted member oids (materializing what
///    State::Extent computes by scan);
///  - ref index: (attribute, value oid) -> owners whose slot references
///    that value (supports `u = x.A` with u bound);
///  - set index: (attribute, element oid) -> owners whose set contains
///    the element (supports `u in x.A` with u bound).
///
/// Build once; the state must not be mutated afterwards.
class StateIndex {
 public:
  explicit StateIndex(const State& state);

  const State& state() const { return *state_; }

  /// Sorted extent of class `c`.
  const std::vector<Oid>& Extent(ClassId c) const { return extents_[c]; }

  /// Owners o with o.attr referencing `value` (sorted; empty if none).
  const std::vector<Oid>& RefOwners(std::string_view attr, Oid value) const;

  /// Owners o with `element` a member of o.attr (sorted; empty if none).
  const std::vector<Oid>& SetOwners(std::string_view attr, Oid element) const;

 private:
  const State* state_;
  std::vector<std::vector<Oid>> extents_;
  std::map<std::pair<std::string, Oid>, std::vector<Oid>, std::less<>>
      ref_owners_;
  std::map<std::pair<std::string, Oid>, std::vector<Oid>, std::less<>>
      set_owners_;
  std::vector<Oid> empty_;
};

}  // namespace oocq

#endif  // OOCQ_STATE_INDEX_H_
