#include "state/witness.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/satisfiability.h"
#include "query/equality_graph.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "support/status_macros.h"

namespace oocq {

StatusOr<State> BuildCanonicalWitnessState(const Schema& schema,
                                           const ConjunctiveQuery& query) {
  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, query));
  if (!query.IsTerminal(schema)) {
    return Status::FailedPrecondition(
        "BuildCanonicalWitnessState requires a terminal query");
  }
  SatisfiabilityResult sat = CheckSatisfiable(schema, query);
  if (!sat.satisfiable) {
    return Status::FailedPrecondition("query is unsatisfiable: " + sat.reason);
  }

  EqualityGraph graph = EqualityGraph::Build(query);
  State state(&schema);

  // Constant bindings pin their class to one specific primitive object.
  std::map<TermId, ConstantValue> bound;
  std::set<int64_t> taken_ints;
  std::set<double> taken_reals;
  std::set<std::string> taken_strings;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kConstant) {
      bound.emplace(graph.Find(graph.VarNode(atom.var())), atom.constant());
      if (const int64_t* i = std::get_if<int64_t>(&atom.constant())) {
        taken_ints.insert(*i);
      } else if (const double* d = std::get_if<double>(&atom.constant())) {
        taken_reals.insert(*d);
      } else {
        taken_strings.insert(std::get<std::string>(atom.constant()));
      }
    }
  }

  // One object per variable equivalence class. Unbound primitive classes
  // receive fresh interned values so distinct classes stay distinct.
  std::map<TermId, Oid> object_of;
  int64_t fresh = 0;
  for (TermId rep : graph.ClassRepresentatives()) {
    const std::vector<VarId>& vars = graph.ClassVariables(rep);
    if (vars.empty()) continue;
    ClassId cls = query.RangeClassOf(vars.front());
    Oid oid = kInvalidOid;
    auto constant = bound.find(rep);
    if (constant != bound.end()) {
      const ConstantValue& value = constant->second;
      if (const int64_t* i = std::get_if<int64_t>(&value)) {
        oid = state.InternInt(*i);
      } else if (const double* d = std::get_if<double>(&value)) {
        oid = state.InternReal(*d);
      } else {
        oid = state.InternString(std::get<std::string>(value));
      }
    } else if (cls == kIntClassId) {
      while (taken_ints.count(fresh) > 0) ++fresh;
      oid = state.InternInt(fresh++);
    } else if (cls == kRealClassId) {
      double candidate = static_cast<double>(fresh++) + 0.25;
      while (taken_reals.count(candidate) > 0) candidate += 1.0;
      oid = state.InternReal(candidate);
    } else if (cls == kStringClassId) {
      std::string candidate;
      do {
        candidate = "_w" + std::to_string(fresh++);
      } while (taken_strings.count(candidate) > 0);
      oid = state.InternString(candidate);
    } else {
      OOCQ_ASSIGN_OR_RETURN(oid, state.AddObject(cls));
    }
    object_of[rep] = oid;
  }

  // Object attribute slots: x.A denotes the object of [x.A].
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    const Term& term = graph.term(t);
    if (!term.is_attribute() || !graph.IsObjectTerm(t)) continue;
    Oid owner = object_of.at(graph.Find(graph.VarNode(term.var)));
    Oid target = object_of.at(graph.Find(t));
    OOCQ_RETURN_IF_ERROR(state.SetAttribute(owner, term.attr, Value::Ref(target)));
  }

  // Set slots: empty set for every set term, then the derivable members.
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    const Term& term = graph.term(t);
    if (!term.is_attribute() || !graph.IsSetTerm(t)) continue;
    Oid owner = object_of.at(graph.Find(graph.VarNode(term.var)));
    OOCQ_RETURN_IF_ERROR(state.SetAttribute(owner, term.attr, Value::Set({})));
  }
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() != AtomKind::kMembership) continue;
    Oid owner = object_of.at(graph.Find(graph.VarNode(atom.set_term().var)));
    Oid member = object_of.at(graph.Find(graph.VarNode(atom.var())));
    Value slot = *state.GetAttribute(owner, atom.set_term().attr);
    slot.Insert(member);
    OOCQ_RETURN_IF_ERROR(state.SetAttribute(owner, atom.set_term().attr,
                                            std::move(slot)));
  }

  Status legal = state.Validate();
  if (!legal.ok()) {
    return Status::Internal(
        "canonical witness state fails legality (satisfiability bug): " +
        legal.ToString());
  }
  return state;
}

StatusOr<std::optional<State>> FindContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, const WitnessSearchOptions& options) {
  auto refutes = [&](const State& state) -> StatusOr<bool> {
    OOCQ_ASSIGN_OR_RETURN(std::vector<Oid> a1, Evaluate(state, q1));
    OOCQ_ASSIGN_OR_RETURN(std::vector<Oid> a2, Evaluate(state, q2));
    return !std::includes(a2.begin(), a2.end(), a1.begin(), a1.end());
  };

  if (CheckSatisfiable(schema, q1).satisfiable) {
    OOCQ_ASSIGN_OR_RETURN(State canonical,
                          BuildCanonicalWitnessState(schema, q1));
    OOCQ_ASSIGN_OR_RETURN(bool found, refutes(canonical));
    if (found) return std::optional<State>(std::move(canonical));
  }

  for (uint32_t trial = 0; trial < options.max_trials; ++trial) {
    GeneratorParams params = options.base;
    params.seed = options.base.seed + trial;
    params.objects_per_class = options.base.objects_per_class + trial / 4;
    State state = GenerateRandomState(schema, params);
    OOCQ_ASSIGN_OR_RETURN(bool found, refutes(state));
    if (found) return std::optional<State>(std::move(state));
  }
  return std::optional<State>();
}

}  // namespace oocq
