#ifndef OOCQ_STATE_EVAL_INTERNAL_H_
#define OOCQ_STATE_EVAL_INTERNAL_H_

// Shared 3-valued-logic atom evaluation for the two evaluators
// (state/evaluation.cc and state/indexed_evaluation.cc). Internal header;
// not part of the public API.

#include <optional>
#include <vector>

#include "query/atom.h"
#include "state/evaluation.h"
#include "state/state.h"

namespace oocq {
class StateIndex;
}  // namespace oocq

namespace oocq::eval_internal {

/// The shared compiled fast path of Evaluate/EvaluateIndexed: compiles
/// (or reuses options.program) and runs the register VM. Sets *taken to
/// false — and returns a meaningless empty vector — when the caller must
/// run its own interpreted search instead: compilation disabled, the
/// query shape unsupported, or the compile/exec failpoint forcing a
/// bailout. When *taken is true the result (answers or a genuine VM
/// error such as cancellation) is final and must not fall back.
/// Defined in evaluation.cc.
StatusOr<std::vector<Oid>> TryCompiledEvaluate(const State& state,
                                               const StateIndex* index,
                                               const ConjunctiveQuery& query,
                                               const EvalOptions& options,
                                               bool* taken);

/// Three-valued truth.
enum class Truth { kTrue, kFalse, kUnknown };

/// Evaluates a term to an object, if it denotes one: nullopt when the
/// value is Λ, the attribute is inapplicable, or the slot holds a set.
inline std::optional<Oid> EvalObjectTerm(const State& state,
                                         const std::vector<Oid>& assignment,
                                         const Term& term) {
  Oid base = assignment[term.var];
  if (!term.is_attribute()) return base;
  const Value* value = state.GetAttribute(base, term.attr);
  if (value == nullptr || value->kind() != Value::Kind::kRef) {
    return std::nullopt;
  }
  return value->ref();
}

/// Truth value of one atom under a (fully bound, for this atom)
/// assignment, per the paper's 3-valued logic.
inline Truth EvalAtom(const State& state, const std::vector<Oid>& assignment,
                      const Atom& atom) {
  switch (atom.kind()) {
    case AtomKind::kRange: {
      Oid oid = assignment[atom.var()];
      for (ClassId c : atom.classes()) {
        if (state.IsMember(oid, c)) return Truth::kTrue;
      }
      return Truth::kFalse;
    }
    case AtomKind::kNonRange: {
      Oid oid = assignment[atom.var()];
      for (ClassId c : atom.classes()) {
        if (state.IsMember(oid, c)) return Truth::kFalse;
      }
      return Truth::kTrue;
    }
    case AtomKind::kEquality:
    case AtomKind::kInequality: {
      std::optional<Oid> lhs = EvalObjectTerm(state, assignment, atom.lhs());
      std::optional<Oid> rhs = EvalObjectTerm(state, assignment, atom.rhs());
      if (!lhs.has_value() || !rhs.has_value()) return Truth::kUnknown;
      bool equal = *lhs == *rhs;
      if (atom.kind() == AtomKind::kEquality) {
        return equal ? Truth::kTrue : Truth::kFalse;
      }
      return equal ? Truth::kFalse : Truth::kTrue;
    }
    case AtomKind::kMembership:
    case AtomKind::kNonMembership: {
      Oid element = assignment[atom.var()];
      const Value* value = state.GetAttribute(
          assignment[atom.set_term().var], atom.set_term().attr);
      if (value == nullptr || value->kind() != Value::Kind::kSet) {
        return Truth::kUnknown;  // Λ or inapplicable/object-typed slot.
      }
      bool member = value->Contains(element);
      if (atom.kind() == AtomKind::kMembership) {
        return member ? Truth::kTrue : Truth::kFalse;
      }
      return member ? Truth::kFalse : Truth::kTrue;
    }
    case AtomKind::kConstant: {
      // True iff the bound object is the primitive with this payload.
      const State::Payload& payload = state.payload(assignment[atom.var()]);
      const ConstantValue& wanted = atom.constant();
      if (const int64_t* i = std::get_if<int64_t>(&payload)) {
        const int64_t* w = std::get_if<int64_t>(&wanted);
        return w != nullptr && *w == *i ? Truth::kTrue : Truth::kFalse;
      }
      if (const double* d = std::get_if<double>(&payload)) {
        const double* w = std::get_if<double>(&wanted);
        return w != nullptr && *w == *d ? Truth::kTrue : Truth::kFalse;
      }
      if (const std::string* s = std::get_if<std::string>(&payload)) {
        const std::string* w = std::get_if<std::string>(&wanted);
        return w != nullptr && *w == *s ? Truth::kTrue : Truth::kFalse;
      }
      return Truth::kFalse;  // A user object never equals a literal.
    }
  }
  return Truth::kUnknown;
}

}  // namespace oocq::eval_internal

#endif  // OOCQ_STATE_EVAL_INTERNAL_H_
