#ifndef OOCQ_STATE_EVALUATION_H_
#define OOCQ_STATE_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "state/state.h"
#include "support/cancellation.h"
#include "support/status.h"

namespace oocq::compile {
struct CompiledQuery;
}  // namespace oocq::compile

namespace oocq {

/// Guards and strategy knobs for the evaluator.
struct EvalOptions {
  uint64_t max_assignments = 100'000'000;
  /// Bind variables in ascending candidate-extent order (a greedy join
  /// order) instead of declaration order. Answers are identical; the
  /// bench_evaluation ablation measures the work saved.
  bool reorder_variables = true;
  /// Compile the query to bytecode and run the register VM
  /// (src/compile/) instead of the tree walker. Answers and status codes
  /// are identical (pinned by tests/compile_differential_test.cc); any
  /// unsupported construct falls back to the tree walker silently. The
  /// fast path only engages when no EvalStats sink is passed — the stats
  /// fields describe tree-walker work and keep their exact meaning.
  bool enable_compilation = true;
  /// Cooperative cancellation, polled at entry and every 4096 bindings by
  /// both the tree walker and the VM. Not owned; null disables polling.
  const CancellationToken* cancel = nullptr;
  /// Pre-compiled program for this exact query (e.g. from a session
  /// ProgramCache), sparing the per-call compile. Ignored when
  /// enable_compilation is false. Not owned.
  const compile::CompiledQuery* program = nullptr;
};

/// Work counters (bench E7 compares these between the original and the
/// minimized query — the "variable search space" the paper minimizes).
struct EvalStats {
  /// Candidate objects enumerated across all variables (backtracking
  /// extensions tried).
  uint64_t assignments_tried = 0;
  /// Sum over variables of the candidate extent sizes (the static search
  /// space the paper's cost metric models).
  uint64_t candidate_pool = 0;
};

/// Evaluates a well-formed conjunctive query on a state under the paper's
/// 3-valued logic (DESIGN.md §3(3)):
///  - each variable ranges over the active-domain extent of its range
///    atom's class disjunction;
///  - an atom whose operand evaluates to Λ (or to an inapplicable
///    attribute) has truth value *unknown*;
///  - an assignment contributes its free-variable object iff every atom of
///    the matrix evaluates to *true*.
/// Returns the sorted, deduplicated answer set Q(s).
StatusOr<std::vector<Oid>> Evaluate(const State& state,
                                    const ConjunctiveQuery& query,
                                    const EvalOptions& options = {},
                                    EvalStats* stats = nullptr);

/// The union of the disjuncts' answers, sorted and deduplicated.
StatusOr<std::vector<Oid>> EvaluateUnion(const State& state,
                                         const UnionQuery& query,
                                         const EvalOptions& options = {},
                                         EvalStats* stats = nullptr);

}  // namespace oocq

#endif  // OOCQ_STATE_EVALUATION_H_
