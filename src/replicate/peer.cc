#include "replicate/peer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/failpoint.h"

namespace oocq::replicate {

bool SplitHostPort(const std::string& address, std::string* host,
                   uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  unsigned long parsed = std::strtoul(address.c_str() + colon + 1, nullptr, 10);
  if (parsed == 0 || parsed > 65535) return false;
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

int DialPeer(const std::string& host, uint16_t port,
             uint32_t rcv_timeout_ms) {
  const std::string label = host + ":" + std::to_string(port);
  if (!Failpoints::HitLabeled("net/partition", label)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  timeval timeout{};
  timeout.tv_sec = rcv_timeout_ms / 1000;
  timeout.tv_usec = static_cast<suseconds_t>((rcv_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Status ReadWireReply(int fd, std::string* buffer, WireReply* reply) {
  reply->status.clear();
  reply->payload.clear();
  bool have_status = false;
  while (true) {
    size_t nl;
    while ((nl = buffer->find('\n')) != std::string::npos) {
      std::string line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!have_status) {
        reply->status = std::move(line);
        have_status = true;
        continue;
      }
      if (line == ".") return Status::Ok();
      if (!line.empty() && line[0] == '.') line.erase(0, 1);
      reply->payload.push_back(std::move(line));
    }
    char chunk[16384];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("peer read timed out");
      }
      return Status::Unavailable(std::string("peer read failed: ") +
                                 std::strerror(errno));
    }
    if (got == 0) return Status::Unavailable("peer closed the connection");
    buffer->append(chunk, static_cast<size_t>(got));
  }
}

uint64_t FieldUint(const std::string& status, const std::string& key) {
  const std::string needle = " " + key + "=";
  size_t at = status.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(status.c_str() + at + needle.size(), nullptr, 10);
}

std::string FieldString(const std::string& status, const std::string& key) {
  const std::string needle = " " + key + "=";
  size_t at = status.find(needle);
  if (at == std::string::npos) return std::string();
  size_t start = at + needle.size();
  size_t end = status.find(' ', start);
  return status.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
}

bool ReplyOk(const WireReply& reply) {
  return reply.status.rfind("OK", 0) == 0 &&
         (reply.status.size() == 2 || reply.status[2] == ' ');
}

bool ReplyFailedPrecondition(const WireReply& reply) {
  return reply.status.rfind("ERR FAILED_PRECONDITION", 0) == 0;
}

}  // namespace oocq::replicate
