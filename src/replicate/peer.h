#ifndef OOCQ_REPLICATE_PEER_H_
#define OOCQ_REPLICATE_PEER_H_

/// Client-side plumbing for talking to an oocq server as a *peer*:
/// blocking dial with a receive timeout, whole-reply reads of the
/// dot-stuffed line protocol, and field extraction off reply status
/// lines. Shared by the follower tail (replicate/follower.cc), the
/// fencing sweep (replicate/fence.h), and the session router's prober
/// (examples/oocq_route.cpp) so all three speak the wire identically.
///
/// Every dial funnels through the `net/partition` failpoint labeled
/// with the peer's "host:port", which is how chaos tests black-hole a
/// specific peer without killing its process (docs/robustness.md).

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace oocq::replicate {

/// One "."-terminated reply: the status line plus dot-unstuffed payload.
struct WireReply {
  std::string status;
  std::vector<std::string> payload;
};

/// Splits "host:port" (port 1..65535). False on malformed input.
bool SplitHostPort(const std::string& address, std::string* host,
                   uint16_t* port);

/// Dials host:port (blocking connect) and sets SO_RCVTIMEO so a peer
/// that stops answering — partition, wedged process — can never hang
/// the caller past `rcv_timeout_ms`. Checks the `net/partition`
/// failpoint labeled "host:port" first; an armed partition makes the
/// dial fail exactly like an unreachable host. Returns -1 on failure.
int DialPeer(const std::string& host, uint16_t port, uint32_t rcv_timeout_ms);

/// Sends the whole buffer; false on a closed or failing socket.
bool SendAll(int fd, const std::string& data);

/// Reads one full reply into `reply`, buffering partial reads across
/// calls in `buffer`. kUnavailable on timeout, reset, or close.
Status ReadWireReply(int fd, std::string* buffer, WireReply* reply);

/// "key=value" numeric fields off a reply status line
/// ("OK next=42 epoch=1 ..."). 0 when absent.
uint64_t FieldUint(const std::string& status, const std::string& key);

/// String-valued fields ("OK role=primary ..."). Empty when absent.
std::string FieldString(const std::string& status, const std::string& key);

bool ReplyOk(const WireReply& reply);
bool ReplyFailedPrecondition(const WireReply& reply);

}  // namespace oocq::replicate

#endif  // OOCQ_REPLICATE_PEER_H_
