#include "replicate/follower.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "replicate/wire.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/status_macros.h"

namespace oocq::replicate {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

int DialPrimary(const std::string& host, uint16_t port,
                uint32_t rcv_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  // A primary that stops answering (partition, wedged process) must not
  // hang the tail forever: reads give up after the long-poll window plus
  // generous slack, and the loop reconnects (or auto-promotes).
  timeval timeout{};
  timeout.tv_sec = rcv_timeout_ms / 1000;
  timeout.tv_usec = static_cast<suseconds_t>((rcv_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One "."-terminated reply: the status line plus dot-unstuffed payload.
struct WireReply {
  std::string status;
  std::vector<std::string> payload;
};

Status ReadWireReply(int fd, std::string* buffer, WireReply* reply) {
  reply->status.clear();
  reply->payload.clear();
  bool have_status = false;
  while (true) {
    size_t nl;
    while ((nl = buffer->find('\n')) != std::string::npos) {
      std::string line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!have_status) {
        reply->status = std::move(line);
        have_status = true;
        continue;
      }
      if (line == ".") return Status::Ok();
      if (!line.empty() && line[0] == '.') line.erase(0, 1);
      reply->payload.push_back(std::move(line));
    }
    char chunk[16384];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("primary read timed out");
      }
      return Status::Unavailable(std::string("primary read failed: ") +
                                 std::strerror(errno));
    }
    if (got == 0) return Status::Unavailable("primary closed the connection");
    buffer->append(chunk, static_cast<size_t>(got));
  }
}

/// "key=value" fields off a reply status line ("OK next=42 epoch=1 ...").
uint64_t FieldUint(const std::string& status, const std::string& key) {
  const std::string needle = " " + key + "=";
  size_t at = status.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(status.c_str() + at + needle.size(), nullptr, 10);
}

bool ReplyOk(const WireReply& reply) {
  return reply.status.rfind("OK", 0) == 0 &&
         (reply.status.size() == 2 || reply.status[2] == ' ');
}

bool ReplyFailedPrecondition(const WireReply& reply) {
  return reply.status.rfind("ERR FAILED_PRECONDITION", 0) == 0;
}

}  // namespace

Follower::Follower(server::OocqService* service, FollowerOptions options)
    : service_(service), options_(std::move(options)) {}

Follower::~Follower() { Stop(); }

void Follower::Start() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  service_->SetReplicationProbe([this] { return Health(); });
  thread_ = std::thread([this] { Loop(); });
}

void Follower::Stop() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_ = false;
  // The probe captures `this`; keep it installed only while the follower
  // lives. After Stop() the service reports no replication telemetry.
  service_->SetReplicationProbe(nullptr);
}

server::ReplicationHealth Follower::Health() const {
  server::ReplicationHealth health;
  health.present = true;
  health.role = service_->read_only() ? "follower" : "primary";
  health.connected = connected();
  health.lag_records = lag_records();
  health.applied_records = applied_records();
  health.epoch = epoch();
  return health;
}

bool Follower::ShouldRun() const {
  // Promotion through any path ends the tail: a primary does not follow.
  return !stop_.load(std::memory_order_relaxed) && service_->read_only();
}

void Follower::Loop() {
  uint64_t backoff_ms = options_.backoff_ms;
  while (ShouldRun()) {
    const int64_t contact_before =
        last_contact_ms_.load(std::memory_order_relaxed);
    Status run = RunConnection();
    connected_.store(false, std::memory_order_relaxed);
    if (!ShouldRun()) break;
    const int64_t last_contact =
        last_contact_ms_.load(std::memory_order_relaxed);
    if (last_contact != contact_before || run.ok()) {
      backoff_ms = options_.backoff_ms;
    }
    OOCQ_LOG(Warn, "repl")
        .Msg("primary connection lost; backing off")
        .With("error", run.ToString())
        .With("backoff_ms", backoff_ms);
    service_->metrics_registry()->Add("repl/reconnects", 1);
    if (options_.auto_promote_after_ms > 0 && last_contact != 0 &&
        NowMs() - last_contact >=
            static_cast<int64_t>(options_.auto_promote_after_ms)) {
      OOCQ_LOG(Warn, "repl")
          .Msg("primary unreachable past threshold; self-promoting")
          .With("threshold_ms",
                static_cast<uint64_t>(options_.auto_promote_after_ms));
      (void)service_->Promote();
      break;
    }
    // Backoff in small slices so Stop() and promotion stay responsive.
    Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(backoff_ms);
    while (ShouldRun() && Clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    backoff_ms = std::min<uint64_t>(backoff_ms * 2, options_.backoff_cap_ms);
  }
  connected_.store(false, std::memory_order_relaxed);
}

Status Follower::RunConnection() {
  const uint32_t rcv_timeout_ms = options_.poll_wait_ms + 5000;
  int fd = DialPrimary(options_.host, options_.port, rcv_timeout_ms);
  if (fd < 0) {
    return Status::Unavailable("connect to primary " + options_.host + ":" +
                               std::to_string(options_.port) + " failed");
  }
  std::string buffer;
  Status result = [&]() -> Status {
    // Handshake: the primary must speak our protocol revision and
    // advertise the `replication` capability (docs/server.md#caps).
    if (!SendAll(fd, "HELLO 1\n")) {
      return Status::Unavailable("primary send failed");
    }
    WireReply hello;
    OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, &buffer, &hello));
    if (!ReplyOk(hello)) {
      return Status::FailedPrecondition("primary refused HELLO: " +
                                        hello.status);
    }
    if (hello.status.find("replication") == std::string::npos) {
      return Status::FailedPrecondition(
          "primary does not advertise the replication capability");
    }
    connected_.store(true, std::memory_order_relaxed);
    last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
    while (ShouldRun()) {
      if (!synced_) {
        OOCQ_RETURN_IF_ERROR(Resync(fd, &buffer));
      }
      Status polled = PollOnce(fd, &buffer);
      if (!polled.ok()) {
        if (polled.code() == StatusCode::kFailedPrecondition) {
          // The primary compacted past our offset (or our cursor is from
          // an older epoch): stream anew from a positioned dump, on this
          // same connection.
          OOCQ_LOG(Info, "repl")
              .Msg("stream position invalidated; resyncing")
              .With("reason", polled.ToString());
          synced_ = false;
          continue;
        }
        return polled;
      }
    }
    return Status::Ok();
  }();
  ::close(fd);
  return result;
}

Status Follower::Resync(int fd, std::string* buffer) {
  if (!SendAll(fd, "REPL STATE\n")) {
    return Status::Unavailable("primary send failed");
  }
  WireReply reply;
  OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, buffer, &reply));
  if (!ReplyOk(reply)) {
    return Status::Internal("REPL STATE refused: " + reply.status);
  }
  // Stale local sessions (missed drops while disconnected, or a cold
  // local catalog diverged from the primary) go first; the dump then
  // rebuilds the registry through the same idempotent path. Both the
  // drops and the dump records land in the local WAL via
  // ApplyReplicated, so a crash mid-resync recovers consistently.
  for (const std::string& id : service_->SessionIds()) {
    persist::Record drop;
    drop.type = persist::RecordType::kDropSession;
    drop.session_id = id;
    OOCQ_RETURN_IF_ERROR(service_->ApplyReplicated(drop));
  }
  size_t skipped = 0;
  for (const std::string& line : reply.payload) {
    StatusOr<ShippedRecord> shipped = DecodeShippedLine(line);
    if (!shipped.ok()) return shipped.status();
    if (!service_->ApplyReplicated(shipped->record).ok()) ++skipped;
  }
  if (skipped != 0) {
    service_->metrics_registry()->Add("repl/apply_skipped", skipped);
  }
  epoch_.store(FieldUint(reply.status, "epoch"), std::memory_order_relaxed);
  next_offset_ = FieldUint(reply.status, "offset");
  applied_seq_.store(FieldUint(reply.status, "seq"), std::memory_order_relaxed);
  lag_records_.store(0, std::memory_order_relaxed);
  synced_ = true;
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  service_->metrics_registry()->Add("repl/resyncs", 1);
  OOCQ_LOG(Info, "repl")
      .Msg("resynced from positioned dump")
      .With("records", reply.payload.size())
      .With("epoch", epoch_.load(std::memory_order_relaxed))
      .With("offset", next_offset_);
  return Status::Ok();
}

Status Follower::PollOnce(int fd, std::string* buffer) {
  std::string request =
      "REPL SUBSCRIBE " +
      std::to_string(epoch_.load(std::memory_order_relaxed)) + " " +
      std::to_string(next_offset_) +
      " wait_ms=" + std::to_string(options_.poll_wait_ms);
  if (options_.max_batch_bytes != 0) {
    request += " max_bytes=" + std::to_string(options_.max_batch_bytes);
  }
  request += "\n";
  if (!SendAll(fd, request)) {
    return Status::Unavailable("primary send failed");
  }
  WireReply reply;
  OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, buffer, &reply));
  if (ReplyFailedPrecondition(reply)) {
    return Status::FailedPrecondition(reply.status);
  }
  if (!ReplyOk(reply)) {
    return Status::Internal("REPL SUBSCRIBE refused: " + reply.status);
  }
  size_t skipped = 0;
  for (const std::string& line : reply.payload) {
    StatusOr<ShippedRecord> shipped = DecodeShippedLine(line);
    if (!shipped.ok()) return shipped.status();
    Status applied = service_->ApplyReplicated(shipped->record);
    if (!applied.ok()) {
      // Same contract as recovery (docs/persistence.md): a record that
      // no longer applies is skipped and counted, never fatal.
      ++skipped;
    }
    applied_records_.fetch_add(1, std::memory_order_relaxed);
    applied_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  if (skipped != 0) {
    service_->metrics_registry()->Add("repl/apply_skipped", skipped);
  }
  next_offset_ = FieldUint(reply.status, "next");
  const uint64_t tip_seq = FieldUint(reply.status, "tip_seq");
  const uint64_t applied = applied_seq_.load(std::memory_order_relaxed);
  lag_records_.store(tip_seq > applied ? tip_seq - applied : 0,
                     std::memory_order_relaxed);
  last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
  service_->metrics_registry()->Add("repl/polls", 1);
  return Status::Ok();
}

}  // namespace oocq::replicate
