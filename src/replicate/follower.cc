#include "replicate/follower.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <utility>
#include <vector>

#include "replicate/peer.h"
#include "replicate/wire.h"
#include "support/failpoint.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/status_macros.h"

namespace oocq::replicate {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// ±50% jitter, same distribution as the retrying client: a fleet of
/// followers reconnecting to a restarted primary must not synchronize
/// into lock-step thundering herds.
uint64_t Jittered(uint64_t base_ms) {
  if (base_ms == 0) return 0;
  static thread_local std::mt19937_64 rng{std::random_device{}()};
  std::uniform_int_distribution<uint64_t> dist(base_ms / 2,
                                               base_ms + base_ms / 2);
  return dist(rng);
}

}  // namespace

Follower::Follower(server::OocqService* service, FollowerOptions options)
    : service_(service), options_(std::move(options)) {}

Follower::~Follower() { Stop(); }

void Follower::Start() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  service_->SetReplicationProbe([this] { return Health(); });
  thread_ = std::thread([this] { Loop(); });
}

void Follower::Stop() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_ = false;
  // The probe captures `this`; keep it installed only while the follower
  // lives. After Stop() the service reports no replication telemetry.
  service_->SetReplicationProbe(nullptr);
}

server::ReplicationHealth Follower::Health() const {
  server::ReplicationHealth health;
  health.present = true;
  health.role = service_->read_only() ? "follower" : "primary";
  health.connected = connected();
  health.lag_records = lag_records();
  health.applied_records = applied_records();
  health.epoch = epoch();
  health.term = service_->term();
  return health;
}

bool Follower::ShouldRun() const {
  // Promotion through any path ends the tail: a primary does not follow.
  return !stop_.load(std::memory_order_relaxed) && service_->read_only();
}

void Follower::Loop() {
  uint64_t backoff_ms = options_.backoff_ms;
  while (ShouldRun()) {
    const int64_t contact_before =
        last_contact_ms_.load(std::memory_order_relaxed);
    Status run = RunConnection();
    connected_.store(false, std::memory_order_relaxed);
    if (!ShouldRun()) break;
    const int64_t last_contact =
        last_contact_ms_.load(std::memory_order_relaxed);
    if (last_contact != contact_before || run.ok()) {
      backoff_ms = options_.backoff_ms;
    }
    OOCQ_LOG(Warn, "repl")
        .Msg("primary connection lost; backing off")
        .With("error", run.ToString())
        .With("backoff_ms", backoff_ms);
    service_->metrics_registry()->Add("repl/reconnects", 1);
    if (options_.auto_promote_after_ms > 0 && last_contact != 0 &&
        NowMs() - last_contact >=
            static_cast<int64_t>(options_.auto_promote_after_ms)) {
      OOCQ_LOG(Warn, "repl")
          .Msg("primary unreachable past threshold; self-promoting")
          .With("threshold_ms",
                static_cast<uint64_t>(options_.auto_promote_after_ms));
      (void)service_->Promote();
      break;
    }
    // Backoff in small slices so Stop() and promotion stay responsive.
    Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(Jittered(backoff_ms));
    while (ShouldRun() && Clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    backoff_ms = std::min<uint64_t>(backoff_ms * 2, options_.backoff_cap_ms);
  }
  connected_.store(false, std::memory_order_relaxed);
}

std::string Follower::PeerLabel() const {
  return options_.host + ":" + std::to_string(options_.port);
}

Status Follower::RunConnection() {
  const uint32_t rcv_timeout_ms = options_.poll_wait_ms + 5000;
  int fd = DialPeer(options_.host, options_.port, rcv_timeout_ms);
  if (fd < 0) {
    return Status::Unavailable("connect to primary " + PeerLabel() +
                               " failed");
  }
  std::string buffer;
  Status result = [&]() -> Status {
    // Handshake: the primary must speak our protocol revision and
    // advertise the `replication` capability (docs/server.md#caps).
    if (!SendAll(fd, "HELLO 1\n")) {
      return Status::Unavailable("primary send failed");
    }
    WireReply hello;
    OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, &buffer, &hello));
    if (!ReplyOk(hello)) {
      return Status::FailedPrecondition("primary refused HELLO: " +
                                        hello.status);
    }
    if (hello.status.find("replication") == std::string::npos) {
      return Status::FailedPrecondition(
          "primary does not advertise the replication capability");
    }
    connected_.store(true, std::memory_order_relaxed);
    last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
    while (ShouldRun()) {
      if (!synced_) {
        OOCQ_RETURN_IF_ERROR(Resync(fd, &buffer));
      }
      Status polled = PollOnce(fd, &buffer);
      if (!polled.ok()) {
        if (polled.code() == StatusCode::kFailedPrecondition) {
          // The primary compacted past our offset (or our cursor is from
          // an older epoch): stream anew from a positioned dump, on this
          // same connection.
          OOCQ_LOG(Info, "repl")
              .Msg("stream position invalidated; resyncing")
              .With("reason", polled.ToString());
          synced_ = false;
          continue;
        }
        return polled;
      }
    }
    return Status::Ok();
  }();
  ::close(fd);
  return result;
}

Status Follower::Resync(int fd, std::string* buffer) {
  // A partition armed mid-stream black-holes the established connection
  // too, not just fresh dials.
  OOCQ_RETURN_IF_ERROR(Failpoints::CheckLabeled("net/partition", PeerLabel()));
  if (!SendAll(fd, "REPL STATE\n")) {
    return Status::Unavailable("primary send failed");
  }
  WireReply reply;
  OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, buffer, &reply));
  if (!ReplyOk(reply)) {
    return Status::Internal("REPL STATE refused: " + reply.status);
  }
  const uint64_t primary_term = FieldUint(reply.status, "term");
  if (primary_term != 0 && primary_term < service_->term()) {
    // This "primary" is behind the write authority we already know
    // about — refuse to clone its forked history. Not FAILED_PRECONDITION
    // (that would just resync again): drop the connection and back off.
    return Status::Unavailable(
        "primary is stale: dump carries term " +
        std::to_string(primary_term) + " but this node knows term " +
        std::to_string(service_->term()));
  }
  // Stale local sessions (missed drops while disconnected, or a cold
  // local catalog diverged from the primary) go first; the dump then
  // rebuilds the registry through the same idempotent path. Both the
  // drops and the dump records land in the local WAL via
  // ApplyReplicated, so a crash mid-resync recovers consistently.
  for (const std::string& id : service_->SessionIds()) {
    persist::Record drop;
    drop.type = persist::RecordType::kDropSession;
    drop.session_id = id;
    OOCQ_RETURN_IF_ERROR(service_->ApplyReplicated(drop));
  }
  size_t skipped = 0;
  for (const std::string& line : reply.payload) {
    StatusOr<ShippedRecord> shipped = DecodeShippedLine(line);
    if (!shipped.ok()) return shipped.status();
    if (!service_->ApplyReplicated(shipped->record, primary_term).ok()) {
      ++skipped;
    }
  }
  if (skipped != 0) {
    service_->metrics_registry()->Add("repl/apply_skipped", skipped);
  }
  epoch_.store(FieldUint(reply.status, "epoch"), std::memory_order_relaxed);
  next_offset_ = FieldUint(reply.status, "offset");
  applied_seq_.store(FieldUint(reply.status, "seq"), std::memory_order_relaxed);
  lag_records_.store(0, std::memory_order_relaxed);
  synced_ = true;
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  service_->metrics_registry()->Add("repl/resyncs", 1);
  OOCQ_LOG(Info, "repl")
      .Msg("resynced from positioned dump")
      .With("records", reply.payload.size())
      .With("epoch", epoch_.load(std::memory_order_relaxed))
      .With("offset", next_offset_)
      .With("term", primary_term);
  return Status::Ok();
}

Status Follower::PollOnce(int fd, std::string* buffer) {
  OOCQ_RETURN_IF_ERROR(Failpoints::CheckLabeled("net/partition", PeerLabel()));
  // The SUBSCRIBE carries our term: a healed stale primary fences itself
  // the moment its old follower — now ahead of it — polls it.
  std::string request =
      "REPL SUBSCRIBE " +
      std::to_string(epoch_.load(std::memory_order_relaxed)) + " " +
      std::to_string(next_offset_) +
      " wait_ms=" + std::to_string(options_.poll_wait_ms) +
      " term=" + std::to_string(service_->term());
  if (options_.max_batch_bytes != 0) {
    request += " max_bytes=" + std::to_string(options_.max_batch_bytes);
  }
  request += "\n";
  if (!SendAll(fd, request)) {
    return Status::Unavailable("primary send failed");
  }
  WireReply reply;
  OOCQ_RETURN_IF_ERROR(ReadWireReply(fd, buffer, &reply));
  if (ReplyFailedPrecondition(reply)) {
    return Status::FailedPrecondition(reply.status);
  }
  if (!ReplyOk(reply)) {
    return Status::Internal("REPL SUBSCRIBE refused: " + reply.status);
  }
  const uint64_t primary_term = FieldUint(reply.status, "term");
  if (primary_term != 0 && primary_term < service_->term()) {
    return Status::Unavailable(
        "primary is stale: batch carries term " +
        std::to_string(primary_term) + " but this node knows term " +
        std::to_string(service_->term()));
  }
  size_t skipped = 0;
  for (const std::string& line : reply.payload) {
    StatusOr<ShippedRecord> shipped = DecodeShippedLine(line);
    if (!shipped.ok()) return shipped.status();
    Status applied = service_->ApplyReplicated(shipped->record, primary_term);
    if (!applied.ok()) {
      // Same contract as recovery (docs/persistence.md): a record that
      // no longer applies is skipped and counted, never fatal.
      ++skipped;
    }
    applied_records_.fetch_add(1, std::memory_order_relaxed);
    applied_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  if (skipped != 0) {
    service_->metrics_registry()->Add("repl/apply_skipped", skipped);
  }
  next_offset_ = FieldUint(reply.status, "next");
  const uint64_t tip_seq = FieldUint(reply.status, "tip_seq");
  const uint64_t applied = applied_seq_.load(std::memory_order_relaxed);
  lag_records_.store(tip_seq > applied ? tip_seq - applied : 0,
                     std::memory_order_relaxed);
  last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
  service_->metrics_registry()->Add("repl/polls", 1);
  return Status::Ok();
}

}  // namespace oocq::replicate
