#ifndef OOCQ_REPLICATE_FOLLOWER_H_
#define OOCQ_REPLICATE_FOLLOWER_H_

/// The follower half of WAL shipping (docs/replication.md): a single
/// background thread that dials the primary over the ordinary wire
/// protocol, resyncs from a positioned dump when needed (REPL STATE),
/// then long-polls REPL SUBSCRIBE and replays every shipped record into
/// the local OocqService via ApplyReplicated() — through the same
/// idempotent-replay path recovery uses, and into this node's own WAL,
/// so replay==acked holds here exactly as on the primary.
///
/// The loop follows the stream across the primary's compactions: a
/// FAILED_PRECONDITION reply (epoch moved, offset gone) triggers a
/// resync, not an error. Connection loss retries with exponential
/// backoff; with `auto_promote_after_ms` set, a primary unreachable for
/// that long promotes this node (service->Promote()) and the loop ends.
/// Promotion through any path (REPL PROMOTE, auto) stops the tail —
/// Run() returns once the service stops being read-only.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "server/service.h"
#include "support/status.h"

namespace oocq::replicate {

struct FollowerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Long-poll window passed to REPL SUBSCRIBE: how long the primary
  /// holds an empty poll open waiting for the next group commit.
  uint32_t poll_wait_ms = 500;
  /// Batch ceiling per SUBSCRIBE round (0 = the primary's default).
  uint32_t max_batch_bytes = 256 * 1024;
  /// Reconnect backoff: doubles from `backoff_ms` to `backoff_cap_ms`,
  /// with ±50% jitter per sleep so a fleet of followers reconnecting to
  /// a restarted primary de-synchronizes.
  uint32_t backoff_ms = 100;
  uint32_t backoff_cap_ms = 2000;
  /// Self-promotion threshold: primary unreachable for this many
  /// milliseconds → Promote() the local service. 0 = never auto-promote
  /// (promotion only via REPL PROMOTE on this node).
  uint32_t auto_promote_after_ms = 0;
};

class Follower {
 public:
  /// `service` must outlive the follower and should be constructed with
  /// ServiceOptions::read_only = true and its own catalog.
  Follower(server::OocqService* service, FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Starts the tail thread and installs the service's replication
  /// probe. Idempotent.
  void Start();
  /// Signals the loop, joins the thread, detaches the probe. Idempotent.
  void Stop();

  // ---- Telemetry (read from any thread) ---------------------------------
  bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  /// Records applied since this follower started tailing.
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  /// Primary durable tip seq − locally applied seq, last time we heard.
  uint64_t lag_records() const {
    return lag_records_.load(std::memory_order_relaxed);
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Full resyncs performed (initial sync included).
  uint64_t resyncs() const {
    return resyncs_.load(std::memory_order_relaxed);
  }
  server::ReplicationHealth Health() const;

 private:
  void Loop();
  /// One connection lifetime: dial, handshake, sync, poll until error,
  /// stop, or promotion. Ok = clean exit (stop/promotion).
  Status RunConnection();
  /// Full resync over `fd`: REPL STATE, drop stale local sessions, apply
  /// the dump, position the cursor at the dump's WAL cut.
  Status Resync(int fd, std::string* buffer);
  /// One SUBSCRIBE round over `fd`; applies the batch it returns.
  Status PollOnce(int fd, std::string* buffer);
  bool ShouldRun() const;
  /// "host:port" of the primary — the `net/partition` failpoint label.
  std::string PeerLabel() const;

  server::OocqService* const service_;
  const FollowerOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex start_mu_;

  // Stream cursor (tail thread only).
  bool synced_ = false;
  uint64_t next_offset_ = 0;

  /// Milliseconds (steady clock) of the last successful exchange with
  /// the primary — handshake, resync, or poll. 0 = never reached it.
  /// The auto-promote clock measures from here, so a healthy-but-idle
  /// stream (no new records) still counts as contact.
  std::atomic<int64_t> last_contact_ms_{0};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> applied_seq_{0};  // primary-epoch-relative
  std::atomic<uint64_t> lag_records_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> resyncs_{0};
};

}  // namespace oocq::replicate

#endif  // OOCQ_REPLICATE_FOLLOWER_H_
