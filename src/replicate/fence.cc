#include "replicate/fence.h"

#include <unistd.h>

#include "replicate/peer.h"
#include "support/log.h"
#include "support/metrics.h"

namespace oocq::replicate {

PeerStatus ProbePeer(const std::string& address, uint32_t timeout_ms) {
  PeerStatus status;
  status.address = address;
  std::string host;
  uint16_t port = 0;
  if (!SplitHostPort(address, &host, &port)) return status;
  int fd = DialPeer(host, port, timeout_ms);
  if (fd < 0) return status;
  std::string buffer;
  WireReply reply;
  if (SendAll(fd, "HEALTH\n") &&
      ReadWireReply(fd, &buffer, &reply).ok() && ReplyOk(reply)) {
    status.reachable = true;
    status.role = FieldString(reply.status, "role");
    status.readonly = FieldUint(reply.status, "readonly") != 0;
    status.fenced = FieldUint(reply.status, "fenced") != 0;
    status.term = FieldUint(reply.status, "term");
    // Stream liveness/lag ride on the optional `repl:` body line.
    for (const std::string& line : reply.payload) {
      if (line.rfind("repl:", 0) != 0) continue;
      status.repl_connected = FieldUint(line, "connected") != 0;
      status.lag_records = FieldUint(line, "lag_records");
    }
  }
  (void)SendAll(fd, "QUIT\n");
  ::close(fd);
  return status;
}

std::string PickWinner(const std::vector<PeerStatus>& peers) {
  const PeerStatus* winner = nullptr;
  for (const PeerStatus& peer : peers) {
    if (!peer.reachable || peer.readonly) continue;
    if (winner == nullptr || peer.term > winner->term ||
        (peer.term == winner->term && peer.address > winner->address)) {
      winner = &peer;
    }
  }
  return winner == nullptr ? std::string() : winner->address;
}

size_t FenceStalePrimaries(const std::vector<PeerStatus>& peers,
                           const std::string& winner, uint64_t winner_term,
                           uint32_t timeout_ms) {
  size_t demoted = 0;
  for (const PeerStatus& peer : peers) {
    if (!peer.reachable || peer.readonly || peer.address == winner) continue;
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(peer.address, &host, &port)) continue;
    int fd = DialPeer(host, port, timeout_ms);
    if (fd < 0) continue;
    std::string buffer;
    WireReply reply;
    const std::string demote = "REPL DEMOTE " + std::to_string(winner_term) +
                               " primary=" + winner + "\n";
    if (SendAll(fd, demote) && ReadWireReply(fd, &buffer, &reply).ok() &&
        ReplyOk(reply)) {
      ++demoted;
      MetricAdd("fence/demotions_sent", 1);
      OOCQ_LOG(Info, "fence")
          .Msg("demoted stale primary")
          .With("peer", peer.address)
          .With("peer_term", peer.term)
          .With("winner", winner)
          .With("winner_term", winner_term);
    }
    (void)SendAll(fd, "QUIT\n");
    ::close(fd);
  }
  return demoted;
}

StatusOr<std::string> ResolveSingleWriter(
    const std::vector<std::string>& addresses, uint32_t timeout_ms) {
  std::vector<PeerStatus> peers;
  peers.reserve(addresses.size());
  for (const std::string& address : addresses) {
    peers.push_back(ProbePeer(address, timeout_ms));
  }
  const std::string winner = PickWinner(peers);
  if (winner.empty()) {
    return Status::Unavailable("no writable primary reachable");
  }
  uint64_t winner_term = 0;
  for (const PeerStatus& peer : peers) {
    if (peer.address == winner) winner_term = peer.term;
  }
  (void)FenceStalePrimaries(peers, winner, winner_term, timeout_ms);
  return winner;
}

}  // namespace oocq::replicate
