#include "replicate/wire.h"

#include <cstdlib>

#include "support/status_macros.h"

namespace oocq::replicate {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(std::string_view data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out += kHexDigits[c >> 4];
    out += kHexDigits[c & 0xf];
  }
  return out;
}

StatusOr<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex digit in hex string");
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string EncodeShippedRecord(uint64_t offset, std::string_view frame) {
  return "R " + std::to_string(offset) + " " + HexEncode(frame);
}

std::string EncodeDumpRecord(const persist::Record& record) {
  std::string frame;
  persist::EncodeRecord(record, &frame);
  return "D " + HexEncode(frame);
}

StatusOr<ShippedRecord> DecodeShippedLine(const std::string& line) {
  ShippedRecord shipped;
  size_t hex_start;
  if (line.rfind("R ", 0) == 0) {
    size_t space = line.find(' ', 2);
    if (space == std::string::npos) {
      return Status::Internal("shipped line missing offset: " + line);
    }
    shipped.offset =
        std::strtoull(line.substr(2, space - 2).c_str(), nullptr, 10);
    hex_start = space + 1;
  } else if (line.rfind("D ", 0) == 0) {
    hex_start = 2;
  } else {
    return Status::Internal("shipped line has unknown tag: " +
                            line.substr(0, 16));
  }
  OOCQ_ASSIGN_OR_RETURN(std::string frame,
                        HexDecode(std::string_view(line).substr(hex_start)));
  size_t offset = 0;
  if (persist::DecodeRecord(frame, &offset, &shipped.record) !=
          persist::DecodeResult::kOk ||
      offset != frame.size()) {
    return Status::Internal("shipped frame failed to decode (CRC or length)");
  }
  return shipped;
}

}  // namespace oocq::replicate
