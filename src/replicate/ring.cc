#include "replicate/ring.h"

namespace oocq::replicate {

ConsistentHashRing::ConsistentHashRing(uint32_t vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node < 1 ? 1 : vnodes_per_node) {}

uint64_t ConsistentHashRing::Hash(std::string_view data) {
  // FNV-1a, 64-bit: deterministic across processes (no seed), cheap, and
  // well-spread enough for ring points once each node contributes ~128
  // of them. Not cryptographic — the ring routes, it does not protect.
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

void ConsistentHashRing::AddNode(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  for (uint32_t i = 0; i < vnodes_per_node_; ++i) {
    uint64_t point = Hash(node + "#" + std::to_string(i));
    // On a collision the lexically first node keeps the point; both
    // sides resolve it identically, so routing stays deterministic.
    auto [it, inserted] = points_.emplace(point, node);
    if (!inserted && node < it->second) it->second = node;
  }
}

void ConsistentHashRing::RemoveNode(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == node) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-add surviving nodes' points that a collision may have ceded to
  // the removed node (vanishingly rare, but determinism must survive it).
  for (const std::string& survivor : nodes_) {
    for (uint32_t i = 0; i < vnodes_per_node_; ++i) {
      uint64_t point = Hash(survivor + "#" + std::to_string(i));
      auto [it, inserted] = points_.emplace(point, survivor);
      if (!inserted && survivor < it->second) it->second = survivor;
    }
  }
}

bool ConsistentHashRing::Contains(const std::string& node) const {
  return nodes_.count(node) != 0;
}

std::vector<std::string> ConsistentHashRing::Nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

std::string ConsistentHashRing::Lookup(std::string_view key) const {
  if (points_.empty()) return "";
  auto it = points_.lower_bound(Hash(key));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

}  // namespace oocq::replicate
