#ifndef OOCQ_REPLICATE_WIRE_H_
#define OOCQ_REPLICATE_WIRE_H_

/// Wire helpers shared by the two ends of the WAL shipping stream
/// (docs/replication.md): the primary's REPL verbs (server/protocol.cc)
/// and the follower's tail loop (replicate/follower.h).
///
/// Shipped records ride the existing dot-stuffed line protocol, one
/// payload line per record:
///
///   R <offset> <hex-frame>
///
/// where <hex-frame> is the record's encoded WAL frame, hex-encoded so a
/// schema/state text containing newlines (or a lone ".") can never break
/// framing. The frame's CRC32 travels inside the hex, so a follower
/// verifies exactly the bytes the primary fsynced — corruption anywhere
/// on the path (disk, socket, proxy) is caught by the same checksum that
/// guards local replay. Resync dumps use the same shape with a `D` tag
/// and no offset.
#include <cstdint>
#include <string>
#include <string_view>

#include "persist/codec.h"
#include "support/status.h"

namespace oocq::replicate {

/// Lower-case hex of `data` (two chars per byte).
std::string HexEncode(std::string_view data);

/// Inverse of HexEncode; odd length or a non-hex digit is
/// kInvalidArgument.
StatusOr<std::string> HexDecode(std::string_view hex);

/// Renders one shipped-record payload line (no trailing newline):
/// "R <offset> <hex-frame>".
std::string EncodeShippedRecord(uint64_t offset, std::string_view frame);

/// Renders one resync-dump payload line: "D <hex-frame>". The frame is
/// a full WAL-format frame encoded from `record`.
std::string EncodeDumpRecord(const persist::Record& record);

/// One parsed payload line of a REPL SUBSCRIBE / REPL STATE reply.
struct ShippedRecord {
  uint64_t offset = 0;  // 0 for dump ('D') lines
  persist::Record record;
};

/// Parses a payload line ("R <offset> <hex>" or "D <hex>"), decoding and
/// CRC-checking the frame. Anything malformed is kInternal — the
/// follower treats it as a broken stream and reconnects.
StatusOr<ShippedRecord> DecodeShippedLine(const std::string& line);

}  // namespace oocq::replicate

#endif  // OOCQ_REPLICATE_WIRE_H_
