#ifndef OOCQ_REPLICATE_RING_H_
#define OOCQ_REPLICATE_RING_H_

/// Consistent-hash ring for session routing (docs/replication.md#router).
///
/// Each node is placed at `vnodes_per_node` pseudo-random points on a
/// 64-bit ring; a key is owned by the first node point at or clockwise
/// of its hash. Virtual nodes smooth the load split (the per-node share
/// concentrates around 1/N), and the clockwise-successor rule gives the
/// property the router relies on: removing a node remaps only the keys
/// that node owned, and adding one steals roughly 1/(N+1) of each
/// existing node's keys — every other session keeps its primary, so a
/// topology change never stampedes the whole fleet through resync.
///
/// The hash is deterministic (FNV-1a, no per-process seed), so every
/// router instance — and any client doing its own routing — maps a
/// session to the same node. Not internally synchronized: callers that
/// mutate the ring while looking up hold their own lock (oocq_route
/// guards it with one mutex; lookups are O(log nodes·vnodes)).
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace oocq::replicate {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(uint32_t vnodes_per_node = 128);

  /// Places `node` (an opaque label, typically "host:port") on the ring.
  /// Re-adding a present node is a no-op.
  void AddNode(const std::string& node);
  /// Removes every point of `node`; absent nodes are a no-op.
  void RemoveNode(const std::string& node);
  bool Contains(const std::string& node) const;

  bool empty() const { return nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  /// The registered node labels, sorted.
  std::vector<std::string> Nodes() const;

  /// The node owning `key`, or "" when the ring is empty.
  std::string Lookup(std::string_view key) const;

  /// The stable 64-bit key/point hash the ring is built on (FNV-1a).
  static uint64_t Hash(std::string_view data);

 private:
  const uint32_t vnodes_per_node_;
  std::map<uint64_t, std::string> points_;  // ring position → node
  std::set<std::string> nodes_;
};

}  // namespace oocq::replicate

#endif  // OOCQ_REPLICATE_RING_H_
