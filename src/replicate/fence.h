#ifndef OOCQ_REPLICATE_FENCE_H_
#define OOCQ_REPLICATE_FENCE_H_

/// The fencing sweep (docs/replication.md#fencing): probe a set of
/// backends, pick the single legitimate writer, and demote everyone
/// else. This is how dueling promotions converge — two followers that
/// both self-promoted during a partition end up as same-term primaries,
/// and neither knows the other exists; any party that can see both (the
/// session router's prober, an operator script, a test) resolves the
/// duel deterministically:
///
///   winner = max by (term, address) over reachable writable primaries
///
/// and every other writable primary receives `REPL DEMOTE <term>
/// primary=<winner>`, which fences it (read-only + "fenced term=N"
/// refusals) and hands it the address to rejoin as a follower of.
/// Higher term always wins; the address is only the tie-break, so the
/// outcome is identical no matter which router instance runs the sweep.

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace oocq::replicate {

/// One probed backend, parsed from its HEALTH fields line.
struct PeerStatus {
  std::string address;       // "host:port" as probed
  bool reachable = false;    // dialed and answered HEALTH
  std::string role;          // "primary" | "follower" | "" (unreachable)
  bool readonly = true;
  bool fenced = false;
  uint64_t term = 0;
  bool repl_connected = false;  // follower: stream to its primary is up
  uint64_t lag_records = 0;     // follower: records behind its primary
};

/// Probes `address` with one HEALTH round trip over a fresh connection
/// (subject to the `net/partition` failpoint). Never fails: an
/// unreachable peer comes back with reachable=false.
PeerStatus ProbePeer(const std::string& address, uint32_t timeout_ms);

/// The deterministic winner among reachable writable primaries: max by
/// (term, address). Empty string when no writable primary was seen.
std::string PickWinner(const std::vector<PeerStatus>& peers);

/// Sends `REPL DEMOTE <winner_term> primary=<winner>` to every reachable
/// writable primary other than the winner. Best-effort; returns how many
/// acknowledged the demotion.
size_t FenceStalePrimaries(const std::vector<PeerStatus>& peers,
                           const std::string& winner, uint64_t winner_term,
                           uint32_t timeout_ms);

/// Probe all addresses, pick the winner, fence the losers. Returns the
/// winner's address; kUnavailable when no writable primary is reachable.
StatusOr<std::string> ResolveSingleWriter(
    const std::vector<std::string>& addresses, uint32_t timeout_ms);

}  // namespace oocq::replicate

#endif  // OOCQ_REPLICATE_FENCE_H_
