#include "schema/schema.h"

namespace oocq {

StatusOr<ClassId> Schema::FindClass(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no class named '" + std::string(name) + "'");
  }
  return it->second;
}

ClassId Schema::FindClassOrInvalid(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidClassId : it->second;
}

const TypeExpr* Schema::FindAttribute(ClassId c, std::string_view attr) const {
  for (const AttributeDef& def : classes_[c].all_attributes) {
    if (def.name == attr) return &def.type;
  }
  return nullptr;
}

std::vector<ClassId> Schema::TerminalClasses(bool include_builtins) const {
  std::vector<ClassId> result;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    if (!include_builtins && classes_[c].is_builtin) continue;
    if (classes_[c].is_terminal) result.push_back(c);
  }
  return result;
}

std::vector<ClassId> Schema::UserClasses() const {
  std::vector<ClassId> result;
  for (ClassId c = kNumBuiltinClasses; c < classes_.size(); ++c) {
    result.push_back(c);
  }
  return result;
}

}  // namespace oocq
