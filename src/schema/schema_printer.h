#ifndef OOCQ_SCHEMA_SCHEMA_PRINTER_H_
#define OOCQ_SCHEMA_SCHEMA_PRINTER_H_

#include <string>

#include "schema/schema.h"

namespace oocq {

/// Serializes a schema back into the schema DSL (built-in classes are
/// implicit and omitted). Round-trips through ParseSchema: classes in
/// declaration order, `under` clauses for direct superclasses, own
/// attributes only (inherited ones are reconstructed by the builder).
std::string SchemaToString(const Schema& schema,
                           const std::string& name = "S");

}  // namespace oocq

#endif  // OOCQ_SCHEMA_SCHEMA_PRINTER_H_
