#ifndef OOCQ_SCHEMA_SCHEMA_H_
#define OOCQ_SCHEMA_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/type.h"
#include "support/status.h"

namespace oocq {

/// An attribute-type pair, the paper's notion of a property.
struct AttributeDef {
  std::string name;
  TypeExpr type;
};

/// Fully-resolved per-class information. Produced by SchemaBuilder; users
/// read it through Schema accessors.
struct ClassInfo {
  std::string name;
  /// True for the built-in primitive classes Int, Real, String.
  bool is_builtin = false;
  /// Direct superclasses (the user-declared edges of the `<` hierarchy).
  std::vector<ClassId> parents;
  /// Attributes declared (or refined) directly on this class.
  std::vector<AttributeDef> own_attributes;

  // --- Resolved by SchemaBuilder::Build ---
  /// True iff no other class is a descendant of this one.
  bool is_terminal = true;
  /// All terminal descendants, sorted ascending. For a terminal class this
  /// is the singleton {self}. Under the Terminal Class Partitioning
  /// Assumption the extent of this class is the disjoint union of the
  /// extents of exactly these classes.
  std::vector<ClassId> terminal_descendants;
  /// The full attribute set: inherited attributes merged with own ones,
  /// keeping the most specific (subtype-least) type for each name.
  std::vector<AttributeDef> all_attributes;
};

/// A schema S = (C, sigma, <): class names, their tuple-type structure and
/// the inheritance hierarchy (paper §2.1). Immutable once built; create
/// one with SchemaBuilder. Copyable.
class Schema {
 public:
  size_t num_classes() const { return classes_.size(); }
  const ClassInfo& class_info(ClassId c) const { return classes_[c]; }
  const std::string& class_name(ClassId c) const { return classes_[c].name; }

  /// Looks up a class by name.
  StatusOr<ClassId> FindClass(std::string_view name) const;
  /// Like FindClass but returns kInvalidClassId instead of an error.
  ClassId FindClassOrInvalid(std::string_view name) const;

  /// True iff `a` is a descendant-or-self of `b` (the reflexive-transitive
  /// closure of the declared hierarchy).
  bool IsSubclassOf(ClassId a, ClassId b) const {
    return subclass_matrix_[a * classes_.size() + b];
  }

  bool is_terminal(ClassId c) const { return classes_[c].is_terminal; }

  /// The terminal descendants of `c` (sorted; {c} itself when terminal).
  const std::vector<ClassId>& TerminalDescendants(ClassId c) const {
    return classes_[c].terminal_descendants;
  }

  /// The resolved (most specific) type of attribute `attr` on class `c`,
  /// or nullptr if `c` has no such attribute.
  const TypeExpr* FindAttribute(ClassId c, std::string_view attr) const;

  /// The derived subtyping relation on type expressions: T1 <= T2 iff both
  /// are object types with subclass classes, or both set types with
  /// subclass element classes.
  bool IsSubtype(const TypeExpr& a, const TypeExpr& b) const {
    return a.is_set() == b.is_set() && IsSubclassOf(a.cls(), b.cls());
  }

  /// All terminal classes in the schema, optionally including the built-in
  /// primitive classes.
  std::vector<ClassId> TerminalClasses(bool include_builtins) const;

  /// All user-declared (non-builtin) classes.
  std::vector<ClassId> UserClasses() const;

 private:
  friend class SchemaBuilder;
  Schema() = default;

  std::vector<ClassInfo> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
  /// Row-major |C| x |C| reachability matrix: [a][b] == a is-subclass-of b.
  std::vector<char> subclass_matrix_;
};

}  // namespace oocq

#endif  // OOCQ_SCHEMA_SCHEMA_H_
