#include "schema/schema_builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace oocq {

namespace {

const char* const kBuiltinNames[kNumBuiltinClasses] = {"Int", "Real",
                                                       "String"};

}  // namespace

SchemaBuilder& SchemaBuilder::AddClass(std::string name,
                                       std::vector<std::string> parents) {
  decls_.push_back(ClassDecl{std::move(name), std::move(parents), {}});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddAttribute(std::string_view class_name,
                                           std::string attr_name,
                                           TypeName type) {
  for (ClassDecl& decl : decls_) {
    if (decl.name == class_name) {
      decl.attributes.push_back(AttrDecl{std::move(attr_name), std::move(type)});
      return *this;
    }
  }
  declaration_errors_.push_back("AddAttribute('" + std::string(class_name) +
                                "', '" + attr_name +
                                "'): class not declared");
  return *this;
}

StatusOr<Schema> SchemaBuilder::Build() const {
  if (!declaration_errors_.empty()) {
    return Status::NotFound(declaration_errors_.front());
  }

  Schema schema;

  // Register built-in primitive classes.
  for (uint32_t i = 0; i < kNumBuiltinClasses; ++i) {
    ClassInfo info;
    info.name = kBuiltinNames[i];
    info.is_builtin = true;
    schema.classes_.push_back(std::move(info));
    schema.by_name_[kBuiltinNames[i]] = i;
  }

  // Register user classes, checking name uniqueness.
  for (const ClassDecl& decl : decls_) {
    if (schema.by_name_.count(decl.name) > 0) {
      return Status::InvalidArgument("duplicate class name '" + decl.name +
                                     "'");
    }
    ClassId id = static_cast<ClassId>(schema.classes_.size());
    ClassInfo info;
    info.name = decl.name;
    schema.classes_.push_back(std::move(info));
    schema.by_name_[decl.name] = id;
  }

  const size_t n = schema.classes_.size();

  // Resolve parent edges.
  for (const ClassDecl& decl : decls_) {
    ClassId id = schema.by_name_.at(decl.name);
    for (const std::string& parent : decl.parents) {
      auto it = schema.by_name_.find(parent);
      if (it == schema.by_name_.end()) {
        return Status::NotFound("class '" + decl.name +
                                "': unknown superclass '" + parent + "'");
      }
      ClassId pid = it->second;
      if (pid == id) {
        return Status::InvalidArgument("class '" + decl.name +
                                       "' declared as its own superclass");
      }
      if (schema.classes_[pid].is_builtin) {
        return Status::InvalidArgument(
            "class '" + decl.name + "': built-in class '" + parent +
            "' cannot have subclasses");
      }
      std::vector<ClassId>& parents = schema.classes_[id].parents;
      if (std::find(parents.begin(), parents.end(), pid) == parents.end()) {
        parents.push_back(pid);
      }
    }
  }

  // Cycle detection (the paper requires no cycle of length > 1; we reject
  // all cycles) and topological order, parents before children.
  std::vector<int> state(n, 0);  // 0 = unvisited, 1 = in stack, 2 = done.
  std::vector<ClassId> topo;
  topo.reserve(n);
  // Iterative DFS along parent edges; post-order emits ancestors first.
  for (ClassId root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<ClassId, size_t>> stack = {{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [c, next] = stack.back();
      const std::vector<ClassId>& parents = schema.classes_[c].parents;
      if (next < parents.size()) {
        ClassId p = parents[next++];
        if (state[p] == 1) {
          return Status::InvalidArgument(
              "inheritance cycle involving class '" + schema.classes_[p].name +
              "'");
        }
        if (state[p] == 0) {
          state[p] = 1;
          stack.push_back({p, 0});
        }
      } else {
        state[c] = 2;
        topo.push_back(c);
        stack.pop_back();
      }
    }
  }

  // Reflexive-transitive subclass matrix, filled in topological order so a
  // class's row can be OR-ed from its parents' completed rows.
  schema.subclass_matrix_.assign(n * n, 0);
  for (ClassId c : topo) {
    char* row = &schema.subclass_matrix_[c * n];
    row[c] = 1;
    for (ClassId p : schema.classes_[c].parents) {
      const char* prow = &schema.subclass_matrix_[p * n];
      for (size_t b = 0; b < n; ++b) row[b] |= prow[b];
    }
  }

  // Terminal flags and terminal descendants.
  for (ClassId c = 0; c < n; ++c) {
    schema.classes_[c].is_terminal = true;
    for (ClassId d = 0; d < n; ++d) {
      if (d != c && schema.subclass_matrix_[d * n + c]) {
        schema.classes_[c].is_terminal = false;
        break;
      }
    }
  }
  for (ClassId c = 0; c < n; ++c) {
    std::vector<ClassId>& terms = schema.classes_[c].terminal_descendants;
    for (ClassId d = 0; d < n; ++d) {
      if (schema.classes_[d].is_terminal && schema.subclass_matrix_[d * n + c]) {
        terms.push_back(d);
      }
    }
  }

  // Resolve attribute types and check refinement consistency, in
  // topological order so parents' all_attributes are complete first.
  for (const ClassDecl& decl : decls_) {
    ClassId id = schema.by_name_.at(decl.name);
    std::unordered_set<std::string> seen;
    for (const AttrDecl& attr : decl.attributes) {
      if (!seen.insert(attr.name).second) {
        return Status::InvalidArgument("class '" + decl.name +
                                       "': duplicate attribute '" + attr.name +
                                       "'");
      }
      auto it = schema.by_name_.find(attr.type.cls);
      if (it == schema.by_name_.end()) {
        return Status::NotFound("class '" + decl.name + "', attribute '" +
                                attr.name + "': unknown type class '" +
                                attr.type.cls + "'");
      }
      TypeExpr type = attr.type.is_set ? TypeExpr::SetOf(it->second)
                                       : TypeExpr::Class(it->second);
      schema.classes_[id].own_attributes.push_back(
          AttributeDef{attr.name, type});
    }
  }

  for (ClassId c : topo) {
    ClassInfo& info = schema.classes_[c];
    // name -> most specific type among inherited candidates.
    std::vector<AttributeDef> merged;
    auto find_merged = [&merged](const std::string& name) -> AttributeDef* {
      for (AttributeDef& def : merged) {
        if (def.name == name) return &def;
      }
      return nullptr;
    };
    for (ClassId p : info.parents) {
      for (const AttributeDef& inherited : schema.classes_[p].all_attributes) {
        AttributeDef* existing = find_merged(inherited.name);
        if (existing == nullptr) {
          merged.push_back(inherited);
        } else if (schema.IsSubtype(inherited.type, existing->type)) {
          existing->type = inherited.type;  // Keep the more specific type.
        } else if (!schema.IsSubtype(existing->type, inherited.type)) {
          // Incomparable inherited types: only acceptable if the class
          // itself redefines the attribute compatibly (checked below).
          bool redefined = false;
          for (const AttributeDef& own : info.own_attributes) {
            if (own.name == inherited.name) redefined = true;
          }
          if (!redefined) {
            return Status::InvalidArgument(
                "class '" + info.name + "': attribute '" + inherited.name +
                "' inherited with incomparable types from multiple "
                "superclasses and not redefined");
          }
        }
      }
    }
    for (const AttributeDef& own : info.own_attributes) {
      AttributeDef* existing = find_merged(own.name);
      if (existing == nullptr) {
        merged.push_back(own);
        continue;
      }
      // Refinement must be subtype-compatible with everything inherited.
      for (ClassId p : info.parents) {
        for (const AttributeDef& inherited :
             schema.classes_[p].all_attributes) {
          if (inherited.name == own.name &&
              !schema.IsSubtype(own.type, inherited.type)) {
            return Status::InvalidArgument(
                "class '" + info.name + "': attribute '" + own.name +
                "' refines an inherited attribute with a non-subtype");
          }
        }
      }
      existing->type = own.type;
    }
    info.all_attributes = std::move(merged);
  }

  return schema;
}

}  // namespace oocq
