#ifndef OOCQ_SCHEMA_SCHEMA_BUILDER_H_
#define OOCQ_SCHEMA_SCHEMA_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// An attribute type named by class name rather than ClassId, so schemas
/// can be declared with forward references and resolved at Build() time.
struct TypeName {
  /// An object type "C".
  static TypeName Class(std::string cls) {
    return TypeName{std::move(cls), /*is_set=*/false};
  }
  /// A set type "{C}".
  static TypeName SetOf(std::string cls) {
    return TypeName{std::move(cls), /*is_set=*/true};
  }

  std::string cls;
  bool is_set = false;
};

/// Incrementally declares a schema, then validates and resolves it. All
/// names may forward-reference classes declared later. Build() enforces
/// the paper's consistency requirements (§2.1, after [24]):
///  - the hierarchy is acyclic (no cycle of length > 1);
///  - built-in primitive classes have no subclasses and no attributes;
///  - attribute refinement is subtype-compatible: if B is a subclass of A
///    and both define attribute `a`, then type(B.a) <= type(A.a);
///  - multiple inheritance conflicts (two ancestors defining `a` with
///    subtype-incomparable types, unresolved by the class itself) are
///    rejected.
///
/// Usage:
///   SchemaBuilder b;
///   b.AddClass("Vehicle").AddAttribute("Vehicle", "VehId",
///                                      TypeName::Class("String"));
///   b.AddClass("Auto", {"Vehicle"});
///   OOCQ_ASSIGN_OR_RETURN(Schema schema, b.Build());
class SchemaBuilder {
 public:
  SchemaBuilder() = default;

  /// Declares a class with the given direct superclasses.
  SchemaBuilder& AddClass(std::string name,
                          std::vector<std::string> parents = {});

  /// Declares (or refines) an attribute on a previously AddClass-ed class.
  SchemaBuilder& AddAttribute(std::string_view class_name,
                              std::string attr_name, TypeName type);

  /// Validates and resolves the declarations into an immutable Schema.
  StatusOr<Schema> Build() const;

 private:
  struct AttrDecl {
    std::string name;
    TypeName type;
  };
  struct ClassDecl {
    std::string name;
    std::vector<std::string> parents;
    std::vector<AttrDecl> attributes;
  };

  std::vector<ClassDecl> decls_;
  /// Usage errors detected while declaring (reported from Build()).
  std::vector<std::string> declaration_errors_;
};

}  // namespace oocq

#endif  // OOCQ_SCHEMA_SCHEMA_BUILDER_H_
