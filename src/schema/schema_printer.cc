#include "schema/schema_printer.h"

namespace oocq {

std::string SchemaToString(const Schema& schema, const std::string& name) {
  std::string out = "schema " + name + " {\n";
  for (ClassId c = kNumBuiltinClasses; c < schema.num_classes(); ++c) {
    const ClassInfo& info = schema.class_info(c);
    out += "  class " + info.name;
    for (size_t i = 0; i < info.parents.size(); ++i) {
      out += i == 0 ? " under " : ", ";
      out += schema.class_name(info.parents[i]);
    }
    out += " {";
    for (const AttributeDef& attr : info.own_attributes) {
      out += " " + attr.name + ": ";
      if (attr.type.is_set()) {
        out += "{" + schema.class_name(attr.type.cls()) + "}";
      } else {
        out += schema.class_name(attr.type.cls());
      }
      out += ";";
    }
    out += " }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace oocq
