#ifndef OOCQ_SCHEMA_TYPE_H_
#define OOCQ_SCHEMA_TYPE_H_

#include <cstdint>
#include <functional>

namespace oocq {

/// Index of a class within its Schema. The built-in primitive classes
/// (Int, Real, String) occupy the first slots of every schema.
using ClassId = uint32_t;

inline constexpr ClassId kInvalidClassId = static_cast<ClassId>(-1);

/// Built-in primitive classes. Following DESIGN.md §3(2) they are modeled
/// as pairwise-unrelated terminal classes with unbounded extents; the
/// paper's theory treats them exactly like user-defined terminal classes.
inline constexpr ClassId kIntClassId = 0;
inline constexpr ClassId kRealClassId = 1;
inline constexpr ClassId kStringClassId = 2;
inline constexpr uint32_t kNumBuiltinClasses = 3;

/// A type expression over the classes of a schema (the paper's
/// type-expr(C), restricted per §2.1: attribute types are either a class
/// reference or a set of members of a class). Tuple types appear only as
/// the structure sigma(c) of a class and are represented by the class's
/// attribute list in ClassInfo, not by TypeExpr.
class TypeExpr {
 public:
  /// An object type: members of class `c`.
  static TypeExpr Class(ClassId c) { return TypeExpr(c, /*is_set=*/false); }
  /// A set type: finite sets of members of class `element`.
  static TypeExpr SetOf(ClassId element) {
    return TypeExpr(element, /*is_set=*/true);
  }

  bool is_set() const { return is_set_; }
  /// The referenced class: the object class for object types, the element
  /// class for set types.
  ClassId cls() const { return cls_; }

  friend bool operator==(const TypeExpr& a, const TypeExpr& b) {
    return a.cls_ == b.cls_ && a.is_set_ == b.is_set_;
  }

 private:
  TypeExpr(ClassId cls, bool is_set) : cls_(cls), is_set_(is_set) {}

  ClassId cls_;
  bool is_set_;
};

}  // namespace oocq

#endif  // OOCQ_SCHEMA_TYPE_H_
