#ifndef OOCQ_QUERY_PRINTER_H_
#define OOCQ_QUERY_PRINTER_H_

#include <string>

#include "query/query.h"
#include "schema/schema.h"

namespace oocq {

/// "x" or "x.A" using the query's variable names.
std::string TermToString(const ConjunctiveQuery& query, const Term& term);

/// "x in C1|C2", "y = x.B", "s notin x.A", ...
std::string AtomToString(const Schema& schema, const ConjunctiveQuery& query,
                         const Atom& atom);

/// "{ x | exists y (x in T2 & y in H & y = x.B) }". The output parses back
/// with Parser::ParseQuery.
std::string QueryToString(const Schema& schema, const ConjunctiveQuery& query);

/// Disjuncts joined with " union ".
std::string UnionQueryToString(const Schema& schema, const UnionQuery& query);

}  // namespace oocq

#endif  // OOCQ_QUERY_PRINTER_H_
