#ifndef OOCQ_QUERY_QUERY_H_
#define OOCQ_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "query/atom.h"
#include "query/term.h"
#include "schema/schema.h"

namespace oocq {

/// A conjunctive query { s0 | ∃s1 ... ∃sm (A1 & ... & Ak) } (paper §2.2):
/// a single free variable, existentially quantified bound variables, and a
/// matrix that is a conjunction of atoms.
///
/// The class is a mutable builder-style container; algorithm entry points
/// state their preconditions (well-formed, terminal, satisfiable) and
/// check them through the functions in query/well_formed.h and
/// core/satisfiability.h.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Adds a variable and returns its id. The first variable added is the
  /// free variable by default.
  VarId AddVariable(std::string name);

  /// Marks `v` as the query's free (answer) variable.
  void set_free_var(VarId v) { free_var_ = v; }
  VarId free_var() const { return free_var_; }

  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }

  size_t num_vars() const { return var_names_.size(); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<std::string>& var_names() const { return var_names_; }
  /// The id of the variable named `name`, or kInvalidVarId.
  VarId FindVariable(std::string_view name) const;

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::vector<Atom>& mutable_atoms() { return atoms_; }

  /// The first range atom constraining `v`, or nullptr. Well-formed
  /// queries have exactly one per variable.
  const Atom* RangeAtomOf(VarId v) const;

  /// Number of range atoms constraining `v`.
  int CountRangeAtomsOf(VarId v) const;

  /// True iff every atom is positive (range/equality/membership).
  bool IsPositive() const;

  /// True iff every range atom names a single terminal class (§2.4).
  bool IsTerminal(const Schema& schema) const;

  /// For terminal queries: the unique terminal class `v` ranges over;
  /// kInvalidClassId if `v` has no single-class range atom.
  ClassId RangeClassOf(VarId v) const;

  /// Removes duplicate atoms (used after variable mappings).
  void DeduplicateAtoms();

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.free_var_ == b.free_var_ && a.var_names_ == b.var_names_ &&
           a.atoms_ == b.atoms_;
  }

 private:
  VarId free_var_ = kInvalidVarId;
  std::vector<std::string> var_names_;
  std::vector<Atom> atoms_;
};

/// A union Q1 ∪ ... ∪ Qn of conjunctive queries. The answer on a state is
/// the union of the disjuncts' answers. An empty union is the empty query.
struct UnionQuery {
  std::vector<ConjunctiveQuery> disjuncts;
};

/// μ(Q): the query obtained by replacing every variable v with image[v]
/// (an endomorphism on Q's variables, Thm 4.3). Variables outside the
/// image are dropped and the remaining ones renumbered compactly;
/// duplicate atoms are removed. The free variable must be preserved up to
/// the mapping (the caller guarantees image[free] is the new free
/// variable's preimage representative).
ConjunctiveQuery ApplyVariableMapping(const ConjunctiveQuery& query,
                                      const std::vector<VarId>& image);

}  // namespace oocq

#endif  // OOCQ_QUERY_QUERY_H_
