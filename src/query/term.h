#ifndef OOCQ_QUERY_TERM_H_
#define OOCQ_QUERY_TERM_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace oocq {

/// Index of a variable within its ConjunctiveQuery.
using VarId = uint32_t;

inline constexpr VarId kInvalidVarId = static_cast<VarId>(-1);

/// A term f(x) in the paper's sense: either a variable `x` or an attribute
/// selection `x.A` (attr empty means the plain variable). Terms let a query
/// refer to a component of an object.
struct Term {
  /// The plain variable term `v`.
  static Term Var(VarId v) { return Term{v, ""}; }
  /// The attribute term `v.attr`.
  static Term Attr(VarId v, std::string attr) {
    return Term{v, std::move(attr)};
  }

  bool is_attribute() const { return !attr.empty(); }

  /// The term with the variable substituted (f(x) -> f(mu(x))).
  Term WithVar(VarId v) const { return Term{v, attr}; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.var == b.var && a.attr == b.attr;
  }
  friend bool operator<(const Term& a, const Term& b) {
    return std::tie(a.var, a.attr) < std::tie(b.var, b.attr);
  }

  VarId var = kInvalidVarId;
  std::string attr;
};

}  // namespace oocq

#endif  // OOCQ_QUERY_TERM_H_
