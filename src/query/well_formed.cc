#include "query/well_formed.h"

#include <algorithm>
#include <optional>
#include <set>

#include "query/equality_graph.h"
#include "support/status_macros.h"

namespace oocq {

namespace {

Status CheckTermVars(const ConjunctiveQuery& query, const Atom& atom) {
  auto check = [&query](const Term& term) -> Status {
    if (term.var >= query.num_vars()) {
      return Status::InvalidArgument("atom references undeclared variable id " +
                                     std::to_string(term.var));
    }
    return Status::Ok();
  };
  OOCQ_RETURN_IF_ERROR(check(atom.lhs()));
  OOCQ_RETURN_IF_ERROR(check(atom.rhs()));
  return Status::Ok();
}

}  // namespace

Status ValidateStructure(const Schema& schema, const ConjunctiveQuery& query) {
  if (query.num_vars() == 0) {
    return Status::InvalidArgument("query has no variables");
  }
  if (query.free_var() >= query.num_vars()) {
    return Status::InvalidArgument("query has no valid free variable");
  }
  for (const Atom& atom : query.atoms()) {
    OOCQ_RETURN_IF_ERROR(CheckTermVars(query, atom));
    switch (atom.kind()) {
      case AtomKind::kRange:
      case AtomKind::kNonRange:
        if (atom.classes().empty()) {
          return Status::InvalidArgument(
              "range atom with empty class disjunction on variable '" +
              query.var_name(atom.var()) + "'");
        }
        for (ClassId c : atom.classes()) {
          if (c >= schema.num_classes()) {
            return Status::InvalidArgument("range atom references class id " +
                                           std::to_string(c) +
                                           " outside the schema");
          }
        }
        break;
      case AtomKind::kEquality:
      case AtomKind::kInequality:
      case AtomKind::kConstant:
        break;
      case AtomKind::kMembership:
      case AtomKind::kNonMembership:
        if (atom.lhs().is_attribute() || !atom.rhs().is_attribute()) {
          return Status::InvalidArgument(
              "membership atom must relate a variable to a set term y.A");
        }
        break;
    }
  }
  return Status::Ok();
}

Status CheckWellFormed(const Schema& schema, const ConjunctiveQuery& query) {
  OOCQ_RETURN_IF_ERROR(ValidateStructure(schema, query));

  // (iii) exactly one range atom per variable.
  for (VarId v = 0; v < query.num_vars(); ++v) {
    int count = query.CountRangeAtomsOf(v);
    if (count != 1) {
      return Status::InvalidArgument(
          "variable '" + query.var_name(v) + "' has " + std::to_string(count) +
          " range atoms; well-formed queries require exactly one");
    }
  }

  EqualityGraph graph = EqualityGraph::Build(query);
  for (TermId rep : graph.ClassRepresentatives()) {
    // (i) object xor set.
    if (graph.IsObjectTerm(rep) && graph.IsSetTerm(rep)) {
      return Status::InvalidArgument(
          "term equivalence class used both as an object and as a set");
    }
    // (ii) object attribute terms are equated to a variable.
    if (graph.IsObjectTerm(rep) && graph.ClassVariables(rep).empty()) {
      const Term& term = graph.term(graph.ClassMembers(rep).front());
      return Status::InvalidArgument(
          "object term '" + query.var_name(term.var) + "." + term.attr +
          "' is not equated to any variable");
    }
  }
  return Status::Ok();
}

StatusOr<ConjunctiveQuery> NormalizeToWellFormed(const Schema& schema,
                                                 const ConjunctiveQuery& query) {
  OOCQ_RETURN_IF_ERROR(ValidateStructure(schema, query));
  ConjunctiveQuery result = query;

  const std::vector<ClassId> all_terminals =
      schema.TerminalClasses(/*include_builtins=*/true);

  // (iii): keep the first range atom of each variable; each extra one is
  // moved to a fresh variable equated with the original (the paper's
  // remark after §2.3).
  {
    std::vector<int> seen(result.num_vars(), 0);
    std::vector<Atom> extra;
    for (Atom& atom : result.mutable_atoms()) {
      if (atom.kind() != AtomKind::kRange) continue;
      VarId v = atom.var();
      if (seen[v]++ == 0) continue;
      VarId fresh = result.AddVariable(result.var_name(v) + "'" +
                                       std::to_string(seen[v] - 1));
      extra.push_back(Atom::Equality(Term::Var(fresh), Term::Var(v)));
      atom = Atom::Range(fresh, atom.classes());
    }
    for (Atom& atom : extra) result.AddAtom(std::move(atom));
  }
  // (iii): variables without a range atom receive one. Rather than the
  // blanket all-terminal-classes default, infer a narrower range from the
  // equality atoms the variable participates in (`v = u.A` bounds v by
  // A's type; `v = w` bounds v by w's range), iterating to a fixpoint so
  // desugared path chains (`_p1 = x.A & _p2 = _p1.B`) resolve level by
  // level. Unresolvable variables fall back to all terminal classes.
  {
    auto terminal_range = [&](VarId v) -> std::vector<ClassId> {
      const Atom* range = result.RangeAtomOf(v);
      if (range == nullptr) return {};
      std::set<ClassId> terminals;
      for (ClassId c : range->classes()) {
        for (ClassId t : schema.TerminalDescendants(c)) terminals.insert(t);
      }
      return std::vector<ClassId>(terminals.begin(), terminals.end());
    };
    // Candidates implied by `v = u.A` when u's range is known.
    auto attr_bound = [&](VarId u, const std::string& attr)
        -> std::optional<std::vector<ClassId>> {
      if (result.CountRangeAtomsOf(u) == 0) return std::nullopt;
      std::set<ClassId> candidates;
      for (ClassId cu : terminal_range(u)) {
        const TypeExpr* type = schema.FindAttribute(cu, attr);
        if (type == nullptr || type->is_set()) continue;
        for (ClassId t : schema.TerminalDescendants(type->cls())) {
          candidates.insert(t);
        }
      }
      return std::vector<ClassId>(candidates.begin(), candidates.end());
    };

    bool progress = true;
    while (progress) {
      progress = false;
      for (VarId v = 0; v < result.num_vars(); ++v) {
        if (result.CountRangeAtomsOf(v) != 0) continue;
        std::optional<std::vector<ClassId>> inferred;
        auto merge = [&inferred](std::vector<ClassId> bound) {
          if (!inferred.has_value()) {
            inferred = std::move(bound);
            return;
          }
          std::vector<ClassId> intersection;
          std::set_intersection(inferred->begin(), inferred->end(),
                                bound.begin(), bound.end(),
                                std::back_inserter(intersection));
          inferred = std::move(intersection);
        };
        for (const Atom& atom : result.atoms()) {
          // A constant binding pins the variable's class outright.
          if (atom.kind() == AtomKind::kConstant && atom.var() == v) {
            merge({ConstantClassOf(atom.constant())});
            continue;
          }
          if (atom.kind() != AtomKind::kEquality) continue;
          for (const auto& [self, other] :
               {std::make_pair(atom.lhs(), atom.rhs()),
                std::make_pair(atom.rhs(), atom.lhs())}) {
            if (self.is_attribute() || self.var != v) continue;
            if (other.is_attribute()) {
              std::optional<std::vector<ClassId>> bound =
                  attr_bound(other.var, other.attr);
              if (bound.has_value()) merge(*std::move(bound));
            } else if (other.var != v &&
                       result.CountRangeAtomsOf(other.var) != 0) {
              merge(terminal_range(other.var));
            }
          }
        }
        if (inferred.has_value() && !inferred->empty()) {
          result.AddAtom(Atom::Range(v, *std::move(inferred)));
          progress = true;
        }
      }
    }
    for (VarId v = 0; v < result.num_vars(); ++v) {
      if (result.CountRangeAtomsOf(v) == 0) {
        result.AddAtom(Atom::Range(v, all_terminals));
      }
    }
  }

  // (ii): equate stranded object attribute terms to fresh variables whose
  // range is the set of terminal classes the attribute's type permits.
  EqualityGraph graph = EqualityGraph::Build(result);
  std::vector<Atom> additions;
  std::vector<std::pair<VarId, std::vector<ClassId>>> fresh_ranges;
  for (TermId rep : graph.ClassRepresentatives()) {
    if (!graph.IsObjectTerm(rep) || graph.IsSetTerm(rep)) continue;
    if (!graph.ClassVariables(rep).empty()) continue;
    const Term& term = graph.term(graph.ClassMembers(rep).front());

    // Narrow the fresh variable's range via the attribute's possible types.
    std::set<ClassId> candidates;
    const Atom* owner_range = result.RangeAtomOf(term.var);
    if (owner_range != nullptr) {
      for (ClassId c : owner_range->classes()) {
        for (ClassId terminal : schema.TerminalDescendants(c)) {
          const TypeExpr* type = schema.FindAttribute(terminal, term.attr);
          if (type == nullptr || type->is_set()) continue;
          for (ClassId t : schema.TerminalDescendants(type->cls())) {
            candidates.insert(t);
          }
        }
      }
    }
    std::vector<ClassId> range(candidates.begin(), candidates.end());
    if (range.empty()) range = all_terminals;

    VarId fresh = result.AddVariable("v" + std::to_string(result.num_vars()));
    additions.push_back(Atom::Equality(Term::Var(fresh), term));
    fresh_ranges.emplace_back(fresh, std::move(range));
  }
  for (Atom& atom : additions) result.AddAtom(std::move(atom));
  for (auto& [v, range] : fresh_ranges) {
    result.AddAtom(Atom::Range(v, std::move(range)));
  }

  OOCQ_RETURN_IF_ERROR(CheckWellFormed(schema, result));
  return result;
}

}  // namespace oocq
