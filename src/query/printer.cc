#include "query/printer.h"

namespace oocq {

std::string TermToString(const ConjunctiveQuery& query, const Term& term) {
  std::string result = query.var_name(term.var);
  if (term.is_attribute()) {
    result += '.';
    result += term.attr;
  }
  return result;
}

std::string AtomToString(const Schema& schema, const ConjunctiveQuery& query,
                         const Atom& atom) {
  switch (atom.kind()) {
    case AtomKind::kRange:
    case AtomKind::kNonRange: {
      std::string result = query.var_name(atom.var());
      result += atom.kind() == AtomKind::kRange ? " in " : " notin ";
      for (size_t i = 0; i < atom.classes().size(); ++i) {
        if (i > 0) result += '|';
        result += schema.class_name(atom.classes()[i]);
      }
      return result;
    }
    case AtomKind::kEquality:
    case AtomKind::kInequality:
      return TermToString(query, atom.lhs()) +
             (atom.kind() == AtomKind::kEquality ? " = " : " != ") +
             TermToString(query, atom.rhs());
    case AtomKind::kMembership:
    case AtomKind::kNonMembership:
      return TermToString(query, atom.lhs()) +
             (atom.kind() == AtomKind::kMembership ? " in " : " notin ") +
             TermToString(query, atom.rhs());
    case AtomKind::kConstant:
      return query.var_name(atom.var()) + " = " +
             ConstantToString(atom.constant());
  }
  return "?";
}

std::string QueryToString(const Schema& schema, const ConjunctiveQuery& query) {
  std::string result = "{ ";
  result += query.var_name(query.free_var());
  result += " | ";
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (v == query.free_var()) continue;
    result += "exists ";
    result += query.var_name(v);
    result += ' ';
  }
  result += '(';
  for (size_t i = 0; i < query.atoms().size(); ++i) {
    if (i > 0) result += " & ";
    result += AtomToString(schema, query, query.atoms()[i]);
  }
  result += ") }";
  return result;
}

std::string UnionQueryToString(const Schema& schema, const UnionQuery& query) {
  if (query.disjuncts.empty()) return "{}";
  std::string result;
  for (size_t i = 0; i < query.disjuncts.size(); ++i) {
    if (i > 0) result += " union ";
    result += QueryToString(schema, query.disjuncts[i]);
  }
  return result;
}

}  // namespace oocq
