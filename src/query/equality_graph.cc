#include "query/equality_graph.h"

#include <algorithm>
#include <numeric>

namespace oocq {

namespace {

/// Plain union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  TermId Find(TermId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the two sets were distinct.
  bool Union(TermId a, TermId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    // Keep the smaller id as representative for determinism.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<TermId> parent_;
};

}  // namespace

TermId EqualityGraph::FindTermId(const Term& term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kInvalidTermId : it->second;
}

bool EqualityGraph::Equivalent(const Term& a, const Term& b) const {
  TermId ta = FindTermId(a);
  TermId tb = FindTermId(b);
  if (ta == kInvalidTermId || tb == kInvalidTermId) return false;
  return Equivalent(ta, tb);
}

EqualityGraph EqualityGraph::Build(const ConjunctiveQuery& query) {
  EqualityGraph graph;

  auto intern = [&graph](const Term& term) -> TermId {
    auto [it, inserted] =
        graph.term_ids_.emplace(term, static_cast<TermId>(graph.terms_.size()));
    if (inserted) graph.terms_.push_back(term);
    return it->second;
  };

  // Step 1(i), node collection: every term occurring in Q is a node. Every
  // variable occurs in some atom of a well-formed query (its range atom);
  // we intern all declared variables so the graph is total on variables.
  graph.var_nodes_.resize(query.num_vars());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    graph.var_nodes_[v] = intern(Term::Var(v));
  }
  for (const Atom& atom : query.atoms()) {
    switch (atom.kind()) {
      case AtomKind::kRange:
      case AtomKind::kNonRange:
      case AtomKind::kConstant:
        break;  // The variable term is already interned.
      case AtomKind::kEquality:
      case AtomKind::kInequality:
      case AtomKind::kMembership:
      case AtomKind::kNonMembership:
        intern(atom.lhs());
        intern(atom.rhs());
        break;
    }
  }

  UnionFind uf(graph.terms_.size());

  // Step 1(i)-(ii): equality atoms, with reflexivity/transitivity from the
  // union-find structure.
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kEquality) {
      uf.Union(graph.term_ids_.at(atom.lhs()), graph.term_ids_.at(atom.rhs()));
    }
  }

  // Step 1(iii), congruence: x ≈ y ⇒ x.A ≈ y.A when both are nodes. Repeat
  // until fixpoint; each round groups attribute nodes by (rep(var), attr).
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::pair<TermId, std::string>, TermId> groups;
    for (TermId t = 0; t < graph.terms_.size(); ++t) {
      const Term& term = graph.terms_[t];
      if (!term.is_attribute()) continue;
      TermId var_rep = uf.Find(graph.var_nodes_[term.var]);
      auto key = std::make_pair(var_rep, term.attr);
      auto [it, inserted] = groups.emplace(key, t);
      if (!inserted) changed |= uf.Union(it->second, t);
    }
  }

  // Materialize representatives and class member lists.
  graph.find_.resize(graph.terms_.size());
  graph.class_members_.assign(graph.terms_.size(), {});
  graph.class_variables_.assign(graph.terms_.size(), {});
  graph.class_is_object_.assign(graph.terms_.size(), 0);
  graph.class_is_set_.assign(graph.terms_.size(), 0);
  for (TermId t = 0; t < graph.terms_.size(); ++t) {
    TermId rep = uf.Find(t);
    graph.find_[t] = rep;
    graph.class_members_[rep].push_back(t);
    if (!graph.terms_[t].is_attribute()) {
      graph.class_variables_[rep].push_back(graph.terms_[t].var);
    }
    if (rep == t) graph.representatives_.push_back(rep);
  }

  // Object/set occurrence classification (paper §2.3): a set occurrence is
  // an appearance on the right-hand side of a (non-)membership atom; all
  // other occurrences are object occurrences. Range and non-range atoms
  // give their variable an object occurrence.
  auto mark_object = [&graph](const Term& term) {
    graph.class_is_object_[graph.find_[graph.term_ids_.at(term)]] = 1;
  };
  auto mark_set = [&graph](const Term& term) {
    graph.class_is_set_[graph.find_[graph.term_ids_.at(term)]] = 1;
  };
  for (const Atom& atom : query.atoms()) {
    switch (atom.kind()) {
      case AtomKind::kRange:
      case AtomKind::kNonRange:
      case AtomKind::kConstant:
        mark_object(Term::Var(atom.var()));
        break;
      case AtomKind::kEquality:
      case AtomKind::kInequality:
        mark_object(atom.lhs());
        mark_object(atom.rhs());
        break;
      case AtomKind::kMembership:
      case AtomKind::kNonMembership:
        mark_object(atom.lhs());
        mark_set(atom.rhs());
        break;
    }
  }

  return graph;
}

}  // namespace oocq
