#ifndef OOCQ_QUERY_EQUALITY_GRAPH_H_
#define OOCQ_QUERY_EQUALITY_GRAPH_H_

#include <map>
#include <vector>

#include "query/query.h"
#include "query/term.h"

namespace oocq {

/// Index of a term node within an EqualityGraph.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// The complete equality relationship graph E(Q) of Algorithm
/// EqualityGraph (paper §2.3): nodes are the terms occurring in Q, edges
/// the equalities closed under reflexivity, transitivity and the
/// congruence rule (x ≈ y and x.A, y.A both nodes ⇒ x.A ≈ y.A).
///
/// The graph also classifies each equivalence class as holding object
/// terms (some member has an object occurrence) and/or set terms (some
/// member has a set occurrence, i.e. appears on the right-hand side of a
/// (non-)membership atom).
class EqualityGraph {
 public:
  /// Runs Algorithm EqualityGraph on `query`.
  static EqualityGraph Build(const ConjunctiveQuery& query);

  size_t num_terms() const { return terms_.size(); }
  const Term& term(TermId t) const { return terms_[t]; }

  /// The node id of `term`, or kInvalidTermId if the term does not occur.
  TermId FindTermId(const Term& term) const;

  /// The node of the plain variable term `v` (always present).
  TermId VarNode(VarId v) const { return var_nodes_[v]; }

  /// The representative of `t`'s equivalence class.
  TermId Find(TermId t) const { return find_[t]; }

  bool Equivalent(TermId a, TermId b) const { return find_[a] == find_[b]; }
  /// Whether two terms are in one equivalence class; false if either term
  /// is not a node of the graph.
  bool Equivalent(const Term& a, const Term& b) const;

  /// All members of the equivalence class represented by Find(t).
  const std::vector<TermId>& ClassMembers(TermId t) const {
    return class_members_[find_[t]];
  }

  /// The variables in t's equivalence class ([t] ∩ Vars).
  const std::vector<VarId>& ClassVariables(TermId t) const {
    return class_variables_[find_[t]];
  }

  /// Whether t's equivalence class contains a term with an object (resp.
  /// set) occurrence. A well-formed query never has both (paper §2.3).
  bool IsObjectTerm(TermId t) const { return class_is_object_[find_[t]]; }
  bool IsSetTerm(TermId t) const { return class_is_set_[find_[t]]; }

  /// The representatives of all equivalence classes.
  const std::vector<TermId>& ClassRepresentatives() const {
    return representatives_;
  }

 private:
  EqualityGraph() = default;

  std::vector<Term> terms_;
  std::map<Term, TermId> term_ids_;
  std::vector<TermId> var_nodes_;
  std::vector<TermId> find_;  // node -> representative (path-compressed)
  std::vector<std::vector<TermId>> class_members_;    // indexed by rep
  std::vector<std::vector<VarId>> class_variables_;   // indexed by rep
  std::vector<char> class_is_object_;                 // indexed by rep
  std::vector<char> class_is_set_;                    // indexed by rep
  std::vector<TermId> representatives_;
};

}  // namespace oocq

#endif  // OOCQ_QUERY_EQUALITY_GRAPH_H_
