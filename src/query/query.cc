#include "query/query.h"

#include <algorithm>

namespace oocq {

VarId ConjunctiveQuery::AddVariable(std::string name) {
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(std::move(name));
  if (free_var_ == kInvalidVarId) free_var_ = id;
  return id;
}

VarId ConjunctiveQuery::FindVariable(std::string_view name) const {
  for (VarId v = 0; v < var_names_.size(); ++v) {
    if (var_names_[v] == name) return v;
  }
  return kInvalidVarId;
}

const Atom* ConjunctiveQuery::RangeAtomOf(VarId v) const {
  for (const Atom& atom : atoms_) {
    if (atom.kind() == AtomKind::kRange && atom.var() == v) return &atom;
  }
  return nullptr;
}

int ConjunctiveQuery::CountRangeAtomsOf(VarId v) const {
  int count = 0;
  for (const Atom& atom : atoms_) {
    if (atom.kind() == AtomKind::kRange && atom.var() == v) ++count;
  }
  return count;
}

bool ConjunctiveQuery::IsPositive() const {
  return std::all_of(atoms_.begin(), atoms_.end(),
                     [](const Atom& a) { return a.is_positive(); });
}

bool ConjunctiveQuery::IsTerminal(const Schema& schema) const {
  for (const Atom& atom : atoms_) {
    if (atom.kind() != AtomKind::kRange) continue;
    if (atom.classes().size() != 1 || !schema.is_terminal(atom.classes()[0])) {
      return false;
    }
  }
  return true;
}

ClassId ConjunctiveQuery::RangeClassOf(VarId v) const {
  const Atom* range = RangeAtomOf(v);
  if (range == nullptr || range->classes().size() != 1) return kInvalidClassId;
  return range->classes()[0];
}

void ConjunctiveQuery::DeduplicateAtoms() {
  std::vector<Atom> unique_atoms;
  for (const Atom& atom : atoms_) {
    if (std::find(unique_atoms.begin(), unique_atoms.end(), atom) ==
        unique_atoms.end()) {
      unique_atoms.push_back(atom);
    }
  }
  atoms_ = std::move(unique_atoms);
}

ConjunctiveQuery ApplyVariableMapping(const ConjunctiveQuery& query,
                                      const std::vector<VarId>& image) {
  // Renumber the image variables compactly, preserving relative order.
  std::vector<VarId> new_id(query.num_vars(), kInvalidVarId);
  ConjunctiveQuery result;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    VarId target = image[v];
    if (new_id[target] == kInvalidVarId) {
      new_id[target] = result.AddVariable(query.var_name(target));
    }
  }
  // Composite map old-var -> new compact id of its image.
  std::vector<VarId> composite(query.num_vars());
  for (VarId v = 0; v < query.num_vars(); ++v) composite[v] = new_id[image[v]];

  result.set_free_var(composite[query.free_var()]);
  for (const Atom& atom : query.atoms()) {
    result.AddAtom(atom.MapVariables(composite));
  }
  result.DeduplicateAtoms();
  return result;
}

}  // namespace oocq
