#include "query/atom.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace oocq {

namespace {

std::vector<ClassId> SortedUnique(std::vector<ClassId> classes) {
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

}  // namespace

Atom Atom::Range(VarId var, std::vector<ClassId> classes) {
  return Atom(AtomKind::kRange, Term::Var(var), Term::Var(var),
              SortedUnique(std::move(classes)));
}

Atom Atom::NonRange(VarId var, std::vector<ClassId> classes) {
  return Atom(AtomKind::kNonRange, Term::Var(var), Term::Var(var),
              SortedUnique(std::move(classes)));
}

Atom Atom::Equality(Term lhs, Term rhs) {
  if (rhs < lhs) std::swap(lhs, rhs);
  return Atom(AtomKind::kEquality, std::move(lhs), std::move(rhs), {});
}

Atom Atom::Inequality(Term lhs, Term rhs) {
  if (rhs < lhs) std::swap(lhs, rhs);
  return Atom(AtomKind::kInequality, std::move(lhs), std::move(rhs), {});
}

Atom Atom::Membership(VarId element, VarId set_var, std::string attr) {
  return Atom(AtomKind::kMembership, Term::Var(element),
              Term::Attr(set_var, std::move(attr)), {});
}

Atom Atom::NonMembership(VarId element, VarId set_var, std::string attr) {
  return Atom(AtomKind::kNonMembership, Term::Var(element),
              Term::Attr(set_var, std::move(attr)), {});
}

Atom Atom::Constant(VarId var, ConstantValue value) {
  Atom atom(AtomKind::kConstant, Term::Var(var), Term::Var(var), {});
  atom.constant_ = std::move(value);
  return atom;
}

Atom Atom::MapVariables(const std::vector<VarId>& image) const {
  switch (kind_) {
    case AtomKind::kRange:
      return Range(image[lhs_.var], classes_);
    case AtomKind::kNonRange:
      return NonRange(image[lhs_.var], classes_);
    case AtomKind::kEquality:
      return Equality(lhs_.WithVar(image[lhs_.var]),
                      rhs_.WithVar(image[rhs_.var]));
    case AtomKind::kInequality:
      return Inequality(lhs_.WithVar(image[lhs_.var]),
                        rhs_.WithVar(image[rhs_.var]));
    case AtomKind::kMembership:
      return Membership(image[lhs_.var], image[rhs_.var], rhs_.attr);
    case AtomKind::kNonMembership:
      return NonMembership(image[lhs_.var], image[rhs_.var], rhs_.attr);
    case AtomKind::kConstant:
      return Constant(image[lhs_.var], constant_);
  }
  return *this;
}

ClassId ConstantClassOf(const ConstantValue& value) {
  if (std::holds_alternative<int64_t>(value)) return kIntClassId;
  if (std::holds_alternative<double>(value)) return kRealClassId;
  return kStringClassId;
}

std::string ConstantToString(const ConstantValue& value) {
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&value)) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", *d);
    std::string text = buffer;
    if (text.find('.') == std::string::npos) text += ".0";
    return text;
  }
  std::string out = "\"";
  for (char c : std::get<std::string>(value)) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

const char* AtomKindOperator(AtomKind kind) {
  switch (kind) {
    case AtomKind::kRange:
    case AtomKind::kMembership:
      return "in";
    case AtomKind::kNonRange:
    case AtomKind::kNonMembership:
      return "notin";
    case AtomKind::kEquality:
    case AtomKind::kConstant:
      return "=";
    case AtomKind::kInequality:
      return "!=";
  }
  return "?";
}

}  // namespace oocq
