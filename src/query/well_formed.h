#ifndef OOCQ_QUERY_WELL_FORMED_H_
#define OOCQ_QUERY_WELL_FORMED_H_

#include "query/query.h"
#include "schema/schema.h"
#include "support/status.h"

namespace oocq {

/// Checks structural sanity independent of the paper's well-formedness:
/// valid variable ids, a declared free variable, known class ids, nonempty
/// class disjunctions and attribute names.
Status ValidateStructure(const Schema& schema, const ConjunctiveQuery& query);

/// Checks the paper's well-formedness conditions (§2.3):
///  (i)   every term is an object term or a set term, but not both;
///  (ii)  every object term of the form x.A is equated to some variable;
///  (iii) every variable has exactly one range atom.
/// Implies ValidateStructure.
Status CheckWellFormed(const Schema& schema, const ConjunctiveQuery& query);

/// Rewrites `query` into an equivalent well-formed query, applying the
/// paper's two remarks after §2.3:
///  - a variable with no range atom receives one over all terminal classes;
///  - a variable with several range atoms keeps the first; each extra
///    range atom is moved onto a fresh variable equated with it;
///  - an object term x.A not equated to any variable is equated to a fresh
///    variable ranging over the terminal descendants of the possible types
///    of A (or all terminal classes when A's type cannot be narrowed).
/// Fails if condition (i) is violated (that is a genuine type error the
/// rewrite cannot repair) or the query is structurally invalid.
StatusOr<ConjunctiveQuery> NormalizeToWellFormed(const Schema& schema,
                                                 const ConjunctiveQuery& query);

}  // namespace oocq

#endif  // OOCQ_QUERY_WELL_FORMED_H_
