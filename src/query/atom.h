#ifndef OOCQ_QUERY_ATOM_H_
#define OOCQ_QUERY_ATOM_H_

#include <string>
#include <variant>
#include <vector>

#include "query/term.h"
#include "schema/type.h"

namespace oocq {

/// A primitive literal bound to a variable by a kConstant atom.
using ConstantValue = std::variant<int64_t, double, std::string>;

/// The ConstantValue's built-in class (kIntClassId/kRealClassId/
/// kStringClassId).
ClassId ConstantClassOf(const ConstantValue& value);

/// Human-readable literal ("42", "2.5", "\"hi\"") that reparses.
std::string ConstantToString(const ConstantValue& value);

/// The six atomic formula kinds of the paper's query language (§2.2),
/// plus the constant-binding extension.
enum class AtomKind {
  /// x ∈ C1 ∨ ... ∨ Cn — x is an object of some Ci.
  kRange,
  /// x ∉ C1 ∨ ... ∨ Cn — x is a member of no Ci.
  kNonRange,
  /// f(x) = g(y) — the operands denote the identical object.
  kEquality,
  /// f(x) ≠ g(y) — the operands denote different objects.
  kInequality,
  /// x ∈ y.A — x is a member of the set object y.A.
  kMembership,
  /// x ∉ y.A — x is not a member of y.A.
  kNonMembership,
  /// x = <literal> — extension: x denotes the primitive object with this
  /// value. Treated as a positive atom; two distinct constants on one
  /// equivalence class are unsatisfiable, and normalization merges
  /// equivalence classes bound to the same constant so derivability sees
  /// the forced equalities.
  kConstant,
};

/// One atomic formula. Immutable; construct through the factory functions.
/// Equality and inequality atoms are stored with their operands in sorted
/// order so that syntactically symmetric atoms compare equal.
class Atom {
 public:
  static Atom Range(VarId var, std::vector<ClassId> classes);
  static Atom NonRange(VarId var, std::vector<ClassId> classes);
  static Atom Equality(Term lhs, Term rhs);
  static Atom Inequality(Term lhs, Term rhs);
  static Atom Membership(VarId element, VarId set_var, std::string attr);
  static Atom NonMembership(VarId element, VarId set_var, std::string attr);
  static Atom Constant(VarId var, ConstantValue value);

  AtomKind kind() const { return kind_; }

  /// True for range, equality, membership and constant atoms.
  bool is_positive() const {
    return kind_ == AtomKind::kRange || kind_ == AtomKind::kEquality ||
           kind_ == AtomKind::kMembership || kind_ == AtomKind::kConstant;
  }

  /// The constrained variable of a range/non-range atom, or the element
  /// variable of a (non-)membership atom.
  VarId var() const { return lhs_.var; }
  /// The class disjunction of a range/non-range atom (sorted, deduped).
  const std::vector<ClassId>& classes() const { return classes_; }

  /// Operands of an equality/inequality atom; for (non-)membership atoms
  /// lhs() is the element variable term and rhs() the set term y.A.
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }

  /// The set term y.A of a (non-)membership atom.
  const Term& set_term() const { return rhs_; }

  /// The literal of a kConstant atom.
  const ConstantValue& constant() const { return constant_; }

  /// The atom with every variable v replaced by image[v].
  Atom MapVariables(const std::vector<VarId>& image) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.kind_ == b.kind_ && a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_ &&
           a.classes_ == b.classes_ && a.constant_ == b.constant_;
  }

 private:
  Atom(AtomKind kind, Term lhs, Term rhs, std::vector<ClassId> classes)
      : kind_(kind),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        classes_(std::move(classes)) {}

  AtomKind kind_;
  Term lhs_;
  Term rhs_;
  std::vector<ClassId> classes_;
  ConstantValue constant_ = int64_t{0};
};

/// Human-readable operator for the atom kind ("in", "notin", "=", "!=").
const char* AtomKindOperator(AtomKind kind);

}  // namespace oocq

#endif  // OOCQ_QUERY_ATOM_H_
