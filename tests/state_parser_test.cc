// Tests for the state DSL parser and serializer.

#include <gtest/gtest.h>

#include "parser/state_parser.h"
#include "state/evaluation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class StateParserTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);

  State MustParse(const std::string& text) {
    StatusOr<State> state = ParseState(&schema_, text);
    EXPECT_TRUE(state.ok()) << state.status().ToString();
    return state.ok() ? *std::move(state) : State(&schema_);
  }
};

TEST_F(StateParserTest, EmptyState) {
  State state = MustParse("state { }");
  EXPECT_EQ(state.num_objects(), 0u);
}

TEST_F(StateParserTest, BasicObjects) {
  State state = MustParse(R"(
state {
  corolla: Auto { VehId = "COR-1"; Doors = 4; }
  alice: Discount { Name = "Alice"; VehRented = { corolla }; Rate = 0.1; }
})");
  ClassId auto_cls = schema_.FindClass("Auto").value();
  std::vector<Oid> autos = state.Extent(auto_cls);
  ASSERT_EQ(autos.size(), 1u);
  const Value* doors = state.GetAttribute(autos[0], "Doors");
  ASSERT_NE(doors, nullptr);
  EXPECT_EQ(doors->kind(), Value::Kind::kRef);
  EXPECT_EQ(state.DebugString(doors->ref()), "Int(4)");
}

TEST_F(StateParserTest, ForwardReferences) {
  State state = MustParse(R"(
state {
  alice: Discount { VehRented = { corolla, civic }; }
  corolla: Auto { }
  civic: Auto { }
})");
  ClassId discount = schema_.FindClass("Discount").value();
  std::vector<Oid> discounts = state.Extent(discount);
  ASSERT_EQ(discounts.size(), 1u);
  EXPECT_EQ(state.GetAttribute(discounts[0], "VehRented")->set().size(), 2u);
}

TEST_F(StateParserTest, ExplicitNullAndEmptySet) {
  State state = MustParse(R"(
state {
  a: Auto { VehId = null; }
  c: Regular { VehRented = { }; }
})");
  ClassId regular = schema_.FindClass("Regular").value();
  Oid client = state.Extent(regular)[0];
  const Value* rented = state.GetAttribute(client, "VehRented");
  EXPECT_EQ(rented->kind(), Value::Kind::kSet);
  EXPECT_TRUE(rented->set().empty());
}

TEST_F(StateParserTest, NegativeNumbers) {
  State state = MustParse(R"(
state {
  a: Auto { Doors = -2; Weight = -1.5; }
})");
  ClassId auto_cls = schema_.FindClass("Auto").value();
  Oid oid = state.Extent(auto_cls)[0];
  EXPECT_EQ(state.DebugString(state.GetAttribute(oid, "Doors")->ref()),
            "Int(-2)");
}

TEST_F(StateParserTest, StringEscapes) {
  State state = MustParse(R"(
state {
  a: Auto { VehId = "say \"hi\"\n"; }
})");
  ClassId auto_cls = schema_.FindClass("Auto").value();
  Oid oid = state.Extent(auto_cls)[0];
  Oid ref = state.GetAttribute(oid, "VehId")->ref();
  EXPECT_EQ(std::get<std::string>(state.payload(ref)), "say \"hi\"\n");
}

TEST_F(StateParserTest, OverflowingLiteralsRejectedNotThrown) {
  EXPECT_EQ(ParseState(&schema_, R"(
state { a: Auto { Doors = 99999999999999999999999999999; } })")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateParserTest, UndeclaredObjectRejected) {
  EXPECT_EQ(ParseState(&schema_, R"(
state { alice: Discount { VehRented = { ghost }; } })")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(StateParserTest, DuplicateNameRejected) {
  EXPECT_EQ(ParseState(&schema_, R"(
state { a: Auto { } a: Auto { } })")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateParserTest, NonTerminalClassRejected) {
  EXPECT_EQ(ParseState(&schema_, "state { v: Vehicle { } }").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateParserTest, UnknownClassRejected) {
  EXPECT_EQ(ParseState(&schema_, "state { v: Bike { } }").status().code(),
            StatusCode::kNotFound);
}

TEST_F(StateParserTest, UnknownAttributeRejected) {
  EXPECT_EQ(ParseState(&schema_, "state { a: Auto { Wings = 2; } }")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(StateParserTest, TypeErrorsRejectedByValidation) {
  // Doors expects Int, given a String.
  EXPECT_EQ(ParseState(&schema_, R"(state { a: Auto { Doors = "four"; } })")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Discount.VehRented is {Auto}; a Truck member is illegal.
  EXPECT_EQ(ParseState(&schema_, R"(
state {
  t: Truck { }
  d: Discount { VehRented = { t }; }
})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateParserTest, RoundTripPreservesAnswers) {
  State original = MustParse(R"(
state {
  corolla: Auto { VehId = "COR-1"; }
  f150: Truck { }
  alice: Discount { Name = "Alice"; VehRented = { corolla }; }
  bob: Regular { VehRented = { f150, corolla }; }
})");
  std::string serialized = StateToString(original);
  StatusOr<State> reparsed = ParseState(&schema_, serialized);
  OOCQ_ASSERT_OK(reparsed.status());

  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  std::vector<Oid> a = *Evaluate(original, query);
  std::vector<Oid> b = *Evaluate(*reparsed, query);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 1u) << serialized;
}

TEST_F(StateParserTest, RoundTripRealPrecision) {
  State original = MustParse(R"(
state { a: Auto { Weight = 0.30000000000000004; } })");
  StatusOr<State> reparsed = ParseState(&schema_, StateToString(original));
  OOCQ_ASSERT_OK(reparsed.status());
  ClassId auto_cls = schema_.FindClass("Auto").value();
  Oid o1 = original.Extent(auto_cls)[0];
  Oid o2 = reparsed->Extent(auto_cls)[0];
  EXPECT_EQ(std::get<double>(
                original.payload(original.GetAttribute(o1, "Weight")->ref())),
            std::get<double>(reparsed->payload(
                reparsed->GetAttribute(o2, "Weight")->ref())));
}

}  // namespace
}  // namespace oocq
