// Tests for the constants extension (`x.Name = "Alice"`): parsing,
// satisfiability, containment, minimization, evaluation (naive and
// indexed), witnesses, and canonicalization.

#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/containment.h"
#include "core/minimization.h"
#include "core/optimizer.h"
#include "core/satisfiability.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "state/indexed_evaluation.h"
#include "state/witness.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ConstantsTest : public ::testing::Test {
 protected:
  ConstantsTest() : state_(&schema_) {
    person_ = schema_.FindClass("Person").value();
  }

  Schema schema_ = MustParseSchema(R"(
schema Const {
  class Person { Name: String; Age: Int; Friends: {Person}; }
})");
  State state_;
  ClassId person_;
};

// --------------------------- parsing ---------------------------

TEST_F(ConstantsTest, DirectBindingOnVariable) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists n (x in Person & n in String & n = x.Name & "
               "n = \"Alice\") }");
  bool found = false;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kConstant) {
      found = true;
      EXPECT_EQ(atom.var(), query.FindVariable("n"));
      EXPECT_EQ(std::get<std::string>(atom.constant()), "Alice");
      EXPECT_TRUE(atom.is_positive());
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(query.num_vars(), 2u);  // No fresh variable needed.
}

TEST_F(ConstantsTest, AttributeComparisonDesugars) {
  // x.Name = "Alice" introduces a fresh String variable.
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in Person & x.Name = \"Alice\" }");
  EXPECT_EQ(query.num_vars(), 2u);
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, query).code() == StatusCode::kOk
                     ? Status::Ok()
                     : CheckWellFormed(schema_, query));
}

TEST_F(ConstantsTest, LiteralOnLeftAndInequality) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | x in Person & 42 = x.Age & x.Name != \"Bob\" }");
  int constants = 0, inequalities = 0;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kConstant) ++constants;
    if (atom.kind() == AtomKind::kInequality) ++inequalities;
  }
  EXPECT_EQ(constants, 2);
  EXPECT_EQ(inequalities, 1);
}

TEST_F(ConstantsTest, PrintedFormReparsesIdentically) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists n (x in Person & n in Int & n = x.Age & "
               "n = 42) }");
  std::string printed = QueryToString(schema_, query);
  ConjunctiveQuery reparsed = MustParseQuery(schema_, printed);
  EXPECT_EQ(reparsed, query) << printed;
}

// --------------------------- satisfiability ---------------------------

TEST_F(ConstantsTest, TwoDistinctConstantsUnsat) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | n in Int & n = 1 & n = 2 }");
  EXPECT_FALSE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, SameConstantTwiceSat) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | n in Int & n = 1 & n = 1 }");
  EXPECT_TRUE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, ConstantThroughEqualityChainUnsat) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | exists m (n in Int & m in Int & n = m & n = 1 & "
               "m = 2) }");
  EXPECT_FALSE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, ConstantOutsideRangeClassUnsat) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ n | n in String & n = 42 }");
  EXPECT_FALSE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, InequalityBetweenSameConstantUnsat) {
  // n and m are in different equivalence classes but both pinned to 5.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | exists m (n in Int & m in Int & n = 5 & m = 5 & "
               "n != m) }");
  EXPECT_FALSE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, InequalityBetweenDifferentConstantsSat) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | exists m (n in Int & m in Int & n = 5 & m = 7 & "
               "n != m) }");
  EXPECT_TRUE(CheckSatisfiable(schema_, query).satisfiable);
}

TEST_F(ConstantsTest, NormalizationMergesSameConstantClasses) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | exists m (n in Int & m in Int & n = 5 & m = 5) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  bool has_equality = false;
  for (const Atom& atom : normalized->atoms()) {
    if (atom.kind() == AtomKind::kEquality) has_equality = true;
  }
  EXPECT_TRUE(has_equality);
}

// --------------------------- containment ---------------------------

TEST_F(ConstantsTest, ConstantQueryContainedInUnconstrained) {
  EXPECT_TRUE(*Contained(
      schema_,
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age & n = 42) }"),
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age) }")));
  EXPECT_FALSE(*Contained(
      schema_,
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age) }"),
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age & n = 42) }")));
}

TEST_F(ConstantsTest, DifferentConstantsNotContained) {
  EXPECT_FALSE(*Contained(
      schema_,
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age & n = 42) }"),
      MustParseQuery(schema_, "{ x | exists n (x in Person & n in Int & "
                              "n = x.Age & n = 43) }")));
}

TEST_F(ConstantsTest, SameConstantForcesEqualityAcrossClasses) {
  // Q1 binds n and m separately to 5; Q2 asks for one shared witness of
  // x.Age and y.Age. Containment holds because normalization merges the
  // same-constant classes.
  ConjunctiveQuery q1 = MustParseQuery(
      schema_,
      "{ x | exists y exists n exists m (x in Person & y in Person & "
      "n in Int & m in Int & n = x.Age & m = y.Age & n = 5 & m = 5) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_,
      "{ x | exists y exists n (x in Person & y in Person & n in Int & "
      "n = x.Age & n = y.Age) }");
  EXPECT_TRUE(*Contained(schema_, q1, q2));
}

TEST_F(ConstantsTest, ConstantDefeatsInequalityRhs) {
  // Q2 requires x.Age != y.Age; Q1 pins both to 5.
  ConjunctiveQuery q1 = MustParseQuery(
      schema_,
      "{ x | exists y exists n exists m (x in Person & y in Person & "
      "n in Int & m in Int & n = x.Age & m = y.Age & n = 5 & m = 5) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_,
      "{ x | exists y exists n exists m (x in Person & y in Person & "
      "n in Int & m in Int & n = x.Age & m = y.Age & n != m) }");
  EXPECT_FALSE(*Contained(schema_, q1, q2));
}

TEST_F(ConstantsTest, DifferentConstantsSatisfyInequalityRhs) {
  ConjunctiveQuery q1 = MustParseQuery(
      schema_,
      "{ x | exists y exists n exists m (x in Person & y in Person & "
      "n in Int & m in Int & n = x.Age & m = y.Age & n = 5 & m = 7) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_,
      "{ x | exists y exists n exists m (x in Person & y in Person & "
      "n in Int & m in Int & n = x.Age & m = y.Age & n != m) }");
  EXPECT_TRUE(*Contained(schema_, q1, q2));
}

// --------------------------- evaluation ---------------------------

TEST_F(ConstantsTest, EvaluationFiltersByConstant) {
  Oid alice = *state_.AddObject(person_);
  Oid bob = *state_.AddObject(person_);
  ASSERT_TRUE(state_
                  .SetAttribute(alice, "Name",
                                Value::Ref(state_.InternString("Alice")))
                  .ok());
  ASSERT_TRUE(
      state_.SetAttribute(alice, "Age", Value::Ref(state_.InternInt(42)))
          .ok());
  ASSERT_TRUE(
      state_.SetAttribute(bob, "Name", Value::Ref(state_.InternString("Bob")))
          .ok());
  ASSERT_TRUE(
      state_.SetAttribute(bob, "Age", Value::Ref(state_.InternInt(42))).ok());

  ConjunctiveQuery by_name = *NormalizeToWellFormed(
      schema_,
      MustParseQuery(schema_, "{ x | x in Person & x.Name = \"Alice\" }"));
  EXPECT_EQ(*Evaluate(state_, by_name), std::vector<Oid>{alice});

  ConjunctiveQuery by_age = *NormalizeToWellFormed(
      schema_, MustParseQuery(schema_, "{ x | x in Person & x.Age = 42 }"));
  EXPECT_EQ(Evaluate(state_, by_age)->size(), 2u);

  ConjunctiveQuery no_match = *NormalizeToWellFormed(
      schema_, MustParseQuery(schema_, "{ x | x in Person & x.Age = 99 }"));
  EXPECT_TRUE(Evaluate(state_, no_match)->empty());

  // The indexed evaluator agrees and probes the interning table.
  StateIndex index(state_);
  EXPECT_EQ(*EvaluateIndexed(index, by_name), std::vector<Oid>{alice});
  EXPECT_EQ(EvaluateIndexed(index, by_age)->size(), 2u);
  EXPECT_TRUE(EvaluateIndexed(index, no_match)->empty());
}

// --------------------------- witness / canonical ---------------------------

TEST_F(ConstantsTest, CanonicalWitnessUsesTheLiteral) {
  ConjunctiveQuery query = *NormalizeToWellFormed(
      schema_,
      MustParseQuery(schema_, "{ x | x in Person & x.Name = \"Carol\" & "
                              "x.Age = 7 }"));
  StatusOr<State> witness = BuildCanonicalWitnessState(schema_, query);
  OOCQ_ASSERT_OK(witness.status());
  StatusOr<std::vector<Oid>> answers = Evaluate(*witness, query);
  OOCQ_ASSERT_OK(answers.status());
  EXPECT_EQ(answers->size(), 1u);
}

TEST_F(ConstantsTest, WitnessRespectsConstantInequalities) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ n | exists m (n in Int & m in Int & n = 5 & n != m) }");
  StatusOr<State> witness = BuildCanonicalWitnessState(schema_, query);
  OOCQ_ASSERT_OK(witness.status());
  EXPECT_FALSE(Evaluate(*witness, query)->empty());
}

TEST_F(ConstantsTest, CanonicalKeyDistinguishesConstants) {
  ConjunctiveQuery a =
      MustParseQuery(schema_, "{ n | n in Int & n = 1 }");
  ConjunctiveQuery b =
      MustParseQuery(schema_, "{ n | n in Int & n = 2 }");
  ConjunctiveQuery c =
      MustParseQuery(schema_, "{ m | m in Int & m = 1 }");
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(c));
}

// --------------------------- minimization ---------------------------

TEST_F(ConstantsTest, MinimizationFoldsSameConstantWitnesses) {
  // Two witnesses both pinned to 42 collapse to one.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists n exists m (x in Person & n in Int & m in Int & "
      "n = x.Age & m = x.Age & n = 42 & m = 42) }");
  StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema_, query);
  OOCQ_ASSERT_OK(report.status());
  ASSERT_EQ(report->minimized.disjuncts.size(), 1u);
  EXPECT_EQ(report->minimized.disjuncts[0].num_vars(), 2u);
}

TEST_F(ConstantsTest, OptimizerPipelineHandlesConstants) {
  QueryOptimizer optimizer(schema_);
  StatusOr<OptimizeReport> report = optimizer.OptimizeText(
      "{ x | exists f (x in Person & f in Person & f in x.Friends & "
      "f.Name = \"Alice\") }");
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->exact);
  EXPECT_EQ(report->optimized.disjuncts.size(), 1u);
}

}  // namespace
}  // namespace oocq
