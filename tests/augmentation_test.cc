// Unit tests for the consistent-augmentation enumeration (Thm 3.1).

#include <gtest/gtest.h>

#include <vector>

#include "core/augmentation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class AugmentationTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Aug {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; }
})");

  uint64_t Count(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<uint64_t> count =
        CountConsistentAugmentations(schema_, query, {});
    EXPECT_TRUE(count.ok()) << count.status().ToString();
    return count.ok() ? *count : 0;
  }
};

TEST_F(AugmentationTest, SingleVariableHasOnlyEmptyAugmentation) {
  EXPECT_EQ(Count("{ x | x in E }"), 1u);
}

TEST_F(AugmentationTest, TwoSameClassVariablesBellTwo) {
  // Partitions of {x, y}: discrete and merged.
  EXPECT_EQ(Count("{ x | exists y (x in E & y in E) }"), 2u);
}

TEST_F(AugmentationTest, ThreeSameClassVariablesBellThree) {
  // Bell(3) = 5.
  EXPECT_EQ(Count("{ x | exists y exists z (x in E & y in E & z in E) }"),
            5u);
}

TEST_F(AugmentationTest, CrossClassVariablesNeverMerge) {
  // E and F cannot merge: only the discrete partition.
  EXPECT_EQ(Count("{ x | exists y (x in E & y in F) }"), 1u);
}

TEST_F(AugmentationTest, MixedGroupsMultiply) {
  // {x,y} over E (Bell 2) x {u,v} over F (Bell 2) = 4.
  EXPECT_EQ(Count("{ x | exists y exists u exists v (x in E & y in E & "
                  "u in F & v in F) }"),
            4u);
}

TEST_F(AugmentationTest, InequalityBlocksMergedPartition) {
  // Merging x, y contradicts x != y: only the discrete partition remains.
  EXPECT_EQ(Count("{ x | exists y (x in E & y in E & x != y) }"), 1u);
}

TEST_F(AugmentationTest, CongruenceBlocksMerge) {
  // Example 1.3's engine: merging x, y forces s = t across E/F.
  EXPECT_EQ(
      Count("{ x | exists y exists s exists t (x in C & y in C & s in E & "
            "t in F & s = x.A & t = y.A) }"),
      1u);
}

TEST_F(AugmentationTest, AugmentedQueriesCarryEqualities) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in E) }");
  std::vector<size_t> atom_counts;
  StatusOr<bool> result = ForEachConsistentAugmentation(
      schema_, query, {}, [&](const ConjunctiveQuery& augmented) {
        atom_counts.push_back(augmented.atoms().size());
        EXPECT_EQ(augmented.num_vars(), query.num_vars());
        return true;
      });
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
  std::sort(atom_counts.begin(), atom_counts.end());
  // Discrete: 2 atoms; merged: 2 range atoms + 1 equality.
  EXPECT_EQ(atom_counts, (std::vector<size_t>{2, 3}));
}

TEST_F(AugmentationTest, EarlyStopPropagates) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in E) }");
  int calls = 0;
  StatusOr<bool> result = ForEachConsistentAugmentation(
      schema_, query, {}, [&](const ConjunctiveQuery&) {
        ++calls;
        return false;  // Stop immediately.
      });
  OOCQ_ASSERT_OK(result.status());
  EXPECT_FALSE(*result);
  EXPECT_EQ(calls, 1);
}

TEST_F(AugmentationTest, CapEnforced) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ a | exists b exists c exists d exists e (a in E & b in E & "
      "c in E & d in E & e in E) }");
  AugmentationOptions options;
  options.max_augmentations = 10;  // Bell(5) = 52 > 10.
  EXPECT_EQ(
      CountConsistentAugmentations(schema_, query, options).status().code(),
      StatusCode::kResourceExhausted);
}

TEST_F(AugmentationTest, BellNumbersForLargerGroups) {
  EXPECT_EQ(Count("{ a | exists b exists c exists d (a in E & b in E & "
                  "c in E & d in E) }"),
            15u);  // Bell(4).
}

}  // namespace
}  // namespace oocq
