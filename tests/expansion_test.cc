// Unit tests for the Prop 2.1 terminal expansion.

#include <gtest/gtest.h>

#include "core/expansion.h"
#include "core/satisfiability.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ExpansionTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Exp {
  class A { }
  class A1 under A { }
  class A2 under A { }
  class A3 under A { }
  class B { }
  class B1 under B { }
  class B2 under B { }
})");
};

TEST_F(ExpansionTest, TerminalQueryExpandsToItself) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in A1 }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  ASSERT_EQ(expansion->disjuncts.size(), 1u);
  EXPECT_EQ(expansion->disjuncts[0], query);
}

TEST_F(ExpansionTest, NonTerminalVariableFansOut) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in A }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
}

TEST_F(ExpansionTest, ProductAcrossVariables) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in A & y in B) }");
  ExpansionStats stats;
  StatusOr<UnionQuery> expansion =
      ExpandToTerminalQueries(schema_, query, {}, &stats);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 6u);
  EXPECT_EQ(stats.raw_disjuncts, 6u);
  EXPECT_EQ(stats.satisfiable_disjuncts, 6u);
}

TEST_F(ExpansionTest, DisjunctionRange) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in A1|B }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  // A1 + {B1, B2} = 3 choices.
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
}

TEST_F(ExpansionTest, DisjunctionOverlapDeduplicates) {
  // A and A2 overlap: terminal choices are {A1,A2,A3}, not 4.
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in A|A2 }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
}

TEST_F(ExpansionTest, AllDisjunctsAreTerminalAndSatisfiable) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in A & y in A & x = y) }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  // x = y forces equal terminal classes: 3 of the 9 combinations survive.
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
  for (const ConjunctiveQuery& disjunct : expansion->disjuncts) {
    EXPECT_TRUE(disjunct.IsTerminal(schema_));
    EXPECT_TRUE(CheckSatisfiable(schema_, disjunct).satisfiable);
  }
}

TEST_F(ExpansionTest, NonRangeAtomPrunesAndIsRemoved) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in A & x notin A2 }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  // A2 choice is unsatisfiable; survivors have the non-range atom removed.
  EXPECT_EQ(expansion->disjuncts.size(), 2u);
  for (const ConjunctiveQuery& disjunct : expansion->disjuncts) {
    EXPECT_EQ(disjunct.atoms().size(), 1u);
    EXPECT_NE(disjunct.RangeClassOf(0), schema_.FindClass("A2").value());
  }
}

TEST_F(ExpansionTest, RawModeKeepsUnsatisfiable) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in A & x notin A2 }");
  ExpansionOptions options;
  options.prune_unsatisfiable = false;
  StatusOr<UnionQuery> expansion =
      ExpandToTerminalQueries(schema_, query, options);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
}

TEST_F(ExpansionTest, DisjunctCapEnforced) {
  // 3 * 3 * 3 * 3 * 3 = 243 > 100.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ a | exists b exists c exists d exists e (a in A & b in A & c in A "
      "& d in A & e in A) }");
  ExpansionOptions options;
  options.max_disjuncts = 100;
  EXPECT_EQ(ExpandToTerminalQueries(schema_, query, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ExpansionTest, PrimitiveRangesStayPut) {
  Schema schema = MustParseSchema(R"(
schema P {
  class C { Name: String; }
})");
  ConjunctiveQuery query = MustParseQuery(
      schema, "{ x | exists n (x in C & n in String & n = x.Name) }");
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema, query);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 1u);
}

TEST_F(ExpansionTest, IllFormedQueryRejected) {
  ConjunctiveQuery query;
  query.AddVariable("x");  // No range atom.
  EXPECT_EQ(ExpandToTerminalQueries(schema_, query).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace oocq
