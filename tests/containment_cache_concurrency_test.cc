// Hammers the sharded ContainmentCache from many threads: verdicts must
// match the uncached Contained(), each distinct decision must be computed
// exactly once (compute-once: misses == distinct keys, independent of
// thread count), and the entry cap must hold. Labeled `concurrency` so a
// TSan build can run it via `ctest -L concurrency`.

#include "core/containment_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/containment.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

const char* const kSchema = R"(
schema CachePound {
  class D { }
  class E under D { }
  class C { A: D; S: {D}; }
  class C1 under C { }
  class C2 under C { B: E; }
})";

// Terminal well-formed queries the cache can decide directly.
std::vector<ConjunctiveQuery> DrawTerminalQueries(const Schema& schema,
                                                  uint64_t seed, int want) {
  std::mt19937_64 rng(seed);
  RandomQueryParams params;
  params.terminal_only = true;
  params.max_vars = 3;
  std::vector<ConjunctiveQuery> queries;
  while (static_cast<int>(queries.size()) < want) {
    ConjunctiveQuery q = GenerateRandomQuery(schema, rng, params);
    if (CheckWellFormed(schema, q).ok()) queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ContainmentCacheConcurrency, VerdictsMatchUncachedUnderContention) {
  Schema schema = MustParseSchema(kSchema);
  std::vector<ConjunctiveQuery> queries =
      DrawTerminalQueries(schema, /*seed=*/7, /*want=*/10);
  const size_t n = queries.size();

  // Serial ground truth, uncached.
  std::vector<std::vector<bool>> expected(n, std::vector<bool>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      StatusOr<bool> verdict = Contained(schema, queries[i], queries[j]);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      expected[i][j] = *verdict;
    }
  }

  ContainmentCache::Options options;
  options.num_shards = 4;
  ContainmentCache cache(&schema, options);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks every pair in a thread-specific order, so the
      // same keys are requested concurrently from different points.
      std::mt19937_64 rng(1000 + t);
      std::vector<size_t> order(n * n);
      for (size_t p = 0; p < order.size(); ++p) order[p] = p;
      std::shuffle(order.begin(), order.end(), rng);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (size_t p : order) {
          const size_t i = p / n, j = p % n;
          StatusOr<bool> verdict = cache.Contained(queries[i], queries[j]);
          if (!verdict.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else if (*verdict != expected[i][j]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Compute-once: every one of the kThreads * kRounds * n^2 lookups was
  // either a hit or a miss, and misses count distinct canonical keys only
  // — no pair was decided twice no matter how the threads interleaved.
  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kRoundsPerThread * n * n;
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  EXPECT_LE(cache.misses(), static_cast<uint64_t>(n * n));
  EXPECT_EQ(cache.size(), cache.misses());

  // A serial rerun over a fresh cache decides the same distinct keys:
  // miss counts are a function of the workload, not the schedule.
  ContainmentCache serial_cache(&schema, options);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      ASSERT_TRUE(serial_cache.Contained(queries[i], queries[j]).ok());
    }
  }
  EXPECT_EQ(cache.misses(), serial_cache.misses());
}

TEST(ContainmentCacheConcurrency, StatsAccumulateOnlyComputedWork) {
  Schema schema = MustParseSchema(kSchema);
  std::vector<ConjunctiveQuery> queries =
      DrawTerminalQueries(schema, /*seed=*/21, /*want=*/6);
  ContainmentCache cache(&schema);

  ContainmentStats first;
  for (const ConjunctiveQuery& q1 : queries) {
    for (const ConjunctiveQuery& q2 : queries) {
      ASSERT_TRUE(cache.Contained(q1, q2, &first).ok());
    }
  }
  // Second sweep: pure hits — no additional work counted.
  ContainmentStats second;
  for (const ConjunctiveQuery& q1 : queries) {
    for (const ConjunctiveQuery& q2 : queries) {
      ASSERT_TRUE(cache.Contained(q1, q2, &second).ok());
    }
  }
  EXPECT_EQ(second.augmentations, 0u);
  EXPECT_EQ(second.membership_subsets, 0u);
  EXPECT_EQ(second.mapping_searches, 0u);
  EXPECT_EQ(second.mapping_steps, 0u);
}

TEST(ContainmentCacheConcurrency, EntryCapBoundsResidentEntries) {
  Schema schema = MustParseSchema(kSchema);
  std::vector<ConjunctiveQuery> queries =
      DrawTerminalQueries(schema, /*seed=*/42, /*want=*/12);
  ContainmentCache::Options options;
  options.max_entries = 8;
  options.num_shards = 2;
  ContainmentCache cache(&schema, options);

  for (const ConjunctiveQuery& q1 : queries) {
    for (const ConjunctiveQuery& q2 : queries) {
      ASSERT_TRUE(cache.Contained(q1, q2).ok());
    }
  }
  EXPECT_LE(cache.size(), 8u);
  // Evicted keys recompute (misses exceed residency) but verdicts stay
  // correct against the uncached oracle.
  for (const ConjunctiveQuery& q1 : queries) {
    for (const ConjunctiveQuery& q2 : queries) {
      StatusOr<bool> cached = cache.Contained(q1, q2);
      StatusOr<bool> oracle = Contained(schema, q1, q2);
      ASSERT_TRUE(cached.ok());
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ(*cached, *oracle);
    }
  }
}

TEST(ContainmentCacheConcurrency, RenamedQueriesShareOneEntry) {
  Schema schema = MustParseSchema(kSchema);
  const ClassId c1 = schema.FindClassOrInvalid("C1");
  const ClassId e = schema.FindClassOrInvalid("E");

  // The same query twice, with different bound-variable names: the
  // canonical-form key makes them one cache entry.
  auto build = [&](const char* bound_name) {
    ConjunctiveQuery q;
    q.AddVariable("x");
    q.AddVariable(bound_name);
    q.set_free_var(0);
    q.AddAtom(Atom::Range(0, {c1}));
    q.AddAtom(Atom::Range(1, {e}));
    q.AddAtom(Atom::Membership(1, 0, "S"));
    return q;
  };
  ConjunctiveQuery a = build("y");
  ConjunctiveQuery b = build("z");

  ContainmentCache cache(&schema);
  ASSERT_TRUE(cache.Contained(a, a).ok());
  ASSERT_TRUE(cache.Contained(b, b).ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace oocq
