// The durable-catalog building blocks in isolation: the checksummed
// record codec, WAL append/replay with corrupt-tail truncation, and
// atomic snapshots — including a snapshot/WAL round trip over random
// queries from the property-test generator (docs/persistence.md).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/canonical.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "support/file.h"
#include "support/metrics.h"
#include "test_util.h"

namespace oocq::persist {
namespace {

using ::oocq::testing::kVehicleRentalSchema;
using ::oocq::testing::MustParseSchema;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "oocq_persist_" + name;
  // Tests re-run in the same temp dir; start from an empty directory.
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  EXPECT_TRUE(MakeDirs(dir).ok());
  return dir;
}

Record MakeRecord(RecordType type, const std::string& sid,
                  const std::string& name, const std::string& text,
                  bool verdict = false) {
  Record record;
  record.type = type;
  record.session_id = sid;
  record.name = name;
  record.text = text;
  record.verdict = verdict;
  return record;
}

TEST(CodecTest, RecordRoundTripAllTypes) {
  const std::vector<Record> records = {
      MakeRecord(RecordType::kCreateSession, "s1", "", "schema S { }"),
      MakeRecord(RecordType::kDefineQuery, "s1", "q1", "{ x | x in A }"),
      MakeRecord(RecordType::kSetState, "s1", "", "state { }"),
      MakeRecord(RecordType::kDropSession, "s1", "", ""),
      MakeRecord(RecordType::kCacheEntry, "s2", "", "12:abc\x00zzz", true),
  };
  std::string buffer;
  for (const Record& record : records) EncodeRecord(record, &buffer);

  size_t offset = 0;
  for (const Record& expected : records) {
    Record decoded;
    ASSERT_EQ(DecodeRecord(buffer, &offset, &decoded), DecodeResult::kOk);
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
  Record extra;
  EXPECT_EQ(DecodeRecord(buffer, &offset, &extra), DecodeResult::kNeedMore);
}

TEST(CodecTest, FlippedByteIsCorrupt) {
  std::string buffer;
  EncodeRecord(MakeRecord(RecordType::kDefineQuery, "s1", "q", "text"),
               &buffer);
  for (size_t i = 8; i < buffer.size(); ++i) {  // payload bytes only
    std::string damaged = buffer;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    size_t offset = 0;
    Record out;
    EXPECT_EQ(DecodeRecord(damaged, &offset, &out), DecodeResult::kCorrupt)
        << "flipping byte " << i << " went undetected";
    EXPECT_EQ(offset, 0u);
  }
}

TEST(CodecTest, TruncatedFrameNeedsMore) {
  std::string buffer;
  EncodeRecord(MakeRecord(RecordType::kSetState, "s1", "", "state { }"),
               &buffer);
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    size_t offset = 0;
    Record out;
    EXPECT_EQ(DecodeRecord(buffer.substr(0, cut), &offset, &out),
              DecodeResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(CodecTest, InsaneLengthIsCorruptNotAllocation) {
  std::string buffer;
  // payload_len = 0xFFFFFFFF with a bogus checksum.
  buffer.assign(8, '\xFF');
  size_t offset = 0;
  Record out;
  EXPECT_EQ(DecodeRecord(buffer, &offset, &out), DecodeResult::kCorrupt);
}

TEST(CodecTest, HeaderRoundTripAndMismatch) {
  std::string good;
  EncodeFileHeader(&good);
  size_t offset = 0;
  OOCQ_EXPECT_OK(DecodeFileHeader(good, &offset));
  EXPECT_EQ(offset, EncodedHeaderSize());

  // Truncated header: kInvalidArgument (callers treat as torn file).
  offset = 0;
  EXPECT_EQ(DecodeFileHeader(good.substr(0, good.size() - 1), &offset).code(),
            StatusCode::kInvalidArgument);

  // A different engine fingerprint: kFailedPrecondition (cold start).
  std::string stale;
  EncodeFileHeader(&stale, "0000000000000000");
  offset = 0;
  EXPECT_EQ(DecodeFileHeader(stale, &offset).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CodecTest, FingerprintIsStable) {
  EXPECT_EQ(EngineFingerprint(), EngineFingerprint());
  EXPECT_EQ(EngineFingerprint().size(), 16u);  // 64-bit hash, hex
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  const std::string path = dir + "/wal.log";
  std::vector<Record> written;
  {
    StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(path);
    OOCQ_ASSERT_OK(wal.status());
    for (int i = 0; i < 20; ++i) {
      Record record = MakeRecord(RecordType::kDefineQuery, "s1",
                                 "q" + std::to_string(i),
                                 "{ x | x in Auto }", i % 2 == 0);
      OOCQ_ASSERT_OK((*wal)->Append(record));
      written.push_back(std::move(record));
    }
    EXPECT_EQ((*wal)->appended(), 20u);
    EXPECT_GE((*wal)->syncs(), 1u);
  }
  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  OOCQ_ASSERT_OK(replayed.status());
  EXPECT_EQ(replayed->records, written);
  EXPECT_EQ(replayed->truncated_bytes, 0u);
}

TEST(WalTest, LatencyHistogramCountsMatchAppendsAndSyncs) {
  // The WAL's telemetry contract (docs/observability.md#stats): every
  // acked append records exactly one persist/wal_append_us sample (its
  // latency includes the covering fsync), and every physical fsync round
  // records exactly one persist/fsync_us sample — so histogram counts are
  // cross-checkable against the WAL's own appended()/syncs() counters.
  const std::string dir = FreshDir("wal_histograms");
  const std::string path = dir + "/wal.log";
  MetricsRegistry registry;
  MetricsScope scope(&registry);
  ASSERT_TRUE(scope.active());

  uint64_t appended = 0;
  uint64_t syncs = 0;
  {
    StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(path);
    OOCQ_ASSERT_OK(wal.status());
    for (int i = 0; i < 16; ++i) {
      OOCQ_ASSERT_OK((*wal)->Append(
          MakeRecord(RecordType::kDefineQuery, "s1", "q" + std::to_string(i),
                     "{ x | x in Auto }")));
    }
    appended = (*wal)->appended();
    syncs = (*wal)->syncs();
  }
  ASSERT_EQ(appended, 16u);
  ASSERT_GE(syncs, 1u);

  const MetricsRegistry::HistogramSnapshot* append_us = nullptr;
  const MetricsRegistry::HistogramSnapshot* fsync_us = nullptr;
  MetricsRegistry::Snapshot snap = registry.Snap();
  for (const auto& histogram : snap.histograms) {
    if (histogram.name == "persist/wal_append_us") append_us = &histogram;
    if (histogram.name == "persist/fsync_us") fsync_us = &histogram;
  }
  ASSERT_NE(append_us, nullptr);
  ASSERT_NE(fsync_us, nullptr);
  EXPECT_EQ(append_us->count, appended);
  EXPECT_EQ(fsync_us->count, syncs);
}

TEST(WalTest, CorruptTailIsTruncatedOnReplay) {
  const std::string dir = FreshDir("wal_torn");
  const std::string path = dir + "/wal.log";
  {
    StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(path);
    OOCQ_ASSERT_OK(wal.status());
    for (int i = 0; i < 3; ++i) {
      OOCQ_ASSERT_OK((*wal)->Append(
          MakeRecord(RecordType::kCreateSession, "s" + std::to_string(i), "",
                     "schema S { }")));
    }
  }
  // A torn append: half a frame's worth of garbage at the end.
  StatusOr<std::string> contents = ReadFileToString(path);
  OOCQ_ASSERT_OK(contents.status());
  const size_t intact = contents->size();
  OOCQ_ASSERT_OK(
      WriteFileDurable(path, *contents + std::string(13, '\x7f')));

  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  OOCQ_ASSERT_OK(replayed.status());
  EXPECT_EQ(replayed->records.size(), 3u);
  EXPECT_EQ(replayed->truncated_bytes, 13u);
  // The file is healed: a second replay sees a clean log.
  StatusOr<std::string> after = ReadFileToString(path);
  OOCQ_ASSERT_OK(after.status());
  EXPECT_EQ(after->size(), intact);
}

TEST(WalTest, InjectedFaultTearsExactlyOneAppend) {
  const std::string dir = FreshDir("wal_fault");
  const std::string path = dir + "/wal.log";
  WalOptions options;
  options.group_commit_window_us = 0;
  options.fail_after_bytes = 200;  // dies somewhere inside an append
  size_t acked = 0;
  {
    StatusOr<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, options);
    OOCQ_ASSERT_OK(wal.status());
    for (int i = 0; i < 10; ++i) {
      Status appended = (*wal)->Append(MakeRecord(
          RecordType::kDefineQuery, "s1", "query_name_" + std::to_string(i),
          "{ x | x in Auto & x in Vehicle }"));
      if (!appended.ok()) break;
      ++acked;
    }
    // The log refuses appends after the torn write.
    EXPECT_FALSE(
        (*wal)
            ->Append(MakeRecord(RecordType::kDropSession, "s1", "", ""))
            .ok());
  }
  ASSERT_LT(acked, 10u);
  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  OOCQ_ASSERT_OK(replayed.status());
  // Exactly the acked appends survive; the torn frame is gone.
  EXPECT_EQ(replayed->records.size(), acked);
}

TEST(WalTest, ResetCompactsToBareHeader) {
  const std::string dir = FreshDir("wal_reset");
  const std::string path = dir + "/wal.log";
  StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(path);
  OOCQ_ASSERT_OK(wal.status());
  OOCQ_ASSERT_OK((*wal)->Append(
      MakeRecord(RecordType::kCreateSession, "s1", "", "schema S { }")));
  OOCQ_ASSERT_OK((*wal)->Reset());
  Record after_reset =
      MakeRecord(RecordType::kCreateSession, "s2", "", "schema T { }");
  OOCQ_ASSERT_OK((*wal)->Append(after_reset));

  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  OOCQ_ASSERT_OK(replayed.status());
  ASSERT_EQ(replayed->records.size(), 1u);
  EXPECT_EQ(replayed->records[0], after_reset);
}

TEST(WalTest, MismatchedFingerprintRejectsWholeFile) {
  const std::string dir = FreshDir("wal_stale");
  const std::string path = dir + "/wal.log";
  std::string stale;
  EncodeFileHeader(&stale, "feedfacefeedface");
  EncodeRecord(MakeRecord(RecordType::kCreateSession, "s1", "", "schema"),
               &stale);
  OOCQ_ASSERT_OK(WriteFileDurable(path, stale));
  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  EXPECT_EQ(replayed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, WriteLoadNewestWins) {
  const std::string dir = FreshDir("snap_newest");
  std::vector<Record> old_records = {
      MakeRecord(RecordType::kCreateSession, "s1", "", "schema A { }")};
  std::vector<Record> new_records = {
      MakeRecord(RecordType::kCreateSession, "s1", "", "schema A { }"),
      MakeRecord(RecordType::kDefineQuery, "s1", "q", "{ x | x in A }")};
  OOCQ_ASSERT_OK(WriteSnapshot(dir, 1, old_records));
  OOCQ_ASSERT_OK(WriteSnapshot(dir, 2, new_records));
  EXPECT_EQ(LatestSnapshotSeq(dir), 2u);

  StatusOr<LoadedSnapshot> loaded = LoadLatestSnapshot(dir);
  OOCQ_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->seq, 2u);
  EXPECT_EQ(loaded->records, new_records);

  RemoveSnapshotsBefore(dir, 2);
  loaded = LoadLatestSnapshot(dir);
  OOCQ_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->seq, 2u);  // seq 1 removed, 2 still loads
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlder) {
  const std::string dir = FreshDir("snap_fallback");
  std::vector<Record> good = {
      MakeRecord(RecordType::kCreateSession, "s1", "", "schema A { }")};
  OOCQ_ASSERT_OK(WriteSnapshot(dir, 1, good));
  OOCQ_ASSERT_OK(WriteSnapshot(dir, 2, good));
  // Damage snapshot 2 in the middle of its frame.
  const std::string newest = SnapshotPath(dir, 2);
  StatusOr<std::string> contents = ReadFileToString(newest);
  OOCQ_ASSERT_OK(contents.status());
  std::string damaged = *contents;
  damaged[damaged.size() / 2] ^= 0x20;
  OOCQ_ASSERT_OK(WriteFileDurable(newest, damaged));

  StatusOr<LoadedSnapshot> loaded = LoadLatestSnapshot(dir);
  OOCQ_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(loaded->records, good);
  ASSERT_EQ(loaded->skipped.size(), 1u);
  EXPECT_NE(loaded->skipped[0].find("snapshot.000002"), std::string::npos);
}

TEST(SnapshotTest, MissingDirectoryIsEmptyNotError) {
  StatusOr<LoadedSnapshot> loaded =
      LoadLatestSnapshot(::testing::TempDir() + "oocq_persist_nonexistent_x");
  OOCQ_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->seq, 0u);
  EXPECT_TRUE(loaded->records.empty());
}

// The satellite round trip: random queries (canonical-pair cache keys and
// query texts alike) survive snapshot + WAL persistence byte-for-byte.
TEST(SnapshotTest, RandomQueryRoundTripThroughSnapshotAndWal) {
  const Schema schema = MustParseSchema(kVehicleRentalSchema);
  std::mt19937_64 rng(20260805);
  testing::RandomQueryParams params;
  params.max_vars = 3;
  params.max_extra_atoms = 3;

  const std::string dir = FreshDir("snap_random");
  std::vector<Record> records;
  for (int i = 0; i < 40; ++i) {
    ConjunctiveQuery query = testing::GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, query).ok()) continue;
    ConjunctiveQuery query2 = testing::GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, query2).ok()) continue;
    records.push_back(MakeRecord(RecordType::kDefineQuery, "s1",
                                 "q" + std::to_string(i),
                                 QueryToString(schema, query)));
    // Cache keys are binary-ish canonical strings; they must round-trip
    // untouched too.
    const std::string k1 = CanonicalKey(query);
    records.push_back(MakeRecord(
        RecordType::kCacheEntry, "s1", "",
        std::to_string(k1.size()) + ":" + k1 + CanonicalKey(query2),
        i % 2 == 0));
  }
  ASSERT_GT(records.size(), 10u);

  // Half into a snapshot, half into the WAL — as a real crash leaves them.
  const size_t half = records.size() / 2;
  std::vector<Record> in_snapshot(records.begin(), records.begin() + half);
  OOCQ_ASSERT_OK(WriteSnapshot(dir, 7, in_snapshot));
  {
    StatusOr<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(dir + "/wal.log");
    OOCQ_ASSERT_OK(wal.status());
    for (size_t i = half; i < records.size(); ++i) {
      OOCQ_ASSERT_OK((*wal)->Append(records[i]));
    }
  }

  StatusOr<LoadedSnapshot> snapshot = LoadLatestSnapshot(dir);
  OOCQ_ASSERT_OK(snapshot.status());
  StatusOr<WriteAheadLog::ReplayResult> wal_replay =
      WriteAheadLog::Replay(dir + "/wal.log");
  OOCQ_ASSERT_OK(wal_replay.status());

  std::vector<Record> recovered = snapshot->records;
  recovered.insert(recovered.end(), wal_replay->records.begin(),
                   wal_replay->records.end());
  ASSERT_EQ(recovered, records);

  // Query texts re-parse to the same canonical form.
  for (const Record& record : recovered) {
    if (record.type != RecordType::kDefineQuery) continue;
    StatusOr<ConjunctiveQuery> reparsed = ParseQuery(schema, record.text);
    OOCQ_ASSERT_OK(reparsed.status());
  }
}

}  // namespace
}  // namespace oocq::persist
