// Tests for query canonicalization: renamings collapse to one canonical
// form; distinct queries keep distinct keys; random renaming property.

#include "core/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "random_query.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

class CanonicalTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Can {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: D; S: {D}; }
})");
};

TEST_F(CanonicalTest, RenamedQueriesShareKey) {
  ConjunctiveQuery a = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A & u in x.S) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_, "{ q | exists w (q in C & w in E & w = q.A & w in q.S) }");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
  EXPECT_EQ(CanonicalizeQuery(a), CanonicalizeQuery(b));
}

TEST_F(CanonicalTest, QuantifierOrderIrrelevant) {
  ConjunctiveQuery a = MustParseQuery(
      schema_,
      "{ x | exists u exists w (x in C & u in E & w in F & u = x.A & "
      "w = x.B) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_,
      "{ x | exists w exists u (x in C & u in F & w in E & w = x.A & "
      "u = x.B) }");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, AtomOrderIrrelevant) {
  ConjunctiveQuery a = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A & u in x.S) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_, "{ x | exists u (u in x.S & u = x.A & u in E & x in C) }");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, DifferentQueriesDifferentKeys) {
  const char* queries[] = {
      "{ x | x in E }",
      "{ x | x in F }",
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u (x in C & u in E & u = x.B) }",
      "{ x | exists u (x in C & u in E & u in x.S) }",
      "{ x | exists u (x in C & u in E & u notin x.S) }",
      "{ x | exists u exists w (x in C & u in E & w in E & u in x.S & "
      "w in x.S) }",
  };
  std::set<std::string> keys;
  for (const char* text : queries) {
    keys.insert(CanonicalKey(MustParseQuery(schema_, text)));
  }
  EXPECT_EQ(keys.size(), std::size(queries));
}

TEST_F(CanonicalTest, FreeVariableDistinguishes) {
  // Same atoms, different answer variable.
  ConjunctiveQuery a = MustParseQuery(
      schema_, "{ x | exists u (x in E & u in E & x != u) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_, "{ u | exists x (u in E & x in E & x != u) }");
  // These ARE renamings of each other (swap names): keys equal.
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));

  ConjunctiveQuery c = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A) }");
  ConjunctiveQuery d = MustParseQuery(
      schema_, "{ u | exists x (x in C & u in E & u = x.A) }");
  EXPECT_NE(CanonicalKey(c), CanonicalKey(d));
}

TEST_F(CanonicalTest, SymmetricTieGroupsResolve) {
  // u and w are fully interchangeable: all 2 orderings must canonicalize
  // identically.
  ConjunctiveQuery a = MustParseQuery(
      schema_,
      "{ x | exists u exists w (x in C & u in E & w in E & u in x.S & "
      "w in x.S) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_,
      "{ x | exists w exists u (x in C & u in E & w in E & w in x.S & "
      "u in x.S) }");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, CanonicalFormIsIdempotent) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists w (x in C & u in E & w in F & u = x.A & "
      "w = x.B & u in x.S) }");
  ConjunctiveQuery once = CanonicalizeQuery(query);
  ConjunctiveQuery twice = CanonicalizeQuery(once);
  EXPECT_EQ(once, twice);
}

class CanonicalProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema CanProp {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
};

TEST_P(CanonicalProperty, RandomRenamingsCollapse) {
  std::mt19937_64 rng(GetParam());
  RandomQueryParams params;
  params.allow_negative = true;
  params.max_vars = 5;
  for (int round = 0; round < 15; ++round) {
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);

    // Random bijective renaming: permute variable ids.
    std::vector<VarId> perm(query.num_vars());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    ConjunctiveQuery renamed;
    std::vector<VarId> inverse(perm.size());
    for (VarId v = 0; v < perm.size(); ++v) inverse[perm[v]] = v;
    for (VarId v = 0; v < perm.size(); ++v) {
      renamed.AddVariable("r" + std::to_string(v));
    }
    renamed.set_free_var(perm[query.free_var()]);
    for (const Atom& atom : query.atoms()) {
      renamed.AddAtom(atom.MapVariables(perm));
    }

    EXPECT_EQ(CanonicalKey(query), CanonicalKey(renamed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace oocq
