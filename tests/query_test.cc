// Unit tests for the query AST: atoms, accessors, variable mappings.

#include <gtest/gtest.h>

#include "query/printer.h"
#include "query/query.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

TEST(Atom, RangeSortsAndDedupesClasses) {
  Atom atom = Atom::Range(0, {5, 3, 5, 4});
  EXPECT_EQ(atom.classes(), (std::vector<ClassId>{3, 4, 5}));
  EXPECT_EQ(atom.kind(), AtomKind::kRange);
  EXPECT_EQ(atom.var(), 0u);
  EXPECT_TRUE(atom.is_positive());
}

TEST(Atom, EqualityIsSymmetric) {
  Atom a = Atom::Equality(Term::Var(1), Term::Attr(0, "A"));
  Atom b = Atom::Equality(Term::Attr(0, "A"), Term::Var(1));
  EXPECT_EQ(a, b);
}

TEST(Atom, InequalityIsSymmetric) {
  Atom a = Atom::Inequality(Term::Var(2), Term::Var(1));
  Atom b = Atom::Inequality(Term::Var(1), Term::Var(2));
  EXPECT_EQ(a, b);
}

TEST(Atom, EqualityAndInequalityDiffer) {
  EXPECT_FALSE(Atom::Equality(Term::Var(0), Term::Var(1)) ==
               Atom::Inequality(Term::Var(0), Term::Var(1)));
}

TEST(Atom, MembershipAccessors) {
  Atom atom = Atom::Membership(3, 1, "Parts");
  EXPECT_EQ(atom.kind(), AtomKind::kMembership);
  EXPECT_EQ(atom.var(), 3u);
  EXPECT_EQ(atom.set_term().var, 1u);
  EXPECT_EQ(atom.set_term().attr, "Parts");
  EXPECT_TRUE(atom.is_positive());
  EXPECT_FALSE(Atom::NonMembership(3, 1, "Parts").is_positive());
}

TEST(Atom, MapVariables) {
  std::vector<VarId> image = {2, 0, 1};
  Atom eq = Atom::Equality(Term::Var(0), Term::Attr(1, "A"));
  Atom mapped = eq.MapVariables(image);
  EXPECT_EQ(mapped, Atom::Equality(Term::Var(2), Term::Attr(0, "A")));

  Atom mem = Atom::Membership(0, 2, "S");
  EXPECT_EQ(mem.MapVariables(image), Atom::Membership(2, 1, "S"));

  Atom range = Atom::Range(1, {7});
  EXPECT_EQ(range.MapVariables(image), Atom::Range(0, {7}));
}

TEST(Term, Ordering) {
  EXPECT_TRUE(Term::Var(0) < Term::Var(1));
  EXPECT_TRUE(Term::Var(0) < Term::Attr(0, "A"));
  EXPECT_TRUE(Term::Attr(0, "A") < Term::Attr(0, "B"));
  EXPECT_FALSE(Term::Attr(0, "A") < Term::Attr(0, "A"));
}

TEST(ConjunctiveQuery, FirstVariableIsFreeByDefault) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddVariable("y");
  EXPECT_EQ(query.free_var(), x);
  EXPECT_EQ(query.num_vars(), 2u);
  EXPECT_EQ(query.var_name(x), "x");
  EXPECT_EQ(query.FindVariable("y"), 1u);
  EXPECT_EQ(query.FindVariable("zz"), kInvalidVarId);
}

TEST(ConjunctiveQuery, RangeAtomLookup) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {3}));
  query.AddAtom(Atom::Range(y, {4}));
  query.AddAtom(Atom::Range(y, {5}));
  EXPECT_EQ(query.CountRangeAtomsOf(x), 1);
  EXPECT_EQ(query.CountRangeAtomsOf(y), 2);
  ASSERT_NE(query.RangeAtomOf(x), nullptr);
  EXPECT_EQ(query.RangeAtomOf(x)->classes(), std::vector<ClassId>{3});
  EXPECT_EQ(query.RangeClassOf(x), 3u);
}

TEST(ConjunctiveQuery, IsPositive) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {3}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  EXPECT_TRUE(query.IsPositive());
  query.AddAtom(Atom::Inequality(Term::Var(x), Term::Var(y)));
  EXPECT_FALSE(query.IsPositive());
}

TEST(ConjunctiveQuery, IsTerminal) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  ConjunctiveQuery terminal = MustParseQuery(schema, "{ x | x in Auto }");
  EXPECT_TRUE(terminal.IsTerminal(schema));
  ConjunctiveQuery non_terminal = MustParseQuery(schema, "{ x | x in Vehicle }");
  EXPECT_FALSE(non_terminal.IsTerminal(schema));
  ConjunctiveQuery disjunctive =
      MustParseQuery(schema, "{ x | x in Auto|Truck }");
  EXPECT_FALSE(disjunctive.IsTerminal(schema));
}

TEST(ConjunctiveQuery, DeduplicateAtoms) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {3}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  query.AddAtom(Atom::Equality(Term::Var(y), Term::Var(x)));  // Symmetric dup.
  query.AddAtom(Atom::Range(x, {3}));                          // Exact dup.
  query.DeduplicateAtoms();
  EXPECT_EQ(query.atoms().size(), 2u);
}

TEST(ApplyVariableMapping, CollapsesVariables) {
  // { x | exists y exists s (...) } with s -> y.
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  VarId s = query.AddVariable("s");
  query.AddAtom(Atom::Range(x, {3}));
  query.AddAtom(Atom::Range(y, {4}));
  query.AddAtom(Atom::Range(s, {4}));
  query.AddAtom(Atom::Membership(y, x, "A"));
  query.AddAtom(Atom::Membership(s, x, "A"));

  ConjunctiveQuery folded = ApplyVariableMapping(query, {x, y, y});
  EXPECT_EQ(folded.num_vars(), 2u);
  EXPECT_EQ(folded.free_var(), 0u);
  // Range atoms collapse to two, the two memberships become one.
  EXPECT_EQ(folded.atoms().size(), 3u);
}

TEST(ApplyVariableMapping, IdentityKeepsQuery) {
  Schema schema = MustParseSchema(testing::kExample33Schema);
  ConjunctiveQuery query = MustParseQuery(
      schema, "{ x | exists y (x in T1 & y in T2 & x in y.A) }");
  ConjunctiveQuery mapped = ApplyVariableMapping(query, {0, 1});
  EXPECT_EQ(mapped, query);
}

TEST(ApplyVariableMapping, FreeVariableFollowsMapping) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {3}));
  query.AddAtom(Atom::Range(y, {3}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  // Map the free variable onto y.
  ConjunctiveQuery folded = ApplyVariableMapping(query, {y, y});
  EXPECT_EQ(folded.num_vars(), 1u);
  EXPECT_EQ(folded.free_var(), 0u);
  EXPECT_EQ(folded.var_name(0), "y");
}

TEST(Printer, QueryRoundTripsThroughParser) {
  Schema schema = MustParseSchema(testing::kPartitionSchema);
  const char* text =
      "{ x | exists y exists s (x in N1 & y in G & s in H & y = x.B & "
      "y in x.A & s in x.A) }";
  ConjunctiveQuery query = MustParseQuery(schema, text);
  std::string printed = QueryToString(schema, query);
  ConjunctiveQuery reparsed = MustParseQuery(schema, printed);
  EXPECT_EQ(reparsed, query) << printed;
}

TEST(Printer, AtomForms) {
  Schema schema = MustParseSchema(testing::kExample33Schema);
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists y (x in T1 & y in T2 & x notin y.A & x != y) }");
  std::string printed = QueryToString(schema, query);
  EXPECT_NE(printed.find("x notin y.A"), std::string::npos) << printed;
  EXPECT_NE(printed.find("x != y"), std::string::npos) << printed;
  EXPECT_NE(printed.find("x in T1"), std::string::npos) << printed;
}

TEST(Printer, UnionQuery) {
  Schema schema = MustParseSchema(testing::kExample32Schema);
  StatusOr<UnionQuery> parsed =
      ParseUnionQuery(schema, "{ x | x in C } union { y | y in C }");
  OOCQ_ASSERT_OK(parsed.status());
  std::string printed = UnionQueryToString(schema, *parsed);
  EXPECT_NE(printed.find(" union "), std::string::npos);
  UnionQuery empty;
  EXPECT_EQ(UnionQueryToString(schema, empty), "{}");
}

}  // namespace
}  // namespace oocq
