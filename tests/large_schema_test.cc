// Stress tests over a programmatically generated large schema (deep and
// wide hierarchies, many attributes): the algorithms must stay correct
// and within their documented complexity at realistic schema scale.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/expansion.h"
#include "core/minimization.h"
#include "core/optimizer.h"
#include "core/satisfiability.h"
#include "schema/schema_builder.h"
#include "schema/schema_printer.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;

/// Builds a schema with a depth-`depth`, fanout-`fanout` class tree under
/// a root "Part", each class adding one attribute, plus a container class
/// with set attributes at every level.
Schema BuildLargeSchema(int depth, int fanout) {
  SchemaBuilder builder;
  builder.AddClass("Part");
  builder.AddAttribute("Part", "PartId", TypeName::Class("String"));
  std::vector<std::string> frontier = {"Part"};
  int counter = 0;
  for (int level = 0; level < depth; ++level) {
    std::vector<std::string> next;
    for (const std::string& parent : frontier) {
      for (int i = 0; i < fanout; ++i) {
        std::string name = "P" + std::to_string(counter++);
        builder.AddClass(name, {parent});
        builder.AddAttribute(name, "Attr" + name, TypeName::Class("Int"));
        next.push_back(name);
      }
    }
    frontier = std::move(next);
  }
  builder.AddClass("Assembly");
  builder.AddAttribute("Assembly", "Components", TypeName::SetOf("Part"));
  builder.AddAttribute("Assembly", "Root", TypeName::Class("Part"));
  return *builder.Build();
}

TEST(LargeSchema, BuildsAndResolves) {
  Schema schema = BuildLargeSchema(/*depth=*/4, /*fanout=*/3);
  // 1 + 3 + 9 + 27 + 81 = 121 part classes + Assembly.
  EXPECT_EQ(schema.UserClasses().size(), 122u);
  ClassId part = schema.FindClass("Part").value();
  EXPECT_EQ(schema.TerminalDescendants(part).size(), 81u);
  // Every leaf inherits PartId and its whole ancestor chain's attributes.
  ClassId leaf = schema.TerminalDescendants(part).back();
  EXPECT_NE(schema.FindAttribute(leaf, "PartId"), nullptr);
  EXPECT_EQ(schema.class_info(leaf).all_attributes.size(), 1u + 4u);
}

TEST(LargeSchema, PrinterRoundTripsAtScale) {
  Schema schema = BuildLargeSchema(3, 4);
  std::string printed = SchemaToString(schema);
  StatusOr<Schema> reparsed = ParseSchema(printed);
  OOCQ_ASSERT_OK(reparsed.status());
  EXPECT_EQ(reparsed->num_classes(), schema.num_classes());
}

TEST(LargeSchema, ExpansionAcross81Terminals) {
  Schema schema = BuildLargeSchema(4, 3);
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists a (x in Part & a in Assembly & x in a.Components) }");
  ExpansionStats stats;
  StatusOr<UnionQuery> expansion =
      ExpandToTerminalQueries(schema, query, {}, &stats);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(stats.raw_disjuncts, 81u);
  EXPECT_EQ(expansion->disjuncts.size(), 81u);
}

TEST(LargeSchema, AttributePinsSingleSubtree) {
  Schema schema = BuildLargeSchema(4, 3);
  // AttrP0 exists only in P0's subtree: 27 of the 81 leaves qualify.
  ConjunctiveQuery query = MustParseQuery(
      schema, "{ x | exists n (x in Part & n in Int & n = x.AttrP0) }");
  StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema, query);
  OOCQ_ASSERT_OK(report.status());
  EXPECT_EQ(report->raw_disjuncts, 81u);
  EXPECT_EQ(report->satisfiable_disjuncts, 27u);
}

TEST(LargeSchema, DeepAttributePinsOneLeaf) {
  Schema schema = BuildLargeSchema(4, 3);
  // Pinning one attribute from every level of one chain isolates a
  // single terminal class.
  ClassId part = schema.FindClass("Part").value();
  ClassId leaf = schema.TerminalDescendants(part).front();
  std::string text = "{ x | ";
  const auto& attrs = schema.class_info(leaf).all_attributes;
  int quantified = 0;
  std::string matrix = "x in Part";
  for (const AttributeDef& attr : attrs) {
    if (attr.name == "PartId") continue;
    std::string v = "n" + std::to_string(quantified++);
    text += "exists " + v + " ";
    matrix += " & " + v + " in Int & " + v + " = x." + attr.name;
  }
  text += "(" + matrix + ") }";
  ConjunctiveQuery query = MustParseQuery(schema, text);
  StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema, query);
  OOCQ_ASSERT_OK(report.status());
  ASSERT_EQ(report->minimized.disjuncts.size(), 1u);
  EXPECT_EQ(report->minimized.disjuncts[0].RangeClassOf(
                report->minimized.disjuncts[0].free_var()),
            leaf);
}

TEST(LargeSchema, ContainmentAcrossSubtrees) {
  Schema schema = BuildLargeSchema(4, 3);
  QueryOptimizer optimizer(schema);
  ConjunctiveQuery narrow = MustParseQuery(
      schema, "{ x | exists n (x in P0 & n in Int & n = x.AttrP0) }");
  ConjunctiveQuery wide = MustParseQuery(schema, "{ x | x in Part }");
  StatusOr<bool> forward = optimizer.IsContained(narrow, wide);
  OOCQ_ASSERT_OK(forward.status());
  EXPECT_TRUE(*forward);
  StatusOr<bool> backward = optimizer.IsContained(wide, narrow);
  OOCQ_ASSERT_OK(backward.status());
  EXPECT_FALSE(*backward);
}

TEST(LargeSchema, RandomStatesStayLegalAndEvaluable) {
  Schema schema = BuildLargeSchema(3, 3);
  GeneratorParams params;
  params.objects_per_class = 2;
  State state = GenerateRandomState(schema, params);
  OOCQ_ASSERT_OK(state.Validate());
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists a (x in Part & a in Assembly & x in a.Components) }");
  OOCQ_ASSERT_OK(Evaluate(state, query).status());
}

}  // namespace
}  // namespace oocq
