// Unit tests for the §4 minimization pipeline: self-mapping variable
// folding (Thm 4.3 / Cor 4.4), redundancy removal, and the full
// MinimizePositiveQuery driver.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/minimization.h"
#include "query/printer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class MinimizationTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Min {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: D; S: {D}; }
})");
};

TEST_F(MinimizationTest, AlreadyMinimalQueryUnchanged) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 2u);
  StatusOr<bool> is_minimal = IsMinimalTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(is_minimal.status());
  EXPECT_TRUE(*is_minimal);
}

TEST_F(MinimizationTest, RedundantWitnessFolds) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 2u);
  EXPECT_EQ(removed, 1u);
  StatusOr<bool> equivalent = EquivalentQueries(schema_, query, *minimal);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(MinimizationTest, ChainFoldsCompletely) {
  // Three interchangeable witnesses fold to one.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v exists w (x in C & u in E & v in E & "
      "w in E & u in x.S & v in x.S & w in x.S) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 2u);
}

TEST_F(MinimizationTest, DistinguishedWitnessesDoNotFold) {
  // u is x.A's witness, v is x.B's witness: both needed.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 3u);
}

TEST_F(MinimizationTest, DifferentClassesBlockFolding) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in F & u in x.S & "
      "v in x.S) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 3u);
}

TEST_F(MinimizationTest, FreeVariableIsPreserved) {
  // The free variable may move only within its equivalence class.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y (x in E & y in E & x = y) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  EXPECT_EQ(minimal->num_vars(), 1u);
  StatusOr<bool> equivalent = EquivalentQueries(schema_, query, *minimal);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(MinimizationTest, UnconstrainedSameClassWitnessFoldsOntoFree) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in E) }");
  StatusOr<ConjunctiveQuery> minimal =
      MinimizeTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(minimal.status());
  // y folds onto x; the free variable stays in class E.
  EXPECT_EQ(minimal->num_vars(), 1u);
  EXPECT_EQ(minimal->RangeClassOf(minimal->free_var()),
            schema_.FindClass("E").value());
}

TEST_F(MinimizationTest, NonPositiveRejected) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x != y) }");
  EXPECT_EQ(MinimizeTerminalPositive(schema_, query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MinimizationTest, IsMinimalDetectsFoldable) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S) }");
  StatusOr<bool> is_minimal = IsMinimalTerminalPositive(schema_, query);
  OOCQ_ASSERT_OK(is_minimal.status());
  EXPECT_FALSE(*is_minimal);
}

// --------------------------- redundancy removal -----------------------

TEST_F(MinimizationTest, RemoveRedundantDropsContainedDisjunct) {
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_,
      "{ x | exists u (x in C & u in E & u in x.S) } union "
      "{ x | exists u exists v (x in C & u in E & v in F & u in x.S & "
      "v in x.S) }");
  OOCQ_ASSERT_OK(parsed.status());
  StatusOr<UnionQuery> nonredundant =
      RemoveRedundantDisjuncts(schema_, *parsed);
  OOCQ_ASSERT_OK(nonredundant.status());
  // The second disjunct is contained in the first.
  ASSERT_EQ(nonredundant->disjuncts.size(), 1u);
  EXPECT_EQ(nonredundant->disjuncts[0].num_vars(), 2u);
}

TEST_F(MinimizationTest, RemoveRedundantKeepsOnePerEquivalenceGroup) {
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_,
      "{ x | x in E } union { y | y in E } union { x | x in F }");
  OOCQ_ASSERT_OK(parsed.status());
  StatusOr<UnionQuery> nonredundant =
      RemoveRedundantDisjuncts(schema_, *parsed);
  OOCQ_ASSERT_OK(nonredundant.status());
  EXPECT_EQ(nonredundant->disjuncts.size(), 2u);
}

TEST_F(MinimizationTest, RemoveRedundantDropsUnsatisfiable) {
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_,
      "{ x | x in E } union "
      "{ x | exists y (x in E & y in F & x = y) }");
  OOCQ_ASSERT_OK(parsed.status());
  StatusOr<UnionQuery> nonredundant =
      RemoveRedundantDisjuncts(schema_, *parsed);
  OOCQ_ASSERT_OK(nonredundant.status());
  EXPECT_EQ(nonredundant->disjuncts.size(), 1u);
}

TEST_F(MinimizationTest, RemoveRedundantKeepsIncomparable) {
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_, "{ x | x in E } union { x | x in F }");
  OOCQ_ASSERT_OK(parsed.status());
  StatusOr<UnionQuery> nonredundant =
      RemoveRedundantDisjuncts(schema_, *parsed);
  OOCQ_ASSERT_OK(nonredundant.status());
  EXPECT_EQ(nonredundant->disjuncts.size(), 2u);
}

// --------------------------- full pipeline ---------------------------

TEST_F(MinimizationTest, PipelineIsIdempotent) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in D & v in D & u in x.S & "
      "v in x.S) }");
  StatusOr<MinimizationReport> first = MinimizePositiveQuery(schema_, query);
  OOCQ_ASSERT_OK(first.status());
  // Re-minimize each output disjunct: nothing changes.
  for (const ConjunctiveQuery& disjunct : first->minimized.disjuncts) {
    StatusOr<MinimizationReport> again =
        MinimizePositiveQuery(schema_, disjunct);
    OOCQ_ASSERT_OK(again.status());
    ASSERT_EQ(again->minimized.disjuncts.size(), 1u);
    StatusOr<bool> equivalent = EquivalentQueries(
        schema_, disjunct, again->minimized.disjuncts[0]);
    OOCQ_ASSERT_OK(equivalent.status());
    EXPECT_TRUE(*equivalent);
    EXPECT_EQ(again->minimized.disjuncts[0].num_vars(), disjunct.num_vars());
  }
}

TEST_F(MinimizationTest, PipelineResultEquivalentToInputExpansion) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in D & v in E & u in x.S & "
      "v in x.S) }");
  StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema_, query);
  OOCQ_ASSERT_OK(report.status());
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query);
  OOCQ_ASSERT_OK(expansion.status());
  StatusOr<bool> equivalent =
      UnionEquivalent(schema_, report->minimized, *expansion);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(MinimizationTest, PipelineReportsCounts) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in D & v in D & u in x.S & "
      "v in x.S) }");
  StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema_, query);
  OOCQ_ASSERT_OK(report.status());
  // u, v each expand over {E, F}: 4 raw disjuncts, all satisfiable.
  EXPECT_EQ(report->raw_disjuncts, 4u);
  EXPECT_EQ(report->satisfiable_disjuncts, 4u);
  // The mixed disjuncts (E,F)/(F,E) are contained in both pure ones
  // (folding the odd witness away), so only (E,E) and (F,F) survive, and
  // each then folds its duplicate witness.
  EXPECT_EQ(report->nonredundant_disjuncts, 2u);
  EXPECT_EQ(report->variables_removed, 2u);
  ASSERT_EQ(report->minimized.disjuncts.size(), 2u);
  for (const ConjunctiveQuery& disjunct : report->minimized.disjuncts) {
    EXPECT_EQ(disjunct.num_vars(), 2u);
  }
}

TEST_F(MinimizationTest, PipelineRejectsNonPositive) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x != y) }");
  EXPECT_EQ(MinimizePositiveQuery(schema_, query).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace oocq
