// End-to-end tests for the TCP front ends: an in-process server on an
// ephemeral port, real sockets, 8 concurrent client conversations, and a
// graceful shutdown that drains in-flight requests instead of severing
// them. The whole suite is parameterized over both Transport
// implementations (thread-per-connection and epoll event loop) — the
// wire contract must be indistinguishable.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "persist/catalog.h"
#include "server/event_server.h"
#include "server/service.h"
#include "support/file.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "test_util.h"
#include "transport_test_util.h"

namespace oocq::server {
namespace {

/// A blocking test client: connect, send raw text, read "."-framed
/// replies.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& text) {
    return ::send(fd_, text.data(), text.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(text.size());
  }

  /// Reads one reply frame (through its "." line); empty on EOF.
  std::string ReadReply() {
    std::string reply;
    size_t line_start = 0;
    while (true) {
      size_t nl;
      while ((nl = buffer_.find('\n', line_start)) != std::string::npos) {
        std::string line = buffer_.substr(line_start, nl - line_start);
        line_start = nl + 1;
        if (line == ".") {
          reply = buffer_.substr(0, line_start);
          buffer_.erase(0, line_start);
          return reply;
        }
      }
      line_start = buffer_.size();
      char chunk[4096];
      ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

constexpr const char* kSchemaPayload =
    "schema S {\n"
    "  class A { }\n"
    "  class A1 under A { }\n"
    "  class A2 under A { }\n"
    "}\n"
    ".\n";

// The heavy Cor 3.2 workload of server_service_test, as wire payload.
std::string HeavySchemaPayload(int k) {
  std::string text = "schema Heavy {\n  class D { }\n  class C { ";
  for (int i = 0; i < k; ++i) text += "S" + std::to_string(i) + ": {D}; ";
  text += "}\n}\n.\n";
  return text;
}

std::string HeavyContainPayload(int k) {
  std::string q1 = "{ x | exists y exists u (x in D & y in C & u in D";
  for (int i = 0; i < k; ++i) q1 += " & u in y.S" + std::to_string(i);
  q1 += " & x notin y.S0) }";
  return q1 + "\n{ x | exists y (x in D & y in C & x notin y.S0) }\n.\n";
}

class ServerE2eTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ServerE2eTest, EightConcurrentClients) {
  ServiceOptions service_options;
  service_options.max_in_flight = 4;
  OocqService service(service_options);
  auto server_ptr = oocq::testing::MakeTransport(GetParam(), &service);
  Transport& server = *server_ptr;
  OOCQ_ASSERT_OK(server.Start());
  ASSERT_NE(server.port(), 0);

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      TestClient client(server.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      // Each client drives its own session through a full conversation.
      client.Send(std::string("SESSION NEW\n") + kSchemaPayload);
      std::string created = client.ReadReply();
      if (created.rfind("OK session=", 0) != 0) {
        ++failures;
        return;
      }
      std::string sid = created.substr(3, created.find('\n') - 3);
      sid = sid.substr(sid.find('=') + 1);

      client.Send("CONTAIN " + sid + " id=c" + std::to_string(c) +
                  "\n{ x | x in A1 }\n{ x | x in A }\n.\n");
      if (client.ReadReply().rfind("OK contained=1", 0) != 0) ++failures;

      client.Send("CONTAIN " + sid +
                  "\n{ x | x in A1 }\n{ x | x in A2 }\n.\n");
      if (client.ReadReply().rfind("OK contained=0", 0) != 0) ++failures;

      client.Send("BATCH " + sid +
                  "\nSAT\t{ x | x in A1 }\n"
                  "CONTAIN\t{ x | x in A1 }\t{ x | x in A }\n.\n");
      if (client.ReadReply().rfind("OK n=2 retryable=0\n11", 0) != 0) {
        ++failures;
      }

      client.Send("QUIT\n");
      if (client.ReadReply().rfind("OK", 0) != 0) ++failures;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kClients));
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(RequestTraceE2eTest, TaggedRequestLinksSpansAcrossLayers) {
  // The tentpole end-to-end: an `ID <token>` request over a live
  // EventServer must (a) echo the token on its reply and (b) appear as
  // the `id` annotation on the linked span path socket read → dispatch
  // queue → handler → engine request → WAL append → reply write in the
  // Chrome trace export (docs/observability.md#ids).
  const std::string dir = ::testing::TempDir() + "oocq_trace_e2e";
  {
    StatusOr<std::vector<std::string>> names = ListDir(dir);
    if (names.ok()) {
      for (const std::string& file : *names) {
        (void)RemoveFileIfExists(dir + "/" + file);
      }
    }
    ASSERT_TRUE(MakeDirs(dir).ok());
  }

  TraceLog log;
  {
    TraceSession session(&log);
    ASSERT_TRUE(session.active());

    persist::DurableCatalogOptions catalog_options;
    catalog_options.data_dir = dir;
    catalog_options.snapshot_interval_s = 0;
    StatusOr<std::unique_ptr<persist::DurableCatalog>> catalog =
        persist::DurableCatalog::Open(std::move(catalog_options));
    OOCQ_ASSERT_OK(catalog.status());

    ServiceOptions service_options;
    service_options.catalog = *std::move(catalog);
    OocqService service(service_options);
    EventServer server(&service);
    OOCQ_ASSERT_OK(server.Start());

    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // SESSION NEW writes a WAL record, so tok-41's path crosses persist.
    ASSERT_TRUE(client.Send(std::string("ID tok-41 SESSION NEW\n") +
                            kSchemaPayload));
    std::string created = client.ReadReply();
    ASSERT_EQ(created.rfind("OK id=tok-41 session=", 0), 0u) << created;
    std::string sid = created.substr(created.find("session=") + 8);
    sid = sid.substr(0, sid.find('\n'));

    ASSERT_TRUE(client.Send("ID tok-42 CONTAIN " + sid +
                            "\n{ x | x in A1 }\n{ x | x in A }\n.\n"));
    std::string contained = client.ReadReply();
    EXPECT_EQ(contained.rfind("OK id=tok-42 contained=1", 0), 0u)
        << contained;

    ASSERT_TRUE(client.Send("QUIT\n"));
    client.ReadReply();
    server.Stop();
  }

  const std::string json = log.ChromeTraceJson();
  // Both tokens made it into span annotations...
  EXPECT_NE(json.find("tok-41"), std::string::npos);
  EXPECT_NE(json.find("tok-42"), std::string::npos);
  // ...and every layer of the request path exported its span.
  for (const char* span : {"\"SocketRead\"", "\"Dispatch\"",
                           "\"HandleRequest\"", "\"Request\"",
                           "\"WalAppend\"", "\"ReplyWrite\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << span << "\n" << json;
  }
}

TEST_P(ServerE2eTest, TransportLabelCounterIdentifiesTransport) {
  // Dashboards tell deployments apart by the transport label: starting a
  // transport bumps exactly its own server/transport/<name> counter, so a
  // scrape can always answer "event loop or thread-per-connection?".
  MetricsRegistry registry;
  MetricsScope scope(&registry);
  ASSERT_TRUE(scope.active());

  OocqService service;
  auto server_ptr = oocq::testing::MakeTransport(GetParam(), &service);
  OOCQ_ASSERT_OK(server_ptr->Start());
  server_ptr->Stop();

  const bool is_event = std::string(GetParam()) == "event";
  EXPECT_EQ(registry.CounterValue("server/transport/event"),
            is_event ? 1u : 0u);
  EXPECT_EQ(registry.CounterValue("server/transport/thread"),
            is_event ? 0u : 1u);
}

TEST_P(ServerE2eTest, DeadlineEnforcedOverTheWire) {
  // Interpreted scan only: the compiled subset scan decides k=20 in
  // microseconds and the 10 ms deadline would never trip.
  ServiceOptions service_options;
  service_options.engine.enable_compilation = false;
  OocqService service(service_options);
  auto server_ptr = oocq::testing::MakeTransport(GetParam(), &service);
  Transport& server = *server_ptr;
  OOCQ_ASSERT_OK(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string("SESSION NEW\n") + HeavySchemaPayload(20));
  ASSERT_EQ(client.ReadReply().rfind("OK session=", 0), 0u);

  // The 10 ms deadline trips inside the 2^19-mask subset scan; the client
  // gets a distinct retryable status — not a hang, not a dropped
  // connection.
  client.Send("CONTAIN s1 deadline_ms=10\n" + HeavyContainPayload(20));
  std::string expired = client.ReadReply();
  EXPECT_EQ(expired.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << expired;

  // Same connection still serves: deadline errors are per-request.
  client.Send("PING\n");
  EXPECT_EQ(client.ReadReply(), "OK\n.\n");
  server.Stop();
}

TEST_P(ServerE2eTest, GracefulShutdownDrainsInFlightRequest) {
  ServiceOptions service_options;
  service_options.max_in_flight = 2;
  // Interpreted scan only: the in-flight request must still be running
  // when Stop() lands.
  service_options.engine.enable_compilation = false;
  OocqService service(service_options);
  auto server_ptr = oocq::testing::MakeTransport(GetParam(), &service);
  Transport& server = *server_ptr;
  OOCQ_ASSERT_OK(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string("SESSION NEW\n") + HeavySchemaPayload(20));
  ASSERT_EQ(client.ReadReply().rfind("OK session=", 0), 0u);

  // Launch a request bounded at 250 ms and shut the server down while it
  // runs. Graceful drain means the reply still arrives before the
  // connection closes.
  client.Send("CONTAIN s1 deadline_ms=250\n" + HeavyContainPayload(20));
  while (service.metrics().CounterValue("server/started") < 1) {
    std::this_thread::yield();
  }
  std::thread stopper([&server] { server.Stop(); });
  std::string reply = client.ReadReply();
  stopper.join();
  EXPECT_EQ(reply.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << reply;
  EXPECT_TRUE(service.draining());

  // After the drain, new work is refused...
  Request request;
  request.kind = RequestKind::kSatisfiable;
  request.session_id = "s1";
  request.query = "{ x | x in D }";
  EXPECT_EQ(service.Execute(request).status.code(), StatusCode::kUnavailable);
  // ...and new connections are not accepted.
  TestClient late(server.port());
  if (late.connected()) {
    late.Send("PING\n");
    EXPECT_EQ(late.ReadReply(), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, ServerE2eTest,
                         ::testing::ValuesIn(oocq::testing::kTransportNames),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace oocq::server
