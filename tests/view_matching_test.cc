// Tests for the answering-queries-using-views triage, the containment
// cache, union minimization, and the optimizer's exact general-query
// single-disjunct containment path.

#include <gtest/gtest.h>

#include "core/containment_cache.h"
#include "core/minimization.h"
#include "core/optimizer.h"
#include "core/view_matching.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ViewMatchingTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);

  ViewDefinition View(const std::string& name, const std::string& text) {
    return ViewDefinition{name, MustParseQuery(schema_, text)};
  }
};

TEST_F(ViewMatchingTest, ClassifiesAllFourWays) {
  std::vector<ViewDefinition> views = {
      View("exact",
           "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }"),
      View("superset",
           "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }"),
      View("subset",
           "{ x | exists y exists n (x in Auto & y in Discount & "
           "x in y.VehRented & n in Int & n = x.Doors) }"),
      View("unrelated", "{ x | x in Truck }"),
  };
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");

  StatusOr<std::vector<ViewMatch>> matches =
      MatchViews(schema_, views, query);
  OOCQ_ASSERT_OK(matches.status());
  ASSERT_EQ(matches->size(), 4u);
  // The Vehicle/Discount query is equivalent to the Auto view (typing).
  EXPECT_EQ((*matches)[0].usability, ViewUsability::kExact);
  EXPECT_EQ((*matches)[1].usability, ViewUsability::kSuperset);
  EXPECT_EQ((*matches)[2].usability, ViewUsability::kSubset);
  EXPECT_EQ((*matches)[3].usability, ViewUsability::kUnrelated);
}

TEST_F(ViewMatchingTest, BestViewPrefersExactThenSuperset) {
  std::vector<ViewDefinition> views = {
      View("wide",
           "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }"),
      View("tight",
           "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }"),
  };
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  StatusOr<std::string> best = BestViewFor(schema_, views, query);
  OOCQ_ASSERT_OK(best.status());
  EXPECT_EQ(*best, "tight");

  // Without the tight view, the wide superset wins.
  views.pop_back();
  best = BestViewFor(schema_, views, query);
  OOCQ_ASSERT_OK(best.status());
  EXPECT_EQ(*best, "wide");
}

TEST_F(ViewMatchingTest, NoUsableViewGivesEmpty) {
  std::vector<ViewDefinition> views = {View("trucks", "{ x | x in Truck }")};
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in Auto }");
  StatusOr<std::string> best = BestViewFor(schema_, views, query);
  OOCQ_ASSERT_OK(best.status());
  EXPECT_TRUE(best->empty());
}

TEST_F(ViewMatchingTest, UsabilityStrings) {
  EXPECT_STREQ(ViewUsabilityToString(ViewUsability::kExact), "EXACT");
  EXPECT_STREQ(ViewUsabilityToString(ViewUsability::kUnrelated), "UNRELATED");
}

// --------------------------- containment cache ---------------------------

TEST_F(ViewMatchingTest, CacheHitsOnRenamedPairs) {
  ContainmentCache cache(&schema_);
  ConjunctiveQuery a1 = MustParseQuery(
      schema_,
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  ConjunctiveQuery a2 = MustParseQuery(
      schema_,
      "{ q | exists w (q in Auto & w in Discount & q in w.VehRented) }");
  ConjunctiveQuery b = MustParseQuery(schema_, "{ x | x in Auto }");

  StatusOr<bool> first = cache.Contained(a1, b);
  OOCQ_ASSERT_OK(first.status());
  EXPECT_TRUE(*first);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // A renaming of the same pair hits.
  StatusOr<bool> second = cache.Contained(a2, b);
  OOCQ_ASSERT_OK(second.status());
  EXPECT_TRUE(*second);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // The reversed direction is a distinct decision.
  StatusOr<bool> reversed = cache.Contained(b, a1);
  OOCQ_ASSERT_OK(reversed.status());
  EXPECT_FALSE(*reversed);
  EXPECT_EQ(cache.misses(), 2u);
}

// --------------------------- union minimization ---------------------------

TEST_F(ViewMatchingTest, MinimizePositiveUnionCollapsesAcrossDisjuncts) {
  // The second disjunct is exactly the first's surviving expansion.
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) } "
      "union "
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  OOCQ_ASSERT_OK(parsed.status());
  StatusOr<MinimizationReport> report =
      MinimizePositiveUnion(schema_, *parsed);
  OOCQ_ASSERT_OK(report.status());
  // 3 + 1 raw expansions collapse to the single Auto disjunct.
  EXPECT_EQ(report->raw_disjuncts, 4u);
  EXPECT_EQ(report->minimized.disjuncts.size(), 1u);
}

TEST_F(ViewMatchingTest, MinimizeUnionMatchesSingleQueryPipeline) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }");
  UnionQuery as_union;
  as_union.disjuncts.push_back(query);
  StatusOr<MinimizationReport> via_union =
      MinimizePositiveUnion(schema_, as_union);
  StatusOr<MinimizationReport> via_query =
      MinimizePositiveQuery(schema_, query);
  OOCQ_ASSERT_OK(via_union.status());
  OOCQ_ASSERT_OK(via_query.status());
  StatusOr<bool> equivalent = UnionEquivalent(
      schema_, via_union->minimized, via_query->minimized);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

// ----------------- optimizer exact general single-disjunct ----------------

TEST_F(ViewMatchingTest, GeneralContainmentExactWhenRhsSingleDisjunct) {
  QueryOptimizer optimizer(schema_);
  // Q2 is terminal with an inequality; Q1 ranges over the hierarchy.
  ConjunctiveQuery q1 = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in Auto & y in Discount & z in Discount & "
      "x in y.VehRented & x in z.VehRented & y != z) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in Auto & y in Discount & z in Discount & "
      "x in y.VehRented & x in z.VehRented) }");
  StatusOr<bool> forward = optimizer.IsContained(q1, q2);
  OOCQ_ASSERT_OK(forward.status());
  EXPECT_TRUE(*forward);
  StatusOr<bool> backward = optimizer.IsContained(q2, q1);
  OOCQ_ASSERT_OK(backward.status());
  EXPECT_FALSE(*backward);
}

TEST_F(ViewMatchingTest, MinimizeUnionRejectsNegativeDisjuncts) {
  StatusOr<UnionQuery> parsed = ParseUnionQuery(
      schema_, "{ x | exists y (x in Auto & y in Auto & x != y) }");
  OOCQ_ASSERT_OK(parsed.status());
  EXPECT_EQ(MinimizePositiveUnion(schema_, *parsed).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ViewMatchingTest, MinimizeEmptyUnionIsEmpty) {
  UnionQuery empty;
  StatusOr<MinimizationReport> report = MinimizePositiveUnion(schema_, empty);
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->minimized.disjuncts.empty());
}

TEST_F(ViewMatchingTest, CachePropagatesErrors) {
  ContainmentCache cache(&schema_);
  ConjunctiveQuery non_terminal =
      MustParseQuery(schema_, "{ x | x in Vehicle }");
  EXPECT_EQ(cache.Contained(non_terminal, non_terminal).status().code(),
            StatusCode::kFailedPrecondition);
  // Deterministic errors stay memoized so the identical request fails
  // fast (only retryable codes are dropped — docs/robustness.md), and
  // Export() never surfaces errored entries to the durable catalog.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Contained(non_terminal, non_terminal).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Export(0).empty());
}

TEST_F(ViewMatchingTest, CacheAgreesWithDirectContainedOnBatch) {
  ContainmentCache cache(&schema_);
  const char* queries[] = {
      "{ x | x in Auto }",
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }",
      "{ x | exists y (x in Auto & y in Regular & x in y.VehRented) }",
      "{ x | exists y (x in Auto & y in Discount & x notin y.VehRented) }",
  };
  for (const char* a : queries) {
    for (const char* b : queries) {
      ConjunctiveQuery q1 = MustParseQuery(schema_, a);
      ConjunctiveQuery q2 = MustParseQuery(schema_, b);
      StatusOr<bool> direct = Contained(schema_, q1, q2);
      StatusOr<bool> via_cache = cache.Contained(q1, q2);
      OOCQ_ASSERT_OK(direct.status());
      OOCQ_ASSERT_OK(via_cache.status());
      EXPECT_EQ(*direct, *via_cache) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace oocq
