// Round-trip properties: every printable query reparses to the identical
// AST, and every serializable state reparses to a state with identical
// query answers.

#include <gtest/gtest.h>

#include <random>

#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "random_query.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

const char* const kRoundTripSchema = R"(
schema RT {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: E; S: {D}; T: {E}; Name: String; Size: Int; }
  class C2 under C { }
})";

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(kRoundTripSchema);
};

TEST_P(RoundTripProperty, QueryPrintParseIdentity) {
  std::mt19937_64 rng(GetParam());
  RandomQueryParams params;
  params.allow_negative = true;
  params.terminal_only = false;
  params.max_vars = 5;
  params.max_extra_atoms = 6;
  params.use_builtins = true;
  params.use_constants = true;
  for (int round = 0; round < 20; ++round) {
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);
    std::string printed = QueryToString(schema_, query);
    StatusOr<ConjunctiveQuery> reparsed = ParseQuery(schema_, printed);
    OOCQ_ASSERT_OK(reparsed.status());
    EXPECT_EQ(*reparsed, query) << printed;
  }
}

TEST_P(RoundTripProperty, UnionPrintParseIdentity) {
  std::mt19937_64 rng(GetParam() + 777);
  RandomQueryParams params;
  params.allow_negative = true;
  for (int round = 0; round < 6; ++round) {
    UnionQuery original;
    size_t disjuncts = 1 + (rng() % 4);
    for (size_t i = 0; i < disjuncts; ++i) {
      original.disjuncts.push_back(GenerateRandomQuery(schema_, rng, params));
    }
    std::string printed = UnionQueryToString(schema_, original);
    StatusOr<UnionQuery> reparsed = ParseUnionQuery(schema_, printed);
    OOCQ_ASSERT_OK(reparsed.status());
    ASSERT_EQ(reparsed->disjuncts.size(), original.disjuncts.size());
    for (size_t i = 0; i < disjuncts; ++i) {
      EXPECT_EQ(reparsed->disjuncts[i], original.disjuncts[i]) << printed;
    }
  }
}

TEST_P(RoundTripProperty, StateSerializeParsePreservesAnswers) {
  GeneratorParams gen;
  gen.seed = GetParam();
  gen.objects_per_class = 5;
  State original = GenerateRandomState(schema_, gen);
  std::string serialized = StateToString(original);
  StatusOr<State> reparsed = ParseState(&schema_, serialized);
  OOCQ_ASSERT_OK(reparsed.status());
  OOCQ_EXPECT_OK(reparsed->Validate());

  std::mt19937_64 rng(GetParam() + 31);
  RandomQueryParams params;
  params.allow_negative = true;
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);
    StatusOr<std::vector<Oid>> a = Evaluate(original, query);
    StatusOr<std::vector<Oid>> b = Evaluate(*reparsed, query);
    OOCQ_ASSERT_OK(a.status());
    OOCQ_ASSERT_OK(b.status());
    // Oids may be renumbered (primitive interning order differs), so
    // compare answer multiplicities per class and the answer count.
    EXPECT_EQ(a->size(), b->size()) << QueryToString(schema_, query);
  }
}

TEST_P(RoundTripProperty, StateSerializeIsStable) {
  // Serializing the reparsed state again yields the same text (after one
  // normalization round), so the format is a fixpoint.
  GeneratorParams gen;
  gen.seed = GetParam() + 999;
  gen.objects_per_class = 4;
  State original = GenerateRandomState(schema_, gen);
  std::string first = StateToString(original);
  StatusOr<State> reparsed = ParseState(&schema_, first);
  OOCQ_ASSERT_OK(reparsed.status());
  std::string second = StateToString(*reparsed);
  StatusOr<State> reparsed2 = ParseState(&schema_, second);
  OOCQ_ASSERT_OK(reparsed2.status());
  EXPECT_EQ(second, StateToString(*reparsed2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace oocq
