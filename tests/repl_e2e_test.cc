// Replication end to end, in one process (docs/replication.md): a
// primary service behind a real transport, a follower service tailing it
// through replicate::Follower over real sockets. Asserts the acceptance
// flow of the subsystem: the follower converges on the primary's catalog
// and serves the identical CONTAIN verdict read-only; mutations on the
// follower answer FAILED_PRECONDITION; killing the primary and promoting
// turns the follower into a primary whose accepted writes are durable in
// its own WAL (replay == acked holds across the role change).

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "persist/catalog.h"
#include "replicate/follower.h"
#include "server/event_server.h"
#include "server/service.h"
#include "server/transport.h"
#include "support/file.h"
#include "test_util.h"

namespace oocq::server {
namespace {

using ::oocq::replicate::Follower;
using ::oocq::replicate::FollowerOptions;
using ::oocq::testing::kVehicleRentalSchema;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "oocq_repl_e2e_" + name;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  EXPECT_TRUE(MakeDirs(dir).ok());
  return dir;
}

std::shared_ptr<persist::DurableCatalog> OpenCatalog(const std::string& dir) {
  persist::DurableCatalogOptions options;
  options.data_dir = dir;
  options.snapshot_interval_s = 0;  // compaction only when the test asks
  StatusOr<std::unique_ptr<persist::DurableCatalog>> opened =
      persist::DurableCatalog::Open(options);
  OOCQ_EXPECT_OK(opened.status());
  return opened.ok() ? std::shared_ptr<persist::DurableCatalog>(
                           *std::move(opened))
                     : nullptr;
}

/// Polls `predicate` for up to ~5s — replication is asynchronous, so the
/// assertions below wait for convergence instead of sleeping blind.
bool Eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

Request ContainRequest(const std::string& sid) {
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = "{ x | x in Auto }";
  request.query2 = "{ x | x in Vehicle }";
  return request;
}

TEST(ReplEndToEndTest, FollowerTailsServesReadOnlyAndPromotes) {
  // ---- Follower: read-only service, constructed FIRST ----
  // Two services share this process, and the first one claims the
  // process-wide metrics scope. The follower outlives the primary here
  // (the whole point is surviving its death), so it must be the scope
  // owner — otherwise its worker threads would record into the dead
  // primary's registry.
  std::string follower_dir = FreshDir("follower");
  ServiceOptions follower_options;
  follower_options.catalog = OpenCatalog(follower_dir);
  ASSERT_NE(follower_options.catalog, nullptr);
  follower_options.read_only = true;
  auto follower_service = std::make_unique<OocqService>(follower_options);
  EXPECT_TRUE(follower_service->read_only());

  // ---- Primary: service + transport with a durable catalog ----
  std::string primary_dir = FreshDir("primary");
  ServiceOptions primary_options;
  primary_options.catalog = OpenCatalog(primary_dir);
  ASSERT_NE(primary_options.catalog, nullptr);
  auto primary = std::make_unique<OocqService>(primary_options);

  EventServerOptions transport_options;
  transport_options.dispatch_threads = 4;
  auto transport = std::make_unique<EventServer>(primary.get(),
                                                 transport_options);
  OOCQ_ASSERT_OK(transport->Start());

  // Seed the primary before the follower tails it — this state must
  // arrive via the initial resync (REPL STATE), not the live stream.
  StatusOr<std::string> sid = primary->CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  OOCQ_ASSERT_OK(primary->DefineQuery(*sid, "autos", "{ x | x in Auto }"));

  // ---- The tail thread ----
  FollowerOptions tail_options;
  tail_options.port = transport->port();
  tail_options.poll_wait_ms = 200;
  auto follower = std::make_unique<Follower>(follower_service.get(),
                                             tail_options);
  follower->Start();

  // Resync delivers the seeded session...
  ASSERT_TRUE(Eventually([&] {
    return follower_service->session_count() == 1 && follower->connected();
  }));

  // ...and the live stream delivers a mutation made after the sync.
  uint64_t before = follower->applied_records();
  OOCQ_ASSERT_OK(
      primary->DefineQuery(*sid, "vehicles", "{ x | x in Vehicle }"));
  ASSERT_TRUE(
      Eventually([&] { return follower->applied_records() > before; }));
  ASSERT_TRUE(Eventually([&] { return follower->lag_records() == 0; }));

  // Identical CONTAIN verdict on both nodes; the follower's health probe
  // reports through the service (HEALTH/STATS feed off the same struct).
  Response primary_verdict = primary->Execute(ContainRequest(*sid));
  Response follower_verdict = follower_service->Execute(ContainRequest(*sid));
  OOCQ_ASSERT_OK(primary_verdict.status);
  OOCQ_ASSERT_OK(follower_verdict.status);
  EXPECT_TRUE(primary_verdict.verdict);
  EXPECT_EQ(follower_verdict.verdict, primary_verdict.verdict);
  ServiceHealth health = follower_service->CollectHealth();
  EXPECT_TRUE(health.repl.present);
  EXPECT_EQ(health.repl.role, "follower");
  EXPECT_TRUE(health.repl.connected);
  const std::string stats = follower_service->StatsText();
  EXPECT_NE(stats.find("oocq_repl_lag_records"), std::string::npos);
  EXPECT_NE(stats.find("oocq_repl_connected 1"), std::string::npos);

  // Mutations on the follower refuse with FAILED_PRECONDITION while the
  // primary lives.
  EXPECT_EQ(follower_service->CreateSession(kVehicleRentalSchema)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      follower_service->DefineQuery(*sid, "nope", "{ x | x in Auto }").code(),
      StatusCode::kFailedPrecondition);

  // ---- Primary loss, then promotion ----
  transport->Stop();
  transport.reset();
  primary.reset();

  OOCQ_ASSERT_OK(follower_service->Promote());
  EXPECT_FALSE(follower_service->read_only());
  follower->Stop();

  // The promoted node accepts writes...
  StatusOr<std::string> new_sid =
      follower_service->CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(new_sid.status());
  OOCQ_ASSERT_OK(
      follower_service->DefineQuery(*new_sid, "q", "{ x | x in Truck }"));
  Response after = follower_service->Execute(ContainRequest(*sid));
  OOCQ_ASSERT_OK(after.status);
  EXPECT_TRUE(after.verdict);

  // ...and replay == acked held throughout: a fresh service over the
  // follower's own data dir recovers both the replicated session and the
  // post-promotion one, with the same verdict.
  follower.reset();
  follower_service.reset();
  ServiceOptions reopened_options;
  reopened_options.catalog = OpenCatalog(follower_dir);
  ASSERT_NE(reopened_options.catalog, nullptr);
  OocqService reopened(reopened_options);
  EXPECT_EQ(reopened.session_count(), 2u);
  Response recovered = reopened.Execute(ContainRequest(*sid));
  OOCQ_ASSERT_OK(recovered.status);
  EXPECT_TRUE(recovered.verdict);
}

TEST(ReplEndToEndTest, FollowerResyncsAcrossPrimaryCompaction) {
  // A snapshot on the primary resets its WAL (epoch bump). The follower's
  // next poll gets FAILED_PRECONDITION and must resync — converging on
  // the post-compaction catalog without operator help.
  std::string primary_dir = FreshDir("compact_primary");
  ServiceOptions primary_options;
  primary_options.catalog = OpenCatalog(primary_dir);
  ASSERT_NE(primary_options.catalog, nullptr);
  auto primary = std::make_unique<OocqService>(primary_options);
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  EventServer transport(primary.get(), transport_options);
  OOCQ_ASSERT_OK(transport.Start());

  StatusOr<std::string> sid = primary->CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());

  std::string follower_dir = FreshDir("compact_follower");
  ServiceOptions follower_options;
  follower_options.catalog = OpenCatalog(follower_dir);
  ASSERT_NE(follower_options.catalog, nullptr);
  follower_options.read_only = true;
  OocqService follower_service(follower_options);
  FollowerOptions tail_options;
  tail_options.port = transport.port();
  tail_options.poll_wait_ms = 100;
  Follower follower(&follower_service, tail_options);
  follower.Start();
  ASSERT_TRUE(
      Eventually([&] { return follower_service.session_count() == 1; }));
  uint64_t synced_once = follower.resyncs();
  ASSERT_GE(synced_once, 1u);

  // Compact: snapshot + WAL reset, then mutate in the new epoch.
  OOCQ_ASSERT_OK(primary_options.catalog->SnapshotNow());
  OOCQ_ASSERT_OK(
      primary->DefineQuery(*sid, "fresh", "{ x | x in Trailer }"));

  // The follower crosses the epoch: second resync, then the new-epoch
  // mutation lands.
  ASSERT_TRUE(Eventually([&] { return follower.resyncs() > synced_once; }));
  ASSERT_TRUE(Eventually([&] {
    Response r = follower_service.Execute([&] {
      Request request;
      request.kind = RequestKind::kContained;
      request.session_id = *sid;
      request.query = "@fresh";
      request.query2 = "{ x | x in Vehicle }";
      return request;
    }());
    return r.status.ok() && r.verdict;
  }));
  EXPECT_EQ(follower.epoch(), 2u);

  follower.Stop();
  transport.Stop();
}

TEST(ReplEndToEndTest, AutoPromoteOnPrimaryLoss) {
  // Follower service first: it outlives the primary, so it must own the
  // process-wide metrics scope (see the first test).
  std::string follower_dir = FreshDir("auto_follower");
  ServiceOptions follower_options;
  follower_options.catalog = OpenCatalog(follower_dir);
  ASSERT_NE(follower_options.catalog, nullptr);
  follower_options.read_only = true;
  OocqService follower_service(follower_options);

  std::string primary_dir = FreshDir("auto_primary");
  ServiceOptions primary_options;
  primary_options.catalog = OpenCatalog(primary_dir);
  ASSERT_NE(primary_options.catalog, nullptr);
  auto primary = std::make_unique<OocqService>(primary_options);
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  auto transport = std::make_unique<EventServer>(primary.get(),
                                                 transport_options);
  OOCQ_ASSERT_OK(transport->Start());
  StatusOr<std::string> sid = primary->CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());

  FollowerOptions tail_options;
  tail_options.port = transport->port();
  tail_options.poll_wait_ms = 100;
  tail_options.backoff_ms = 20;
  tail_options.backoff_cap_ms = 50;
  tail_options.auto_promote_after_ms = 300;
  Follower follower(&follower_service, tail_options);
  follower.Start();
  ASSERT_TRUE(
      Eventually([&] { return follower_service.session_count() == 1; }));

  // Primary disappears; the follower must promote itself and accept
  // writes — no operator in the loop.
  transport->Stop();
  transport.reset();
  primary.reset();
  ASSERT_TRUE(Eventually([&] { return !follower_service.read_only(); }));
  StatusOr<std::string> new_sid =
      follower_service.CreateSession(kVehicleRentalSchema);
  OOCQ_EXPECT_OK(new_sid.status());
  follower.Stop();
}

}  // namespace
}  // namespace oocq::server
