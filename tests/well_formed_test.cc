// Unit tests for the paper's well-formedness conditions (§2.3) and the
// normalization rewrite.

#include <gtest/gtest.h>

#include "query/well_formed.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class WellFormedTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema W {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
};

TEST_F(WellFormedTest, SimpleQueryIsWellFormed) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in D & u = x.A) }");
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, query));
}

TEST_F(WellFormedTest, EmptyQueryRejected) {
  ConjunctiveQuery query;
  EXPECT_EQ(ValidateStructure(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, ConditionIiiMissingRangeAtom) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  EXPECT_EQ(CheckWellFormed(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, ConditionIiiTwoRangeAtoms) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("E").value()}));
  query.AddAtom(Atom::Range(x, {schema_.FindClass("F").value()}));
  EXPECT_EQ(CheckWellFormed(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, ConditionIiStrandedObjectTerm) {
  // x.A = y.A without any variable equated: both sides are object terms
  // with no variable in their class.
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  ClassId c = schema_.FindClass("C").value();
  query.AddAtom(Atom::Range(x, {c}));
  query.AddAtom(Atom::Range(y, {c}));
  query.AddAtom(Atom::Equality(Term::Attr(x, "A"), Term::Attr(y, "A")));
  EXPECT_EQ(CheckWellFormed(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, ConditionIObjectSetClash) {
  // u = x.S makes x.S an object term, y in x.S makes it a set term.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists y (x in C & u in D & y in D & u = x.S & "
      "y in x.S) }");
  Status status = CheckWellFormed(schema_, query);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("object"), std::string::npos);
}

TEST_F(WellFormedTest, StructuralUnknownVariableId) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(99)));
  EXPECT_EQ(ValidateStructure(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, StructuralBadClassId) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {12345}));
  EXPECT_EQ(ValidateStructure(schema_, query).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, NormalizeInfersRangeFromEquatedVariable) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
  EXPECT_EQ(normalized->CountRangeAtomsOf(y), 1);
  // x = y bounds y by x's range.
  EXPECT_EQ(normalized->RangeAtomOf(y)->classes(),
            std::vector<ClassId>{schema_.FindClass("C").value()});
}

TEST_F(WellFormedTest, NormalizeDefaultsToAllTerminalsWhenUnconstrained) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddVariable("y");  // No atoms at all about y.
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(normalized->RangeAtomOf(1)->classes().size(),
            schema_.TerminalClasses(true).size());
}

TEST_F(WellFormedTest, NormalizeInfersRangeFromAttributeEquality) {
  // y = x.A bounds y by the terminal descendants of A's type D = {E, F}.
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  query.AddAtom(Atom::Equality(Term::Var(y), Term::Attr(x, "A")));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(normalized->RangeAtomOf(y)->classes(),
            (std::vector<ClassId>{schema_.FindClass("E").value(),
                                  schema_.FindClass("F").value()}));
}

TEST_F(WellFormedTest, NormalizeSplitsMultipleRangeAtoms) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("E").value()}));
  query.AddAtom(Atom::Range(x, {schema_.FindClass("D").value()}));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
  // A fresh variable carries the second range atom, equated to x.
  EXPECT_EQ(normalized->num_vars(), 2u);
  EXPECT_EQ(normalized->CountRangeAtomsOf(x), 1);
}

TEST_F(WellFormedTest, NormalizeEquatesStrandedObjectTerm) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  ClassId c = schema_.FindClass("C").value();
  query.AddAtom(Atom::Range(x, {c}));
  query.AddAtom(Atom::Range(y, {c}));
  query.AddAtom(Atom::Equality(Term::Attr(x, "A"), Term::Attr(y, "A")));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
  // One fresh variable suffices: x.A and y.A are in one equivalence class.
  EXPECT_EQ(normalized->num_vars(), 3u);
  // Its range is narrowed to the terminal descendants of D = {E, F}.
  const Atom* range = normalized->RangeAtomOf(2);
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(range->classes().size(), 2u);
}

TEST_F(WellFormedTest, NormalizeTwoStrandedClasses) {
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  ClassId c = schema_.FindClass("C").value();
  query.AddAtom(Atom::Range(x, {c}));
  // x.A = x.A is one stranded class; a membership over x.S leaves the set
  // term alone (set terms need no variable).
  query.AddAtom(Atom::Equality(Term::Attr(x, "A"), Term::Attr(x, "A")));
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
  EXPECT_EQ(normalized->num_vars(), 2u);
}

TEST_F(WellFormedTest, NormalizeLeavesWellFormedQueryAlone) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in D & u = x.A) }");
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(*normalized, query);
}

TEST_F(WellFormedTest, NormalizeCannotFixObjectSetClash) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists y (x in C & u in D & y in D & u = x.S & "
      "y in x.S) }");
  EXPECT_EQ(NormalizeToWellFormed(schema_, query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WellFormedTest, MembershipElementMustBeVariable) {
  // The parser enforces this, but hand-built atoms could violate it.
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("C").value()}));
  Atom bad = Atom::Equality(Term::Attr(x, "A"), Term::Var(x));
  // Equality with attribute lhs is fine; build an actually-bad membership
  // through the factory is impossible, so check ValidateStructure accepts
  // factory-built atoms.
  query.AddAtom(bad);
  OOCQ_EXPECT_OK(ValidateStructure(schema_, query));
}

}  // namespace
}  // namespace oocq
