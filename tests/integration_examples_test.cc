// End-to-end reproduction of every worked example in the paper (the
// reproduction targets E1-E4 of DESIGN.md): each test drives the public
// pipeline — parser, expansion, containment, minimization — and asserts
// the claims the paper makes about the example.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/expansion.h"
#include "core/minimization.h"
#include "core/optimizer.h"
#include "core/search_space.h"
#include "query/printer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::kImpliedInequalitySchema;
using ::oocq::testing::kExample31Schema;
using ::oocq::testing::kExample32Schema;
using ::oocq::testing::kExample33Schema;
using ::oocq::testing::kPartitionSchema;
using ::oocq::testing::kVehicleRentalSchema;
using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

// ---------------------------------------------------------------------
// E1 — Example 1.1 / 2.1: the Vehicle/Discount query.
// ---------------------------------------------------------------------

class VehicleRentalExample : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kVehicleRentalSchema);
  ConjunctiveQuery query_ = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
};

TEST_F(VehicleRentalExample, Example21RawExpansionHasThreeDisjuncts) {
  // Ex 2.1: Vehicle expands into Auto/Trailer/Truck; Discount is terminal.
  ExpansionOptions options;
  options.prune_unsatisfiable = false;
  StatusOr<UnionQuery> expansion =
      ExpandToTerminalQueries(schema_, query_, options);
  OOCQ_ASSERT_OK(expansion.status());
  EXPECT_EQ(expansion->disjuncts.size(), 3u);
}

TEST_F(VehicleRentalExample, Example11OnlyAutoDisjunctSurvives) {
  // Ex 1.1: discount clients rent automobiles only, so the query is
  // equivalent to { x | exists y (x in Auto & ...) }.
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query_);
  OOCQ_ASSERT_OK(expansion.status());
  ASSERT_EQ(expansion->disjuncts.size(), 1u);
  EXPECT_EQ(expansion->disjuncts[0].RangeClassOf(
                expansion->disjuncts[0].free_var()),
            schema_.FindClass("Auto").value());
}

TEST_F(VehicleRentalExample, Example11EquivalentToAutoQuery) {
  QueryOptimizer optimizer(schema_);
  ConjunctiveQuery auto_query = MustParseQuery(
      schema_,
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  StatusOr<bool> equivalent = optimizer.IsEquivalent(query_, auto_query);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(VehicleRentalExample, OptimizeReducesSearchSpace) {
  QueryOptimizer optimizer(schema_);
  StatusOr<OptimizeReport> report = optimizer.Optimize(query_);
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->exact);
  // Original: x ranges over 3 terminal vehicle classes + y over Discount
  // = 4; optimized: Auto + Discount = 2.
  EXPECT_EQ(report->original_cost.total, 4u);
  EXPECT_EQ(report->optimized_cost.total, 2u);
}

// ---------------------------------------------------------------------
// E2 — Example 1.2 / 4.1: the partitioned N1 query.
// ---------------------------------------------------------------------

class PartitionExample : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kPartitionSchema);
  ConjunctiveQuery query_ = MustParseQuery(
      schema_,
      "{ x | exists y exists s (x in N1 & y in G & s in H & y = x.B & "
      "y in x.A & s in x.A) }");
};

TEST_F(PartitionExample, Example41SixRawDisjuncts) {
  ExpansionOptions options;
  options.prune_unsatisfiable = false;
  StatusOr<UnionQuery> expansion =
      ExpandToTerminalQueries(schema_, query_, options);
  OOCQ_ASSERT_OK(expansion.status());
  // x in {T1,T2,T3} x y in {H,I} x s in {H} = 6 (Q1..Q6 in the paper).
  EXPECT_EQ(expansion->disjuncts.size(), 6u);
}

TEST_F(PartitionExample, Example41OnlyQ2AndQ5Satisfiable) {
  // Q1/Q4 die because T1 lacks B; Q3/Q6 because T3.A is of type {I}.
  StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, query_);
  OOCQ_ASSERT_OK(expansion.status());
  ASSERT_EQ(expansion->disjuncts.size(), 2u);
  for (const ConjunctiveQuery& disjunct : expansion->disjuncts) {
    EXPECT_EQ(disjunct.RangeClassOf(disjunct.free_var()),
              schema_.FindClass("T2").value());
  }
}

TEST_F(PartitionExample, Example41MinimizedResult) {
  StatusOr<MinimizationReport> report =
      MinimizePositiveQuery(schema_, query_);
  OOCQ_ASSERT_OK(report.status());
  EXPECT_EQ(report->raw_disjuncts, 6u);
  EXPECT_EQ(report->satisfiable_disjuncts, 2u);
  EXPECT_EQ(report->nonredundant_disjuncts, 2u);
  // Q2 folds s onto y (one variable removed); Q5 is already minimal.
  EXPECT_EQ(report->variables_removed, 1u);
  ASSERT_EQ(report->minimized.disjuncts.size(), 2u);

  // The minimized union is Q2' (2 bound->free vars: x,y) and Q5 (x,y,s).
  std::vector<size_t> sizes;
  for (const ConjunctiveQuery& q : report->minimized.disjuncts) {
    sizes.push_back(q.num_vars());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 3}));
}

TEST_F(PartitionExample, Example12MinimizedEquivalentToPaperUnion) {
  // The paper's optimal union:
  //   { x | exists y (x in T2 & y in H & y = x.B & y in x.A) }  union
  //   { x | exists y exists s (x in T2 & y in I & s in H & y = x.B &
  //                            y in x.A & s in x.A) }.
  StatusOr<UnionQuery> expected = ParseUnionQuery(
      schema_,
      "{ x | exists y (x in T2 & y in H & y = x.B & y in x.A) } union "
      "{ x | exists y exists s (x in T2 & y in I & s in H & y = x.B & "
      "y in x.A & s in x.A) }");
  OOCQ_ASSERT_OK(expected.status());

  StatusOr<MinimizationReport> report =
      MinimizePositiveQuery(schema_, query_);
  OOCQ_ASSERT_OK(report.status());
  StatusOr<bool> equivalent =
      UnionEquivalent(schema_, report->minimized, *expected);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(PartitionExample, Example41MinimizedDisjunctsAreMinimal) {
  StatusOr<MinimizationReport> report =
      MinimizePositiveQuery(schema_, query_);
  OOCQ_ASSERT_OK(report.status());
  for (const ConjunctiveQuery& disjunct : report->minimized.disjuncts) {
    StatusOr<bool> minimal = IsMinimalTerminalPositive(schema_, disjunct);
    OOCQ_ASSERT_OK(minimal.status());
    EXPECT_TRUE(*minimal) << QueryToString(schema_, disjunct);
  }
}

TEST_F(PartitionExample, Example41CostDropsFromOriginal) {
  QueryOptimizer optimizer(schema_);
  StatusOr<OptimizeReport> report = optimizer.Optimize(query_);
  OOCQ_ASSERT_OK(report.status());
  // Original: x over {T1,T2,T3} (3) + y over {H,I} (2) + s over {H} (1) = 6.
  EXPECT_EQ(report->original_cost.total, 6u);
  // Optimized: Q2' contributes x:T2 + y:H = 2; Q5 contributes
  // x:T2 + y:I + s:H = 3; total 5. Note the costs are *incomparable*
  // under the paper's per-class <= relation (T2 now occurs twice): the
  // optimality claim is that no equivalent union is strictly better, not
  // that the result dominates the input.
  EXPECT_EQ(report->optimized_cost.total, 5u);
  EXPECT_FALSE(CostLeq(report->original_cost, report->optimized_cost));
}

// ---------------------------------------------------------------------
// E3 — Example 1.3: inequality implied by positive conditions.
// ---------------------------------------------------------------------

class ImpliedInequalityExample : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kImpliedInequalitySchema);
  ConjunctiveQuery q1_ = MustParseQuery(
      schema_,
      "{ x | exists y exists s exists t (x in C & y in C & s in T1 & "
      "t in T2 & s = x.A & t = y.A & x != y) }");
  ConjunctiveQuery q2_ = MustParseQuery(
      schema_,
      "{ x | exists y exists s exists t (x in C & y in C & s in T1 & "
      "t in T2 & s = x.A & t = y.A) }");
};

TEST_F(ImpliedInequalityExample, Q1ContainedInQ2) {
  StatusOr<bool> contained = Contained(schema_, q1_, q2_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

TEST_F(ImpliedInequalityExample, Q2ContainedInQ1) {
  // The interesting direction: s in T1 and t in T2 force x != y, so the
  // explicit inequality in Q1 is implied.
  StatusOr<bool> contained = Contained(schema_, q2_, q1_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

TEST_F(ImpliedInequalityExample, Q1EquivalentQ2) {
  StatusOr<bool> equivalent = EquivalentQueries(schema_, q1_, q2_);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(ImpliedInequalityExample, WithoutTypeForcingInequalityMatters) {
  // Control: drop the t = y.A condition; then x != y is NOT implied.
  ConjunctiveQuery weak_q1 = MustParseQuery(
      schema_,
      "{ x | exists y exists s (x in C & y in C & s in T1 & s = x.A & "
      "x != y) }");
  ConjunctiveQuery weak_q2 = MustParseQuery(
      schema_,
      "{ x | exists y exists s (x in C & y in C & s in T1 & s = x.A) }");
  StatusOr<bool> forward = Contained(schema_, weak_q1, weak_q2);
  OOCQ_ASSERT_OK(forward.status());
  EXPECT_TRUE(*forward);
  StatusOr<bool> backward = Contained(schema_, weak_q2, weak_q1);
  OOCQ_ASSERT_OK(backward.status());
  EXPECT_FALSE(*backward);
}

// ---------------------------------------------------------------------
// E4 — Examples 3.1, 3.2, 3.3: containment of terminal queries.
// ---------------------------------------------------------------------

class Example31 : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kExample31Schema);
  ConjunctiveQuery q1_ = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in C & y in C & z in D & z = y.A & "
      "z in y.B & x = y) }");
  ConjunctiveQuery q2_ =
      MustParseQuery(schema_, "{ y | exists z (y in C & z in D & z = y.A) }");
};

TEST_F(Example31, Q1ContainedInQ2) {
  StatusOr<bool> contained = Contained(schema_, q1_, q2_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

TEST_F(Example31, Q2NotContainedInQ1) {
  // The only range-preserving mapping needs z in y.B derivable from Q2,
  // which it is not.
  StatusOr<bool> contained = Contained(schema_, q2_, q1_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_FALSE(*contained);
}

class Example32 : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kExample32Schema);
  ConjunctiveQuery q1_ = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in C & y in C & z in C & x != y & "
      "y != z) }");
  ConjunctiveQuery q2_ =
      MustParseQuery(schema_, "{ x | exists y (x in C & y in C & x != y) }");
  ConjunctiveQuery q3_ = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in C & y in C & z in C & x != y & "
      "y != z & x != z) }");
};

TEST_F(Example32, Q1EquivalentQ2) {
  // Two distinct objects satisfy both chains of inequalities.
  StatusOr<bool> equivalent = EquivalentQueries(schema_, q1_, q2_);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(Example32, Q3ContainedInQ1) {
  StatusOr<bool> contained = Contained(schema_, q3_, q1_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

TEST_F(Example32, Q1NotContainedInQ3) {
  // Q3 requires three pairwise-distinct objects.
  StatusOr<bool> contained = Contained(schema_, q1_, q3_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_FALSE(*contained);
}

TEST_F(Example32, Q3NotEquivalentQ1) {
  StatusOr<bool> equivalent = EquivalentQueries(schema_, q3_, q1_);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_FALSE(*equivalent);
}

class Example33 : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kExample33Schema);
  ConjunctiveQuery q1_ =
      MustParseQuery(schema_, "{ x | exists y (x in T1 & y in T2) }");
  ConjunctiveQuery q2_ = MustParseQuery(
      schema_, "{ x | exists y (x in T1 & y in T2 & x notin y.A) }");
};

TEST_F(Example33, Q2ContainedInQ1) {
  StatusOr<bool> contained = Contained(schema_, q2_, q1_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

TEST_F(Example33, Q1NotContainedInQ2) {
  // A state where every T2 object's A-set contains x (or is null)
  // separates the queries; the test machinery sees it through the
  // membership-subset enumeration (W in Thm 3.1).
  StatusOr<bool> contained = Contained(schema_, q1_, q2_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_FALSE(*contained);
}

TEST_F(Example33, Q2SelfContained) {
  StatusOr<bool> contained = Contained(schema_, q2_, q2_);
  OOCQ_ASSERT_OK(contained.status());
  EXPECT_TRUE(*contained);
}

}  // namespace
}  // namespace oocq
