// Unit tests for Algorithm EqualityGraph (paper §2.3): reflexivity,
// transitivity, the congruence rule, and object/set classification.

#include <gtest/gtest.h>

#include "query/equality_graph.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class EqualityGraphTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema G {
  class D { }
  class C { A: D; B: D; S: {D}; }
})");
};

TEST_F(EqualityGraphTest, VariablesAreNodes) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in C & y in C) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_EQ(graph.num_terms(), 2u);
  EXPECT_NE(graph.FindTermId(Term::Var(0)), kInvalidTermId);
  EXPECT_NE(graph.FindTermId(Term::Var(1)), kInvalidTermId);
  EXPECT_EQ(graph.FindTermId(Term::Attr(0, "A")), kInvalidTermId);
}

TEST_F(EqualityGraphTest, DistinctVariablesDistinctClasses) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in C & y in C) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_FALSE(graph.Equivalent(Term::Var(0), Term::Var(1)));
}

TEST_F(EqualityGraphTest, EqualityAtomMergesClasses) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in C & y in C & x = y) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_TRUE(graph.Equivalent(Term::Var(0), Term::Var(1)));
  EXPECT_EQ(graph.ClassVariables(graph.VarNode(0)).size(), 2u);
}

TEST_F(EqualityGraphTest, Transitivity) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in C & y in C & z in C & x = y & y = z) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_TRUE(graph.Equivalent(Term::Var(0), Term::Var(2)));
}

TEST_F(EqualityGraphTest, CongruenceMergesAttributeTerms) {
  // x = y and both x.A, y.A occur => x.A = y.A (step (iii)).
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists u exists v (x in C & y in C & u in D & v in D "
      "& x = y & u = x.A & v = y.A) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_TRUE(graph.Equivalent(Term::Attr(0, "A"), Term::Attr(1, "A")));
  // And transitively the equated variables u, v.
  EXPECT_TRUE(graph.Equivalent(Term::Var(2), Term::Var(3)));
}

TEST_F(EqualityGraphTest, CongruenceCascades) {
  // Merging u = v (via congruence consequences) must re-trigger the rule:
  // x = y -> x.A = y.A; with u = x.A, v = y.A the variables u, v merge, so
  // u.B = v.B must merge too — but only D-typed classes here, so build a
  // two-level chain over C instead.
  Schema schema = MustParseSchema(R"(
schema Chain {
  class C { Next: C; }
})");
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists y exists u exists v exists p exists q "
      "(x in C & y in C & u in C & v in C & p in C & q in C "
      "& x = y & u = x.Next & v = y.Next & p = u.Next & q = v.Next) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  // Round 1: x.Next = y.Next, hence u = v.
  EXPECT_TRUE(graph.Equivalent(Term::Var(2), Term::Var(3)));
  // Round 2 (fixpoint): u.Next = v.Next, hence p = q.
  EXPECT_TRUE(graph.Equivalent(Term::Attr(2, "Next"), Term::Attr(3, "Next")));
  EXPECT_TRUE(graph.Equivalent(Term::Var(4), Term::Var(5)));
}

TEST_F(EqualityGraphTest, CongruenceOnlyWhenBothNodesExist) {
  // x = y but only x.A occurs; there is no y.A node to merge with.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists u (x in C & y in C & u in D & x = y & "
      "u = x.A) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_EQ(graph.FindTermId(Term::Attr(1, "A")), kInvalidTermId);
  EXPECT_TRUE(graph.Equivalent(Term::Var(2), Term::Attr(0, "A")));
}

TEST_F(EqualityGraphTest, DifferentAttributesDoNotMerge) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in D & v in D & u = x.A & "
      "v = x.B) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_FALSE(graph.Equivalent(Term::Attr(0, "A"), Term::Attr(0, "B")));
}

TEST_F(EqualityGraphTest, InequalityAtomsDoNotMerge) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in C & y in C & x != y) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_FALSE(graph.Equivalent(Term::Var(0), Term::Var(1)));
}

TEST_F(EqualityGraphTest, ObjectAndSetClassification) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists u (x in C & y in D & u in D & u = x.A & "
      "y in x.S) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  TermId a_node = graph.FindTermId(Term::Attr(0, "A"));
  TermId s_node = graph.FindTermId(Term::Attr(0, "S"));
  ASSERT_NE(a_node, kInvalidTermId);
  ASSERT_NE(s_node, kInvalidTermId);
  EXPECT_TRUE(graph.IsObjectTerm(a_node));
  EXPECT_FALSE(graph.IsSetTerm(a_node));
  EXPECT_TRUE(graph.IsSetTerm(s_node));
  EXPECT_FALSE(graph.IsObjectTerm(s_node));
  // The element variable has an object occurrence.
  EXPECT_TRUE(graph.IsObjectTerm(graph.VarNode(1)));
}

TEST_F(EqualityGraphTest, SetOccurrenceFromNonMembership) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in C & y in D & y notin x.S) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  TermId s_node = graph.FindTermId(Term::Attr(0, "S"));
  ASSERT_NE(s_node, kInvalidTermId);
  EXPECT_TRUE(graph.IsSetTerm(s_node));
}

TEST_F(EqualityGraphTest, ClassRepresentativesPartitionNodes) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists u (x in C & y in C & u in D & x = y & "
      "u = x.A) }");
  EqualityGraph graph = EqualityGraph::Build(query);
  size_t total = 0;
  for (TermId rep : graph.ClassRepresentatives()) {
    EXPECT_EQ(graph.Find(rep), rep);
    total += graph.ClassMembers(rep).size();
  }
  EXPECT_EQ(total, graph.num_terms());
}

TEST_F(EqualityGraphTest, EquivalentOnAbsentTermsIsFalse) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in C }");
  EqualityGraph graph = EqualityGraph::Build(query);
  EXPECT_FALSE(graph.Equivalent(Term::Var(0), Term::Attr(0, "A")));
}

}  // namespace
}  // namespace oocq
