#ifndef OOCQ_TESTS_TRANSPORT_TEST_UTIL_H_
#define OOCQ_TESTS_TRANSPORT_TEST_UTIL_H_

/// Factory for transport-generic server tests: the same e2e and framing
/// suites run against both Transport implementations (thread-per-
/// connection TcpServer and epoll-based EventServer), instantiated by
/// name via INSTANTIATE_TEST_SUITE_P.

#include <memory>
#include <string>

#include "server/event_server.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "server/transport.h"

namespace oocq::testing {

inline constexpr const char* kTransportNames[] = {"thread", "event"};

inline std::unique_ptr<server::Transport> MakeTransport(
    const std::string& name, server::OocqService* service) {
  if (name == "event") {
    server::EventServerOptions options;
    options.dispatch_threads = 4;
    return std::make_unique<server::EventServer>(service, options);
  }
  server::TcpServerOptions options;
  return std::make_unique<server::TcpServer>(service, options);
}

}  // namespace oocq::testing

#endif  // OOCQ_TESTS_TRANSPORT_TEST_UTIL_H_
