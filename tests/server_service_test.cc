// Tests for the embeddable OocqService (server/service.h): session
// registry reuse, per-request deadlines tripping mid-containment,
// admission shedding under overload, batch determinism, and the line
// protocol handler over the same service.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/containment.h"
#include "server/protocol.h"
#include "server/service.h"
#include "support/cancellation.h"
#include "test_util.h"

namespace oocq::server {
namespace {

using ::oocq::testing::kVehicleRentalSchema;
using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

// ---- Heavy workload: a containment whose Thm 3.1 subset scan is 2^(k-1)
// masks (the Cor 3.2 axis; bench_containment_general measures the same
// shape). At k around 20 the full scan takes far longer than any test
// deadline, and cancellation is polled per mask, so a deadline trips
// mid-scan deterministically.

std::string HeavySchemaText(int k) {
  std::string text = "schema Heavy {\n  class D { }\n  class C { ";
  for (int i = 0; i < k; ++i) {
    text += "S" + std::to_string(i) + ": {D}; ";
  }
  text += "}\n}";
  return text;
}

// One element witness u in every set y.S_i plus the pin x notin y.S0:
// the candidate pool T is {x in y.S_j : j >= 1}, all 2^(k-1) subsets
// are scanned, and the containment holds.
std::string HeavyQ1(int k) {
  std::string text = "{ x | exists y exists u (x in D & y in C & u in D";
  for (int i = 0; i < k; ++i) {
    text += " & u in y.S" + std::to_string(i);
  }
  text += " & x notin y.S0) }";
  return text;
}

const char* HeavyQ2() {
  return "{ x | exists y (x in D & y in C & x notin y.S0) }";
}

Request MakeContain(const std::string& session_id, const std::string& q1,
                    const std::string& q2, uint64_t deadline_ms = 0) {
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = session_id;
  request.query = q1;
  request.query2 = q2;
  request.deadline_ms = deadline_ms;
  return request;
}

// Spins until `count` requests have entered the pool (server/started).
void AwaitStarted(const OocqService& service, uint64_t count) {
  while (service.metrics().CounterValue("server/started") < count) {
    std::this_thread::yield();
  }
}

TEST(ServiceSessionTest, RegistryReuseAcrossRequests) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  EXPECT_EQ(service.session_count(), 1u);

  // Register once, reference many times.
  OOCQ_ASSERT_OK(service.DefineQuery(*sid, "autos", "{ x | x in Auto }"));
  OOCQ_ASSERT_OK(
      service.DefineQuery(*sid, "vehicles", "{ x | x in Vehicle }"));

  Response forward = service.Execute(MakeContain(*sid, "@autos", "@vehicles"));
  OOCQ_ASSERT_OK(forward.status);
  EXPECT_TRUE(forward.verdict);

  Response backward = service.Execute(MakeContain(*sid, "@vehicles", "@autos"));
  OOCQ_ASSERT_OK(backward.status);
  EXPECT_FALSE(backward.verdict);

  // The session's cache serves the repeat decision.
  Response repeat = service.Execute(MakeContain(*sid, "@autos", "@vehicles"));
  OOCQ_ASSERT_OK(repeat.status);
  EXPECT_TRUE(repeat.verdict);

  Response unknown = service.Execute(MakeContain(*sid, "@nosuch", "@autos"));
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);

  OOCQ_ASSERT_OK(service.DropSession(*sid));
  EXPECT_EQ(service.session_count(), 0u);
  Response dropped = service.Execute(MakeContain(*sid, "@autos", "@vehicles"));
  EXPECT_EQ(dropped.status.code(), StatusCode::kNotFound);
}

TEST(ServiceSessionTest, MinimizeAndEquivalentKinds) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());

  Request minimize;
  minimize.kind = RequestKind::kMinimize;
  minimize.session_id = *sid;
  minimize.query =
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }";
  Response minimized = service.Execute(minimize);
  OOCQ_ASSERT_OK(minimized.status);
  EXPECT_TRUE(minimized.verdict);  // positive query: §4 exact
  EXPECT_NE(minimized.body.find("x in Auto"), std::string::npos)
      << minimized.body;

  Request equiv = MakeContain(
      *sid,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  equiv.kind = RequestKind::kEquivalent;
  Response equivalent = service.Execute(equiv);
  OOCQ_ASSERT_OK(equivalent.status);
  EXPECT_TRUE(equivalent.verdict);
}

// The core abort path, without the service: a pre-expired token makes
// Contained() return kDeadlineExceeded instead of scanning.
TEST(ServiceDeadlineTest, PreExpiredTokenAbortsContainment) {
  Schema schema = MustParseSchema(HeavySchemaText(8));
  ConjunctiveQuery q1 = MustParseQuery(schema, HeavyQ1(8));
  ConjunctiveQuery q2 = MustParseQuery(schema, HeavyQ2());
  CancellationToken expired = CancellationToken::AfterMillis(0);
  ContainmentOptions options;
  options.cancel = &expired;
  StatusOr<bool> verdict = Contained(schema, q1, q2, options);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(verdict.status().code()));
}

TEST(ServiceDeadlineTest, DeadlineExpiresMidContainment) {
  // The interpreted subset scan is the slow workload under test; the
  // compiled scan decides k=20 in microseconds and the deadline would
  // never trip.
  ServiceOptions options;
  options.engine.enable_compilation = false;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(HeavySchemaText(20));
  OOCQ_ASSERT_OK(sid.status());

  // Sanity: the same query shape at a small k decides quickly.
  StatusOr<std::string> small = service.CreateSession(HeavySchemaText(6));
  OOCQ_ASSERT_OK(small.status());
  Response quick =
      service.Execute(MakeContain(*small, HeavyQ1(6), HeavyQ2()));
  OOCQ_ASSERT_OK(quick.status);
  EXPECT_TRUE(quick.verdict);

  // At k=20 the scan is ~2^19 masks — the 10 ms deadline trips inside it.
  Response expired = service.Execute(
      MakeContain(*sid, HeavyQ1(20), HeavyQ2(), /*deadline_ms=*/10));
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded)
      << expired.status.ToString();
  EXPECT_TRUE(IsRetryable(expired.status.code()));

  // The expired decision was not memoized: the session still answers.
  Response after =
      service.Execute(MakeContain(*sid, HeavyQ1(6), HeavyQ2()));
  OOCQ_ASSERT_OK(after.status);
}

TEST(ServiceDeadlineTest, QueuedRequestExpiresBeforeStarting) {
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 4;
  // Interpreted scan only: the occupant must stay busy past the queued
  // request's 1 ms deadline.
  options.engine.enable_compilation = false;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(HeavySchemaText(20));
  OOCQ_ASSERT_OK(sid.status());

  // Occupy the only worker with a heavy request whose own 250 ms deadline
  // bounds the test's runtime.
  std::thread occupant([&service, &sid] {
    Response heavy = service.Execute(
        MakeContain(*sid, HeavyQ1(20), HeavyQ2(), /*deadline_ms=*/250));
    EXPECT_EQ(heavy.status.code(), StatusCode::kDeadlineExceeded);
  });
  AwaitStarted(service, 1);

  // Queued behind a worker that stays busy far past 1 ms: by start time
  // the deadline has passed, and the queue-expiry precheck answers
  // without touching the engine.
  Response queued = service.Execute(
      MakeContain(*sid, HeavyQ1(6), HeavyQ2(), /*deadline_ms=*/1));
  EXPECT_EQ(queued.status.code(), StatusCode::kDeadlineExceeded);
  occupant.join();
}

TEST(ServiceAdmissionTest, ShedsUnderOverloadAndRecovers) {
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 0;  // capacity: exactly one admitted request
  // Interpreted scan only: the occupant must hold the worker long enough
  // for the second request to be shed.
  options.engine.enable_compilation = false;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(HeavySchemaText(20));
  OOCQ_ASSERT_OK(sid.status());

  std::thread occupant([&service, &sid] {
    Response heavy = service.Execute(
        MakeContain(*sid, HeavyQ1(20), HeavyQ2(), /*deadline_ms=*/250));
    EXPECT_EQ(heavy.status.code(), StatusCode::kDeadlineExceeded);
  });
  AwaitStarted(service, 1);

  Response shed =
      service.Execute(MakeContain(*sid, HeavyQ1(6), HeavyQ2()));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable)
      << shed.status.ToString();
  EXPECT_TRUE(IsRetryable(shed.status.code()));
  EXPECT_GE(service.metrics().CounterValue("server/shed"), 1u);
  occupant.join();

  // Capacity freed: the retry the status promised now succeeds.
  Response retry =
      service.Execute(MakeContain(*sid, HeavyQ1(6), HeavyQ2()));
  OOCQ_ASSERT_OK(retry.status);
  EXPECT_TRUE(retry.verdict);
}

TEST(ServiceBatchTest, BatchMatchesSequentialExecution) {
  std::vector<Request> batch;
  auto build_requests = [&batch](const std::string& sid) {
    batch.clear();
    Request contain = MakeContain(
        sid,
        "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }",
        "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }");
    batch.push_back(contain);
    Request not_contained = MakeContain(sid, "{ x | x in Vehicle }",
                                        "{ x | x in Truck }");
    batch.push_back(not_contained);
    Request equiv = MakeContain(
        sid,
        "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
        "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
    equiv.kind = RequestKind::kEquivalent;
    batch.push_back(equiv);
    Request sat;
    sat.kind = RequestKind::kSatisfiable;
    sat.session_id = sid;
    sat.query =
        "{ x | exists y (x in Trailer & y in Discount & x in y.VehRented) }";
    batch.push_back(sat);
    Request bad = MakeContain(sid, "@missing", "{ x | x in Auto }");
    batch.push_back(bad);
    // Duplicates exercise the shared cache under concurrent execution.
    batch.push_back(contain);
    batch.push_back(not_contained);
    batch.push_back(equiv);
  };

  // Sequential reference on its own service.
  std::vector<Response> expected;
  {
    OocqService sequential;
    StatusOr<std::string> sid = sequential.CreateSession(kVehicleRentalSchema);
    OOCQ_ASSERT_OK(sid.status());
    build_requests(*sid);
    for (const Request& request : batch) {
      expected.push_back(sequential.Execute(request));
    }
  }

  ServiceOptions options;
  options.max_in_flight = 4;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  build_requests(*sid);
  std::vector<Response> responses = service.ExecuteBatch(batch);

  ASSERT_EQ(responses.size(), expected.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status.code(), expected[i].status.code())
        << "request " << i << ": " << responses[i].status.ToString();
    EXPECT_EQ(responses[i].verdict, expected[i].verdict) << "request " << i;
  }
}

TEST(ServiceDrainTest, DrainRefusesNewWork) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  service.Drain();
  EXPECT_TRUE(service.draining());
  Response refused = service.Execute(
      MakeContain(*sid, "{ x | x in Auto }", "{ x | x in Vehicle }"));
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
}

// ---- The protocol layer over the same service, no sockets involved ----

std::vector<std::string> Payload(std::initializer_list<const char*> lines) {
  return std::vector<std::string>(lines.begin(), lines.end());
}

TEST(ProtocolTest, ParseCommandLineSplitsVerbArgsParams) {
  CommandLine command =
      ParseCommandLine("contain s1 deadline_ms=50 id=req-7");
  EXPECT_EQ(command.verb, "CONTAIN");  // verbs are case-insensitive
  ASSERT_EQ(command.args.size(), 1u);
  EXPECT_EQ(command.args[0], "s1");
  ASSERT_NE(command.Param("deadline_ms"), nullptr);
  EXPECT_EQ(*command.Param("deadline_ms"), "50");
  ASSERT_NE(command.Param("id"), nullptr);
  EXPECT_EQ(*command.Param("id"), "req-7");
  EXPECT_EQ(command.Param("nope"), nullptr);

  EXPECT_TRUE(VerbHasPayload("CONTAIN"));
  EXPECT_TRUE(VerbHasPayload("BATCH"));
  EXPECT_FALSE(VerbHasPayload("PING"));
  EXPECT_FALSE(VerbHasPayload("METRICS"));
}

TEST(ProtocolTest, FullConversation) {
  OocqService service;
  ProtocolHandler handler(&service);

  ProtocolReply pong = handler.Handle(ParseCommandLine("PING"), {});
  EXPECT_EQ(pong.text, "OK\n.\n");
  EXPECT_FALSE(pong.close);

  // A needs a second terminal subclass: with A1 alone the extents of A
  // and A1 coincide and every containment below would hold.
  ProtocolReply created = handler.Handle(
      ParseCommandLine("SESSION NEW"),
      Payload({"schema S {", "  class A { }", "  class A1 under A { }",
               "  class A2 under A { }", "}"}));
  EXPECT_EQ(created.text, "OK session=s1\n.\n");

  ProtocolReply contained =
      handler.Handle(ParseCommandLine("CONTAIN s1 id=t1"),
                     Payload({"{ x | x in A1 }", "{ x | x in A }"}));
  EXPECT_EQ(contained.text, "OK contained=1\n.\n");

  ProtocolReply not_contained =
      handler.Handle(ParseCommandLine("CONTAIN s1"),
                     Payload({"{ x | x in A }", "{ x | x in A1 }"}));
  EXPECT_EQ(not_contained.text, "OK contained=0\n.\n");

  ProtocolReply batch = handler.Handle(
      ParseCommandLine("BATCH s1"),
      Payload({"CONTAIN\t{ x | x in A1 }\t{ x | x in A }",
               "CONTAIN\t{ x | x in A }\t{ x | x in A1 }",
               "SAT\t{ x | x in A1 }"}));
  EXPECT_EQ(batch.text, "OK n=3 retryable=0\n101\n.\n");

  ProtocolReply metrics = handler.Handle(ParseCommandLine("METRICS"), {});
  EXPECT_NE(metrics.text.find("server/requests"), std::string::npos);

  ProtocolReply parse_error = handler.Handle(
      ParseCommandLine("CONTAIN s1"), Payload({"{ not a query", "x }"}));
  EXPECT_EQ(parse_error.text.rfind("ERR ", 0), 0u) << parse_error.text;

  ProtocolReply unknown = handler.Handle(ParseCommandLine("FROBNICATE"), {});
  EXPECT_EQ(unknown.text.rfind("ERR INVALID_ARGUMENT", 0), 0u);

  ProtocolReply quit = handler.Handle(ParseCommandLine("QUIT"), {});
  EXPECT_TRUE(quit.close);

  ProtocolReply dropped =
      handler.Handle(ParseCommandLine("SESSION DROP s1"), {});
  EXPECT_EQ(dropped.text, "OK\n.\n");
}

TEST(ProtocolTest, DeadlineParamSurfacesRetryableError) {
  // Interpreted scan only, so the 10 ms deadline trips mid-scan.
  ServiceOptions options;
  options.engine.enable_compilation = false;
  OocqService service(options);
  ProtocolHandler handler(&service);
  ProtocolReply created =
      handler.Handle(ParseCommandLine("SESSION NEW"),
                     Payload({HeavySchemaText(20).c_str()}));
  ASSERT_EQ(created.text, "OK session=s1\n.\n");
  ProtocolReply expired = handler.Handle(
      ParseCommandLine("CONTAIN s1 deadline_ms=10"),
      {HeavyQ1(20), HeavyQ2()});
  EXPECT_EQ(expired.text.rfind("ERR DEADLINE_EXCEEDED", 0), 0u)
      << expired.text;
}

}  // namespace
}  // namespace oocq::server
