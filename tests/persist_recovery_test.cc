// Crash recovery and warm starts through the DurableCatalog + OocqService
// stack (docs/persistence.md): a fault-injected "process death" mid-append
// must replay exactly the acked mutations minus the torn tail; a clean
// restart must re-register every session and warm-start its containment
// cache; stale or corrupt on-disk state must degrade to a cold start.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "persist/catalog.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "server/service.h"
#include "support/file.h"
#include "test_util.h"

namespace oocq::server {
namespace {

using persist::DurableCatalog;
using persist::DurableCatalogOptions;
using persist::Record;
using persist::RecordType;
using ::oocq::testing::kVehicleRentalSchema;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "oocq_recovery_" + name;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  EXPECT_TRUE(MakeDirs(dir).ok());
  return dir;
}

std::shared_ptr<DurableCatalog> MustOpen(DurableCatalogOptions options) {
  StatusOr<std::unique_ptr<DurableCatalog>> catalog =
      DurableCatalog::Open(std::move(options));
  OOCQ_EXPECT_OK(catalog.status());
  return catalog.ok() ? std::shared_ptr<DurableCatalog>(*std::move(catalog))
                      : nullptr;
}

Record DefineRecord(int i) {
  Record record;
  record.type = RecordType::kDefineQuery;
  record.session_id = "s1";
  record.name = "q" + std::to_string(i);
  record.text = "{ x | x in Auto & x in Vehicle } -- #" + std::to_string(i);
  return record;
}

// The crash-recovery property: for every fault point, reopening the
// catalog recovers exactly the acked records — never a torn one, never
// a missing acked one.
TEST(CatalogRecoveryTest, FaultPointPropertyReplayEqualsAcked) {
  for (uint64_t fail_after : {64u, 150u, 301u, 444u, 777u}) {
    const std::string dir =
        FreshDir("fault_" + std::to_string(fail_after));
    size_t acked = 0;
    {
      DurableCatalogOptions options;
      options.data_dir = dir;
      options.snapshot_interval_s = 0;
      options.group_commit_window_us = 0;
      options.wal_fail_after_bytes = fail_after;
      std::shared_ptr<DurableCatalog> catalog = MustOpen(options);
      ASSERT_NE(catalog, nullptr);
      for (int i = 0; i < 32; ++i) {
        auto guard = catalog->MutationGuard();
        if (!catalog->Log(DefineRecord(i)).ok()) break;
        ++acked;
      }
      ASSERT_LT(acked, 32u) << "fault at " << fail_after << " never fired";
      // The catalog dies here with a torn frame on disk (no clean
      // shutdown, no snapshot — the destructor only joins threads).
    }
    DurableCatalogOptions reopen;
    reopen.data_dir = dir;
    reopen.snapshot_interval_s = 0;
    std::shared_ptr<DurableCatalog> catalog = MustOpen(reopen);
    ASSERT_NE(catalog, nullptr);
    const DurableCatalog::Recovery& recovery = catalog->recovery();
    EXPECT_FALSE(recovery.cold_start);
    EXPECT_GT(recovery.wal_truncated_bytes, 0u)
        << "fault at " << fail_after << " left no torn tail";
    ASSERT_EQ(catalog->recovered().size(), acked)
        << "fault at " << fail_after;
    for (size_t i = 0; i < acked; ++i) {
      EXPECT_EQ(catalog->recovered()[i], DefineRecord(static_cast<int>(i)));
    }
  }
}

TEST(CatalogRecoveryTest, StaleWalDegradesToColdStart) {
  const std::string dir = FreshDir("stale_wal");
  std::string stale;
  persist::EncodeFileHeader(&stale, "00000000deadbeef");
  persist::EncodeRecord(DefineRecord(0), &stale);
  OOCQ_ASSERT_OK(WriteFileDurable(dir + "/wal.log", stale));

  DurableCatalogOptions options;
  options.data_dir = dir;
  options.snapshot_interval_s = 0;
  std::shared_ptr<DurableCatalog> catalog = MustOpen(options);
  ASSERT_NE(catalog, nullptr);
  EXPECT_TRUE(catalog->recovery().cold_start);
  EXPECT_TRUE(catalog->recovered().empty());
  // The stale file is set aside, and the catalog is writable again.
  EXPECT_TRUE(ReadFileToString(dir + "/wal.log.stale").ok());
  auto guard = catalog->MutationGuard();
  OOCQ_EXPECT_OK(catalog->Log(DefineRecord(1)));
}

TEST(ServicePersistenceTest, WarmRestartRestoresSessionsQueriesAndCache) {
  const std::string dir = FreshDir("warm");
  DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 0;  // snapshot on shutdown only
  catalog_options.group_commit_window_us = 0;

  ServiceOptions service_options;
  service_options.metrics = false;
  std::string sid;
  Response first;
  {
    service_options.catalog = MustOpen(catalog_options);
    ASSERT_NE(service_options.catalog, nullptr);
    OocqService service(service_options);
    StatusOr<std::string> created = service.CreateSession(kVehicleRentalSchema);
    OOCQ_ASSERT_OK(created.status());
    sid = *created;
    OOCQ_ASSERT_OK(service.DefineQuery(sid, "autos", "{ x | x in Auto }"));
    OOCQ_ASSERT_OK(
        service.DefineQuery(sid, "vehicles", "{ x | x in Vehicle }"));
    OOCQ_ASSERT_OK(service.LoadState(
        sid, "state { a1: Auto { Doors = 4; } }"));

    Request request;
    request.kind = RequestKind::kContained;
    request.session_id = sid;
    request.query = "@autos";
    request.query2 = "@vehicles";
    first = service.Execute(request);
    OOCQ_ASSERT_OK(first.status);
    EXPECT_TRUE(first.verdict);
    // Destructor: drain + final snapshot (warm cache included).
  }
  EXPECT_GT(persist::LatestSnapshotSeq(dir), 0u);

  service_options.catalog = MustOpen(catalog_options);
  ASSERT_NE(service_options.catalog, nullptr);
  EXPECT_FALSE(service_options.catalog->recovered().empty());
  OocqService service(service_options);
  EXPECT_EQ(service.session_count(), 1u);

  // Identical answers after restart, via the restored named queries.
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = "@autos";
  request.query2 = "@vehicles";
  Response warm = service.Execute(request);
  OOCQ_ASSERT_OK(warm.status);
  EXPECT_EQ(warm.verdict, first.verdict);

  // The restored state serves evaluation without a reload.
  Request eval;
  eval.kind = RequestKind::kEvaluate;
  eval.session_id = sid;
  eval.query = "{ x | x in Auto }";
  Response answers = service.Execute(eval);
  OOCQ_ASSERT_OK(answers.status);
  EXPECT_TRUE(answers.verdict);
}

TEST(ServicePersistenceTest, DropSessionIsDurable) {
  const std::string dir = FreshDir("drop");
  DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 0;
  catalog_options.group_commit_window_us = 0;

  ServiceOptions service_options;
  service_options.metrics = false;
  std::string kept;
  {
    service_options.catalog = MustOpen(catalog_options);
    OocqService service(service_options);
    StatusOr<std::string> doomed = service.CreateSession(kVehicleRentalSchema);
    OOCQ_ASSERT_OK(doomed.status());
    StatusOr<std::string> survivor =
        service.CreateSession(kVehicleRentalSchema);
    OOCQ_ASSERT_OK(survivor.status());
    kept = *survivor;
    OOCQ_ASSERT_OK(service.DropSession(*doomed));
  }
  service_options.catalog = MustOpen(catalog_options);
  OocqService service(service_options);
  EXPECT_EQ(service.session_count(), 1u);
  // New ids never collide with restored ones.
  StatusOr<std::string> fresh = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(fresh.status());
  EXPECT_NE(*fresh, kept);
}

TEST(ServicePersistenceTest, BackgroundSnapshotterCompactsTheWal) {
  const std::string dir = FreshDir("cadence");
  DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 1;
  catalog_options.group_commit_window_us = 0;

  ServiceOptions service_options;
  service_options.metrics = false;
  service_options.catalog = MustOpen(catalog_options);
  ASSERT_NE(service_options.catalog, nullptr);
  DurableCatalog* catalog = service_options.catalog.get();
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  OOCQ_ASSERT_OK(service.DefineQuery(*sid, "q", "{ x | x in Auto }"));

  // Within a few cadence ticks the snapshotter must have run and reset
  // the WAL (its records now live in the snapshot).
  for (int i = 0; i < 50 && catalog->snapshots_taken() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(catalog->snapshots_taken(), 1u);
  EXPECT_GT(persist::LatestSnapshotSeq(dir), 0u);

  // An idle cadence tick does not write a new snapshot.
  const uint64_t seq_after_first = persist::LatestSnapshotSeq(dir);
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  EXPECT_EQ(persist::LatestSnapshotSeq(dir), seq_after_first);
}

TEST(ServicePersistenceTest, UnparsableRecoveredRecordIsSkippedNotFatal) {
  const std::string dir = FreshDir("skip");
  DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 0;
  catalog_options.group_commit_window_us = 0;
  {
    std::shared_ptr<DurableCatalog> catalog = MustOpen(catalog_options);
    auto guard = catalog->MutationGuard();
    Record good;
    good.type = RecordType::kCreateSession;
    good.session_id = "s1";
    good.text = kVehicleRentalSchema;
    OOCQ_ASSERT_OK(catalog->Log(good));
    Record bad;
    bad.type = RecordType::kDefineQuery;
    bad.session_id = "s1";
    bad.name = "broken";
    bad.text = "{ not a query at all";
    OOCQ_ASSERT_OK(catalog->Log(bad));
  }
  ServiceOptions service_options;
  service_options.metrics = false;
  service_options.catalog = MustOpen(catalog_options);
  OocqService service(service_options);
  // The session survives; the unparsable definition is dropped.
  EXPECT_EQ(service.session_count(), 1u);
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = "s1";
  request.query = "@broken";
  request.query2 = "{ x | x in Vehicle }";
  Response response = service.Execute(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace oocq::server
