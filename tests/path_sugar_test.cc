// Tests for the §2.2 syntactic-sugar desugaring: path expressions
// `x.A1...An`, range atoms over attribute terms, and attribute-term
// memberships — parsed, normalized, and run through the full pipeline.

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "state/state.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class PathSugarTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Paths {
  class Person { Name: String; Boss: Person; Reports: {Person}; }
  class Dept { Head: Person; }
})");
};

TEST_F(PathSugarTest, TwoLevelPathParses) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists n (x in Person & n in String & "
               "n = x.Boss.Name) }");
  // x, n, plus one fresh variable for x.Boss.
  EXPECT_EQ(query.num_vars(), 3u);
  // Desugared form: _p = x.Boss and n = _p.Name.
  int equalities = 0;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kEquality) ++equalities;
  }
  EXPECT_EQ(equalities, 2);
}

TEST_F(PathSugarTest, ThreeLevelPathParses) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in Person & y in Person & "
               "y = x.Boss.Boss.Boss) }");
  EXPECT_EQ(query.num_vars(), 4u);  // x, y + 2 fresh.
}

TEST_F(PathSugarTest, NormalizationMakesPathQueriesWellFormed) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists n (x in Person & n in String & "
               "n = x.Boss.Name) }");
  // Fresh variables lack range atoms until normalization.
  EXPECT_FALSE(CheckWellFormed(schema_, query).ok());
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
  // The fresh variable's range narrows to Person (the type of Boss).
  VarId fresh = normalized->FindVariable("_p2");
  ASSERT_NE(fresh, kInvalidVarId);
  EXPECT_EQ(normalized->RangeAtomOf(fresh)->classes(),
            std::vector<ClassId>{schema_.FindClass("Person").value()});
}

TEST_F(PathSugarTest, RangeAtomOverAttributeTerm) {
  // `x.Boss in Person` desugars to `_p = x.Boss & _p in Person`.
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in Person & x.Boss in Person }");
  EXPECT_EQ(query.num_vars(), 2u);
  StatusOr<ConjunctiveQuery> normalized = NormalizeToWellFormed(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  OOCQ_EXPECT_OK(CheckWellFormed(schema_, *normalized));
}

TEST_F(PathSugarTest, MembershipThroughPath) {
  // `x in d.Head.Reports`: the set term's owner is a path.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists d (x in Person & d in Dept & x in d.Head.Reports) }");
  bool found = false;
  for (const Atom& atom : query.atoms()) {
    if (atom.kind() == AtomKind::kMembership &&
        atom.set_term().attr == "Reports") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PathSugarTest, PlainSetTermStillRequired) {
  // 'x in y' with no attribute on the right is a range atom over an
  // unknown class -> error, not a membership.
  EXPECT_FALSE(
      ParseQuery(schema_, "{ x | exists y (x in Person & y in Person & "
                          "x in y) }")
          .ok());
}

TEST_F(PathSugarTest, PathQuerySemanticsMatchManualDesugaring) {
  // Evaluate the sugared and hand-desugared forms on a state: equal.
  State db(&schema_);
  ClassId person = schema_.FindClass("Person").value();
  Oid alice = *db.AddObject(person);
  Oid bob = *db.AddObject(person);
  Oid carol = *db.AddObject(person);
  Oid name = db.InternString("Carol");
  ASSERT_TRUE(db.SetAttribute(alice, "Boss", Value::Ref(bob)).ok());
  ASSERT_TRUE(db.SetAttribute(bob, "Boss", Value::Ref(carol)).ok());
  ASSERT_TRUE(db.SetAttribute(carol, "Name", Value::Ref(name)).ok());
  OOCQ_ASSERT_OK(db.Validate());

  ConjunctiveQuery sugared = *NormalizeToWellFormed(
      schema_, MustParseQuery(schema_,
                              "{ x | exists n (x in Person & n in String & "
                              "n = x.Boss.Boss.Name) }"));
  ConjunctiveQuery manual = *NormalizeToWellFormed(
      schema_,
      MustParseQuery(schema_,
                     "{ x | exists n exists b exists c (x in Person & "
                     "n in String & b in Person & c in Person & b = x.Boss & "
                     "c = b.Boss & n = c.Name) }"));
  std::vector<Oid> sugared_answers = *Evaluate(db, sugared);
  std::vector<Oid> manual_answers = *Evaluate(db, manual);
  EXPECT_EQ(sugared_answers, manual_answers);
  EXPECT_EQ(sugared_answers, std::vector<Oid>{alice});
}

TEST_F(PathSugarTest, OptimizerPipelineHandlesPaths) {
  QueryOptimizer optimizer(schema_);
  StatusOr<OptimizeReport> report = optimizer.OptimizeText(
      "{ x | exists n (x in Person & n in String & n = x.Boss.Name) }");
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->exact);
  EXPECT_EQ(report->optimized.disjuncts.size(), 1u);
}

TEST_F(PathSugarTest, FreshNamesAvoidUserCollisions) {
  Schema schema = MustParseSchema(R"(
schema P { class C { Next: C; } })");
  // The user already uses "_p2"; the desugarer must pick another name.
  StatusOr<ConjunctiveQuery> query = ParseQuery(
      schema,
      "{ x | exists _p2 (x in C & _p2 in C & _p2 = x.Next.Next) }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->num_vars(), 3u);
  // All three names distinct.
  EXPECT_NE(query->FindVariable("_p2"), kInvalidVarId);
}

}  // namespace
}  // namespace oocq
