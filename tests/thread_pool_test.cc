// Unit tests for the fan-out primitives behind the parallel engine:
// ThreadPool task execution, ParallelFor coverage and nesting, and
// ParallelMap's ordered results + smallest-failing-index error contract.

#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "support/status.h"

namespace oocq {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (std::future<void>& future : futures) future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No explicit wait: the destructor must drain before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(EffectiveThreadsTest, ZeroMeansHardwareConcurrency) {
  ParallelOptions options;
  options.num_threads = 0;
  EXPECT_GE(EffectiveThreads(options), 1u);
  options.num_threads = 3;
  EXPECT_EQ(EffectiveThreads(options), 3u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelOptions options;
    options.num_threads = threads;
    const size_t n = 257;
    std::vector<std::atomic<int>> visits(n);
    ParallelFor(options, n, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " thread(s)";
    }
  }
}

TEST(ParallelForTest, SmallRegionsRunInlineInOrder) {
  ParallelOptions options;
  options.num_threads = 8;
  options.min_parallel_items = 100;
  std::vector<size_t> order;  // unsynchronized: must stay single-threaded
  ParallelFor(options, 10, [&](size_t i) {
    EXPECT_FALSE(InParallelRegion());
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, NestedRegionsRunSerially) {
  ParallelOptions options;
  options.num_threads = 4;
  std::atomic<int> inner_total{0};
  ParallelFor(options, 8, [&](size_t) {
    EXPECT_TRUE(InParallelRegion());
    // The nested region must not spawn another pool; it runs inline on
    // this worker, which keeps thread counts bounded by one pool.
    ParallelFor(options, 8, [&](size_t) {
      EXPECT_TRUE(InParallelRegion());
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelMapTest, ReturnsValuesInIndexOrder) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelOptions options;
    options.num_threads = threads;
    StatusOr<std::vector<int>> result = ParallelMap<int>(
        options, 100, [](size_t i) -> StatusOr<int> {
          return static_cast<int>(i * i);
        });
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 100u);
    for (size_t i = 0; i < 100; ++i) {
      EXPECT_EQ((*result)[i], static_cast<int>(i * i));
    }
  }
}

TEST(ParallelMapTest, ReportsSmallestFailingIndex) {
  // Indices 10, 40 and 70 fail; every schedule must surface index 10's
  // error — what the serial in-order loop would return.
  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelOptions options;
    options.num_threads = threads;
    StatusOr<std::vector<int>> result = ParallelMap<int>(
        options, 100, [](size_t i) -> StatusOr<int> {
          if (i == 10 || i == 40 || i == 70) {
            return Status::InvalidArgument("fail at " + std::to_string(i));
          }
          return static_cast<int>(i);
        });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "fail at 10")
        << "at " << threads << " thread(s)";
  }
}

TEST(ParallelMapTest, EmptyRegion) {
  ParallelOptions options;
  options.num_threads = 8;
  StatusOr<std::vector<int>> result = ParallelMap<int>(
      options, 0, [](size_t) -> StatusOr<int> { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ParallelMapTest, MoveOnlyResults) {
  ParallelOptions options;
  options.num_threads = 4;
  StatusOr<std::vector<std::unique_ptr<int>>> result =
      ParallelMap<std::unique_ptr<int>>(
          options, 20, [](size_t i) -> StatusOr<std::unique_ptr<int>> {
            return std::make_unique<int>(static_cast<int>(i));
          });
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(*(*result)[i], static_cast<int>(i));
}

}  // namespace
}  // namespace oocq
