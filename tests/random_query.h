#ifndef OOCQ_TESTS_RANDOM_QUERY_H_
#define OOCQ_TESTS_RANDOM_QUERY_H_

#include <random>
#include <string>
#include <vector>

#include "query/query.h"
#include "schema/schema.h"

namespace oocq::testing {

/// Knobs for the seeded random query generator used by the property
/// tests. Generated queries are structurally valid; they may be
/// unsatisfiable or (rarely) ill-formed — callers filter with
/// CheckWellFormed / CheckSatisfiable.
struct RandomQueryParams {
  uint32_t max_vars = 4;
  uint32_t max_extra_atoms = 4;
  /// Also emit inequality and non-membership atoms.
  bool allow_negative = false;
  /// Range atoms name single terminal classes only; otherwise any class
  /// (or a two-class disjunction) may appear.
  bool terminal_only = true;
  /// Include the built-in primitive classes in the range-class pool.
  bool use_builtins = false;
  /// Emit kConstant atoms (small literal pool) on primitive-ranged
  /// variables.
  bool use_constants = false;
};

/// Generates a random conjunctive query over `schema`.
inline ConjunctiveQuery GenerateRandomQuery(const Schema& schema,
                                            std::mt19937_64& rng,
                                            const RandomQueryParams& params) {
  auto pick = [&rng](size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(rng);
  };

  std::vector<ClassId> terminal_pool =
      schema.TerminalClasses(params.use_builtins);
  std::vector<ClassId> any_pool =
      params.terminal_only ? terminal_pool : schema.UserClasses();
  if (!params.terminal_only && params.use_builtins) {
    for (ClassId c = 0; c < kNumBuiltinClasses; ++c) any_pool.push_back(c);
  }

  ConjunctiveQuery query;
  const uint32_t num_vars =
      1 + static_cast<uint32_t>(pick(params.max_vars));
  for (uint32_t v = 0; v < num_vars; ++v) {
    query.AddVariable("v" + std::to_string(v));
  }

  // Range atoms: exactly one per variable (well-formedness (iii)).
  std::vector<ClassId> var_class(num_vars);
  for (VarId v = 0; v < num_vars; ++v) {
    if (params.terminal_only) {
      var_class[v] = terminal_pool[pick(terminal_pool.size())];
      query.AddAtom(Atom::Range(v, {var_class[v]}));
    } else {
      ClassId first = any_pool[pick(any_pool.size())];
      var_class[v] = first;
      if (pick(4) == 0 && any_pool.size() > 1) {
        ClassId second = any_pool[pick(any_pool.size())];
        query.AddAtom(Atom::Range(v, {first, second}));
      } else {
        query.AddAtom(Atom::Range(v, {first}));
      }
    }
  }

  // Attribute pools per variable, split by kind. For non-terminal ranges
  // use the first range class's attributes (good enough for generation).
  auto object_attrs = [&](VarId v) {
    std::vector<std::string> names;
    for (const AttributeDef& attr :
         schema.class_info(var_class[v]).all_attributes) {
      if (!attr.type.is_set()) names.push_back(attr.name);
    }
    return names;
  };
  auto set_attrs = [&](VarId v) {
    std::vector<std::string> names;
    for (const AttributeDef& attr :
         schema.class_info(var_class[v]).all_attributes) {
      if (attr.type.is_set()) names.push_back(attr.name);
    }
    return names;
  };

  const uint32_t extra = static_cast<uint32_t>(pick(params.max_extra_atoms + 1));
  for (uint32_t i = 0; i < extra; ++i) {
    VarId a = static_cast<VarId>(pick(num_vars));
    VarId b = static_cast<VarId>(pick(num_vars));
    if (params.use_constants && pick(4) == 0) {
      // Bind a primitive-ranged variable to a small literal.
      switch (var_class[a]) {
        case kIntClassId:
          query.AddAtom(Atom::Constant(
              a, static_cast<int64_t>(pick(3))));
          continue;
        case kRealClassId:
          query.AddAtom(Atom::Constant(a, 0.5 + pick(3)));
          continue;
        case kStringClassId:
          query.AddAtom(Atom::Constant(a, "k" + std::to_string(pick(3))));
          continue;
        default:
          break;  // Fall through to a structural atom.
      }
    }
    switch (pick(params.allow_negative ? 5 : 3)) {
      case 0:  // var = var
        query.AddAtom(Atom::Equality(Term::Var(a), Term::Var(b)));
        break;
      case 1: {  // var = var.A
        std::vector<std::string> names = object_attrs(b);
        if (names.empty()) break;
        query.AddAtom(Atom::Equality(
            Term::Var(a), Term::Attr(b, names[pick(names.size())])));
        break;
      }
      case 2: {  // var in var.S
        std::vector<std::string> names = set_attrs(b);
        if (names.empty()) break;
        query.AddAtom(Atom::Membership(a, b, names[pick(names.size())]));
        break;
      }
      case 3:  // var != var
        if (a != b) {
          query.AddAtom(Atom::Inequality(Term::Var(a), Term::Var(b)));
        }
        break;
      case 4: {  // var notin var.S
        std::vector<std::string> names = set_attrs(b);
        if (names.empty()) break;
        query.AddAtom(Atom::NonMembership(a, b, names[pick(names.size())]));
        break;
      }
    }
  }
  return query;
}

}  // namespace oocq::testing

#endif  // OOCQ_TESTS_RANDOM_QUERY_H_
