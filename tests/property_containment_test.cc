// E6: randomized cross-validation of the containment machinery against
// the 3-valued-logic evaluator. Whenever Contained(Q1, Q2) holds, the
// answer sets must be related by inclusion on every state we can build
// (soundness of Thm 3.1); when it does not hold, a counterexample search
// frequently finds a separating state (spot-checking completeness).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/containment.h"
#include "core/satisfiability.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "state/witness.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

const char* const kPropertySchema = R"(
schema Prop {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: E; S: {D}; T: {E}; }
  class C2 under C { }
})";

class ContainmentProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(kPropertySchema);

  bool Usable(const ConjunctiveQuery& query) {
    return CheckWellFormed(schema_, query).ok();
  }
};

TEST_P(ContainmentProperty, ContainmentImpliesInclusionOnStates) {
  std::mt19937_64 rng(GetParam());
  RandomQueryParams params;
  params.allow_negative = true;

  int checked = 0;
  for (int round = 0; round < 12; ++round) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q1) || !Usable(q2)) continue;

    StatusOr<bool> contained = Contained(schema_, q1, q2);
    if (!contained.ok()) continue;  // Resource caps on adversarial shapes.
    if (!*contained) continue;
    ++checked;

    // Soundness: Q1(s) ⊆ Q2(s) on the canonical witness and random states.
    std::vector<State> states;
    if (CheckSatisfiable(schema_, q1).satisfiable) {
      states.push_back(*BuildCanonicalWitnessState(schema_, q1));
    }
    for (uint64_t seed = 0; seed < 4; ++seed) {
      GeneratorParams gen;
      gen.seed = GetParam() * 100 + seed;
      gen.objects_per_class = 4;
      states.push_back(GenerateRandomState(schema_, gen));
    }
    for (const State& state : states) {
      std::vector<Oid> a1 = *Evaluate(state, q1);
      std::vector<Oid> a2 = *Evaluate(state, q2);
      EXPECT_TRUE(std::includes(a2.begin(), a2.end(), a1.begin(), a1.end()))
          << "containment violated on a state:\n  Q1 = "
          << QueryToString(schema_, q1)
          << "\n  Q2 = " << QueryToString(schema_, q2);
    }
  }
  // Some rounds must have produced checkable pairs (self pairs would, but
  // even random pairs contain each other occasionally); don't require it
  // per seed, only record.
  (void)checked;
}

TEST_P(ContainmentProperty, SelfContainmentAlwaysHolds) {
  std::mt19937_64 rng(GetParam() + 5000);
  RandomQueryParams params;
  params.allow_negative = true;
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery q = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q)) continue;
    StatusOr<bool> contained = Contained(schema_, q, q);
    if (!contained.ok()) continue;
    EXPECT_TRUE(*contained) << QueryToString(schema_, q);
  }
}

TEST_P(ContainmentProperty, NonContainmentConfirmedByCounterexample) {
  std::mt19937_64 rng(GetParam() + 9000);
  RandomQueryParams params;
  params.allow_negative = false;  // Positive: counterexamples are easier.
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q1) || !Usable(q2)) continue;
    if (!CheckSatisfiable(schema_, q1).satisfiable) continue;
    StatusOr<bool> contained = Contained(schema_, q1, q2);
    if (!contained.ok() || *contained) continue;

    // If the search finds a state, it must genuinely separate the queries
    // (the search itself verifies; re-verify here).
    WitnessSearchOptions options;
    options.max_trials = 6;
    StatusOr<std::optional<State>> counterexample =
        FindContainmentCounterexample(schema_, q1, q2, options);
    OOCQ_ASSERT_OK(counterexample.status());
    if (!counterexample->has_value()) continue;
    std::vector<Oid> a1 = *Evaluate(**counterexample, q1);
    std::vector<Oid> a2 = *Evaluate(**counterexample, q2);
    EXPECT_FALSE(std::includes(a2.begin(), a2.end(), a1.begin(), a1.end()));
  }
}

TEST_P(ContainmentProperty, SatisfiabilityAgreesWithWitnessConstruction) {
  std::mt19937_64 rng(GetParam() + 13000);
  RandomQueryParams params;
  params.allow_negative = true;
  for (int round = 0; round < 15; ++round) {
    ConjunctiveQuery q = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q)) continue;
    SatisfiabilityResult sat = CheckSatisfiable(schema_, q);
    if (sat.satisfiable) {
      // Completeness: the canonical witness must produce an answer.
      StatusOr<State> state = BuildCanonicalWitnessState(schema_, q);
      OOCQ_ASSERT_OK(state.status());
      StatusOr<std::vector<Oid>> answers = Evaluate(*state, q);
      OOCQ_ASSERT_OK(answers.status());
      EXPECT_FALSE(answers->empty())
          << "satisfiable query with empty canonical answer: "
          << QueryToString(schema_, q);
    } else {
      // Soundness: no random state may produce an answer.
      for (uint64_t seed = 0; seed < 3; ++seed) {
        GeneratorParams gen;
        gen.seed = GetParam() * 31 + seed;
        gen.objects_per_class = 4;
        State state = GenerateRandomState(schema_, gen);
        StatusOr<std::vector<Oid>> answers = Evaluate(state, q);
        OOCQ_ASSERT_OK(answers.status());
        EXPECT_TRUE(answers->empty())
            << "unsatisfiable query (" << sat.reason
            << ") answered on a state: " << QueryToString(schema_, q);
      }
    }
  }
}

TEST_P(ContainmentProperty, ContainmentIsTransitiveWhenDecided) {
  std::mt19937_64 rng(GetParam() + 21000);
  RandomQueryParams params;
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery a = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery b = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery c = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(a) || !Usable(b) || !Usable(c)) continue;
    StatusOr<bool> ab = Contained(schema_, a, b);
    StatusOr<bool> bc = Contained(schema_, b, c);
    StatusOr<bool> ac = Contained(schema_, a, c);
    if (!ab.ok() || !bc.ok() || !ac.ok()) continue;
    if (*ab && *bc) {
      EXPECT_TRUE(*ac) << "transitivity violated:\n  A = "
                       << QueryToString(schema_, a)
                       << "\n  B = " << QueryToString(schema_, b)
                       << "\n  C = " << QueryToString(schema_, c);
    }
  }
}

TEST_P(ContainmentProperty, FastPathsAgreeWithFullTheorem) {
  // The Cor 3.2/3.3/3.4 dispatch must be a pure optimization: forcing the
  // full Thm 3.1 enumeration never changes the verdict.
  std::mt19937_64 rng(GetParam() + 33000);
  RandomQueryParams params;
  params.allow_negative = true;
  params.max_vars = 3;  // Keep the forced enumeration tractable.
  params.max_extra_atoms = 3;
  ContainmentOptions full;
  full.force_full_theorem = true;
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q1) || !Usable(q2)) continue;
    StatusOr<bool> fast = Contained(schema_, q1, q2);
    StatusOr<bool> forced = Contained(schema_, q1, q2, full);
    if (!fast.ok() || !forced.ok()) continue;  // Caps may differ.
    EXPECT_EQ(*fast, *forced)
        << "fast-path dispatch changed the verdict:\n  Q1 = "
        << QueryToString(schema_, q1)
        << "\n  Q2 = " << QueryToString(schema_, q2);
  }
}

TEST_P(ContainmentProperty, EquivalentQueriesHaveEqualAnswers) {
  // When the engine says Q1 ≡ Q2, answers agree on every state we build.
  std::mt19937_64 rng(GetParam() + 41000);
  RandomQueryParams params;
  params.allow_negative = true;
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q1) || !Usable(q2)) continue;
    StatusOr<bool> equivalent = EquivalentQueries(schema_, q1, q2);
    if (!equivalent.ok() || !*equivalent) continue;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      GeneratorParams gen;
      gen.seed = GetParam() * 7 + seed;
      gen.objects_per_class = 4;
      State state = GenerateRandomState(schema_, gen);
      EXPECT_EQ(*Evaluate(state, q1), *Evaluate(state, q2))
          << QueryToString(schema_, q1) << " vs "
          << QueryToString(schema_, q2);
    }
  }
}

TEST_P(ContainmentProperty, ConstantsSoundOnStates) {
  // With primitive-ranged variables and literal bindings in the mix,
  // decided containments still hold on every state we can build.
  std::mt19937_64 rng(GetParam() + 55000);
  RandomQueryParams params;
  params.allow_negative = true;
  params.use_builtins = true;
  params.use_constants = true;
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema_, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema_, rng, params);
    if (!Usable(q1) || !Usable(q2)) continue;
    StatusOr<bool> contained = Contained(schema_, q1, q2);
    if (!contained.ok() || !*contained) continue;
    std::vector<State> states;
    if (CheckSatisfiable(schema_, q1).satisfiable) {
      states.push_back(*BuildCanonicalWitnessState(schema_, q1));
    }
    for (uint64_t seed = 0; seed < 3; ++seed) {
      GeneratorParams gen;
      gen.seed = GetParam() * 13 + seed;
      gen.objects_per_class = 4;
      states.push_back(GenerateRandomState(schema_, gen));
    }
    for (const State& state : states) {
      std::vector<Oid> a1 = *Evaluate(state, q1);
      std::vector<Oid> a2 = *Evaluate(state, q2);
      EXPECT_TRUE(std::includes(a2.begin(), a2.end(), a1.begin(), a1.end()))
          << QueryToString(schema_, q1) << " vs "
          << QueryToString(schema_, q2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace oocq
